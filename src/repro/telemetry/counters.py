"""Process-wide counters, gauges, and a sampling RSS/CPU poller.

Counters are monotonically increasing tallies (records ingested, bins
closed, sketch collisions); gauges hold last-seen or peak values (queue
depth, straggler lag).  Both live behind one lock — they are touched
per chunk/bin, never per record, so contention is negligible.

Resource sampling uses only the standard library: resident set size
from ``/proc/self/statm`` (falling back to ``ru_maxrss`` where procfs
is unavailable) and CPU seconds from :func:`resource.getrusage`.  The
:class:`ResourcePoller` daemon thread samples on an interval and keeps
the peak, so a snapshot carries honest high-water marks instead of the
value at exit.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None  # type: ignore[assignment]

_STATM = "/proc/self/statm"
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover
    _PAGE_SIZE = 4096


def sample_rss_bytes() -> int:
    """Current resident set size in bytes (best effort, zero deps)."""
    try:
        with open(_STATM, "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    if _resource is not None:  # pragma: no cover - non-procfs fallback
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS.
        scale = 1 if usage.ru_maxrss > 1 << 32 else 1024
        return int(usage.ru_maxrss) * scale
    return 0  # pragma: no cover


def sample_cpu_seconds() -> Dict[str, float]:
    """User/system CPU seconds for this process (children excluded)."""
    if _resource is None:  # pragma: no cover - non-POSIX
        return {"utime_s": 0.0, "stime_s": 0.0}
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    return {"utime_s": usage.ru_utime, "stime_s": usage.ru_stime}


class CounterSet:
    """Thread-safe named counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def get(self, name: str, default: int = 0) -> int:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(sorted(self._gauges.items()))


def merge_counters(*snapshots: Dict[str, int]) -> Dict[str, int]:
    """Sum counter snapshots (counters are additive across shards)."""
    merged: Dict[str, int] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            merged[name] = merged.get(name, 0) + value
    return dict(sorted(merged.items()))


def merge_gauges(*snapshots: Dict[str, float]) -> Dict[str, float]:
    """Max-merge gauge snapshots (gauges report worst-case/peak)."""
    merged: Dict[str, float] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if name not in merged or value > merged[name]:
                merged[name] = value
    return dict(sorted(merged.items()))


class ResourcePoller:
    """Daemon thread sampling RSS/CPU on an interval, tracking peaks.

    Safe to snapshot without starting (takes one synchronous sample),
    and safe to stop twice.  After :func:`os.fork` the thread does not
    exist in the child — build a fresh poller there instead of reusing
    the inherited object.
    """

    def __init__(self, interval_s: float = 0.05) -> None:
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.n_samples = 0
        self.peak_rss_bytes = 0
        self._sample()

    def _sample(self) -> None:
        rss = sample_rss_bytes()
        with self._lock:
            self.n_samples += 1
            if rss > self.peak_rss_bytes:
                self.peak_rss_bytes = rss

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample()

    def start(self) -> "ResourcePoller":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-telemetry-poller", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=1.0)
        self._thread = None

    def snapshot(self) -> Dict[str, float]:
        self._sample()
        with self._lock:
            out: Dict[str, float] = {
                "rss_bytes": sample_rss_bytes(),
                "peak_rss_bytes": self.peak_rss_bytes,
                "n_samples": self.n_samples,
                "poll_interval_s": self.interval_s,
            }
        out.update(sample_cpu_seconds())
        return out


def merge_resources(*snapshots: Dict[str, float]) -> Dict[str, float]:
    """Merge resource snapshots: peaks max, CPU seconds and samples sum."""
    merged: Dict[str, float] = {}
    for snap in snapshots:
        if not merged:
            merged = dict(snap)
            continue
        for key in ("rss_bytes", "peak_rss_bytes"):
            merged[key] = max(merged.get(key, 0), snap.get(key, 0))
        for key in ("n_samples", "utime_s", "stime_s"):
            merged[key] = merged.get(key, 0) + snap.get(key, 0)
        if "poll_interval_s" in snap:
            merged.setdefault("poll_interval_s", snap["poll_interval_s"])
    return merged
