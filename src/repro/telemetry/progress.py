"""``--progress``: a bins/s + ETA line on stderr, fed by the counters.

The meter never touches stdout (which carries the run's JSON report)
and costs the hot path nothing: it is a daemon thread that *reads* the
active session's ``pipeline.bins_closed`` / ``pipeline.records``
counters on an interval — the pipeline is not aware it exists.  The
line is rewritten in place with ``\\r`` when stderr is a TTY and
printed at most once per interval otherwise, so CI logs stay readable.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional, TextIO

from . import active


def _fmt_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.1f}"


class ProgressMeter:
    """Periodic progress line driven by the telemetry counters."""

    def __init__(self, total_bins: Optional[int] = None,
                 stream: Optional[TextIO] = None,
                 interval_s: float = 0.5) -> None:
        self.total_bins = total_bins
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = time.perf_counter()
        self._wrote = False

    def _line(self) -> str:
        session = active()
        bins = records = 0
        if session is not None:
            bins = session.counters.get("pipeline.bins_closed")
            records = session.counters.get("pipeline.records")
        elapsed = time.perf_counter() - self._started
        bin_rate = bins / elapsed if elapsed > 0 else 0.0
        parts = []
        if self.total_bins:
            pct = 100.0 * bins / self.total_bins
            parts.append(f"bins {bins}/{self.total_bins} ({pct:.0f}%)")
            if bin_rate > 0 and bins < self.total_bins:
                eta = (self.total_bins - bins) / bin_rate
                parts.append(f"ETA {eta:.1f}s")
        else:
            parts.append(f"bins {bins}")
        parts.append(f"{bin_rate:.1f} bins/s")
        parts.append(f"{_fmt_rate(records / elapsed if elapsed > 0 else 0.0)} rec/s")
        return "progress: " + "  ".join(parts)

    def _emit(self, final: bool = False) -> None:
        line = self._line()
        tty = getattr(self.stream, "isatty", lambda: False)()
        if tty and not final:
            self.stream.write("\r" + line.ljust(78))
        elif tty:
            self.stream.write("\r" + line.ljust(78) + "\n")
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._wrote = True

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._emit()

    def start(self) -> "ProgressMeter":
        if self._thread is None:
            self._started = time.perf_counter()
            self._thread = threading.Thread(
                target=self._run, name="repro-progress", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the thread and write one final line."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=1.0)
        self._thread = None
        self._emit(final=True)
