"""Aggregation and rendering behind ``repro stats <telemetry.jsonl>``.

Reconstructs a session snapshot from exported events, then renders:

* a run header (mode, scenario, records, wall-clock, peak RSS);
* the **stage table** — ``stage.*`` spans with count/total/mean/self
  columns, whose exclusive-time total is compared against recorded
  wall-clock (the acceptance bar is agreement within 10%);
* a **detail table** — kernel/sketch/trace spans, informational only
  (their time already lives inside some stage's total);
* counters/gauges; and, for cluster runs, a **per-shard table** built
  from the shard snapshots the workers shipped in their heartbeats.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .spans import SpanStats, iter_top_level_stage_time

STAGE_PREFIX = "stage."


def snapshot_from_events(events: List[dict]) -> dict:
    """Invert :func:`repro.telemetry.export.snapshot_events`."""
    run: Dict[str, object] = {}
    spans: Dict[str, dict] = {}
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    shards: Dict[int, dict] = {}
    for event in events:
        kind = event.get("event")
        if kind == "run":
            run = {k: v for k, v in event.items()
                   if k not in ("schema", "event")}
        elif kind == "span":
            spans[event["label"]] = {
                "count": event["count"], "total_s": event["total_s"],
                "min_s": event["min_s"], "max_s": event["max_s"],
                "self_s": event["self_s"],
                "children": event.get("children", {}),
            }
        elif kind == "counter":
            counters[event["name"]] = event["value"]
        elif kind == "gauge":
            gauges[event["name"]] = event["value"]
        elif kind == "shard":
            shards[int(event["shard"])] = {
                "elapsed_s": event.get("elapsed_s", 0.0),
                "spans": event.get("spans", {}),
                "counters": event.get("counters", {}),
                "gauges": event.get("gauges", {}),
                "resources": event.get("resources", {}),
            }
    return {
        "run": run,
        "elapsed_s": float(run.get("elapsed_s", 0.0)),
        "spans": spans,
        "counters": counters,
        "gauges": gauges,
        "resources": run.get("resources", {}),
        "shards": shards,
    }


def stage_total_seconds(spans: Dict[str, dict]) -> float:
    """Sum of exclusive stage time — comparable to wall-clock."""
    return sum(seconds for _, seconds in iter_top_level_stage_time(spans))


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def _fmt_count(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    return f"{value:,.0f}"


def _span_rows(spans: Dict[str, dict], labels: List[str],
               wall_s: float) -> List[str]:
    rows = []
    for label in labels:
        s = SpanStats.from_dict(spans[label])
        mean = s.total / s.count if s.count else 0.0
        pct = 100.0 * s.self_total / wall_s if wall_s > 0 else 0.0
        rows.append(
            f"  {label:<24} {s.count:>9} {_fmt_seconds(s.total):>10} "
            f"{_fmt_seconds(mean):>10} {_fmt_seconds(s.self_total):>10} "
            f"{pct:>6.1f}%"
        )
    return rows


_SPAN_HEADER = (f"  {'span':<24} {'calls':>9} {'total':>10} "
                f"{'mean':>10} {'self':>10} {'% wall':>7}")


def _shard_table(shards: Dict[int, dict]) -> List[str]:
    lines = [
        "per-shard breakdown:",
        f"  {'shard':>5} {'records':>10} {'bins':>6} {'rec/s':>12} "
        f"{'source':>10} {'reduce':>10} {'ship':>10} {'rss':>9}",
    ]
    for shard_id in sorted(shards):
        snap = shards[shard_id]
        counters = snap.get("counters", {})
        spans = snap.get("spans", {})
        records = counters.get("reduce.records", 0)
        bins = counters.get("reduce.bins_closed", 0)
        elapsed = float(snap.get("elapsed_s", 0.0))
        rate = records / elapsed if elapsed > 0 else 0.0

        def total(label: str) -> float:
            return float(spans.get(label, {}).get("total_s", 0.0))

        rss = float(snap.get("resources", {}).get("peak_rss_bytes", 0))
        lines.append(
            f"  {shard_id:>5} {_fmt_count(records):>10} {bins:>6} "
            f"{_fmt_count(rate) + '/s':>12} "
            f"{_fmt_seconds(total('stage.source')):>10} "
            f"{_fmt_seconds(total('stage.reduce')):>10} "
            f"{_fmt_seconds(total('stage.ship')):>10} "
            f"{rss / 1e6:>7.1f}MB"
        )
    return lines


def format_stats(events: List[dict]) -> str:
    """Render the ``repro stats`` report for one telemetry export."""
    snap = snapshot_from_events(events)
    run = snap["run"]
    wall_s = snap["elapsed_s"]
    spans = snap["spans"]
    counters = snap["counters"]

    lines: List[str] = []
    header_bits = [f"telemetry run: schema ok"]
    for key in ("command", "scenario", "mode", "n_shards"):
        if key in run:
            header_bits.append(f"{key}={run[key]}")
    lines.append("  ".join(header_bits))
    records = run.get("n_records", counters.get("pipeline.records", 0))
    rate = float(records) / wall_s if wall_s > 0 else 0.0
    rss = float(snap["resources"].get("peak_rss_bytes", 0)) if snap["resources"] else 0.0
    lines.append(
        f"wall-clock {wall_s:.3f}s  |  {_fmt_count(float(records))} records "
        f"({_fmt_count(rate)}/s)  |  peak RSS {rss / 1e6:.1f}MB"
    )
    lines.append("")

    stage_labels = sorted(l for l in spans if l.startswith(STAGE_PREFIX))
    if stage_labels:
        lines.append("stage breakdown (self = excl. nested spans):")
        lines.append(_SPAN_HEADER)
        lines.extend(_span_rows(spans, stage_labels, wall_s))
        stage_s = stage_total_seconds(spans)
        coverage = 100.0 * stage_s / wall_s if wall_s > 0 else 0.0
        lines.append(
            f"  {'stage total':<24} {'':>9} {_fmt_seconds(stage_s):>10} "
            f"{'':>10} {'':>10} {coverage:>6.1f}%"
        )
        lines.append("")

    detail_labels = sorted(l for l in spans if not l.startswith(STAGE_PREFIX))
    if detail_labels:
        lines.append("detail spans (nested inside stages):")
        lines.append(_SPAN_HEADER)
        lines.extend(_span_rows(spans, detail_labels, wall_s))
        lines.append("")

    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<32} {value:>14,}")
        lines.append("")
    if snap["gauges"]:
        lines.append("gauges:")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<32} {value:>14,.3f}")
        lines.append("")

    if snap["shards"]:
        lines.extend(_shard_table(snap["shards"]))
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
