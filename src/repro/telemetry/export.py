"""Schema-versioned exports: JSONL event sink + Prometheus text snapshot.

The JSONL format is line-per-event, every line stamped with
``"schema": "repro.telemetry/1"`` so files survive concatenation and
partial reads.  Event types:

``run``
    One per file, first line: run metadata (mode, scenario, records,
    wall-clock) plus the session's resource snapshot.
``span`` / ``counter`` / ``gauge``
    One per label/name, the session's aggregate at export time.
``shard``
    One per cluster shard: the shard worker's own session snapshot
    (spans/counters/gauges/resources) as shipped over the result queue.

:func:`validate_events` raises ``ValueError`` on malformed payloads —
CI's telemetry smoke job and ``repro stats`` both call it, so a schema
drift fails loudly instead of rendering garbage tables.

:func:`prometheus_text` renders the same snapshot in Prometheus'
text exposition format (counters, gauges, and per-span summaries) for
anyone scraping a long-running deployment; it is a formatting of the
snapshot, not a server.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA = "repro.telemetry/1"

_EVENT_TYPES = ("run", "span", "counter", "gauge", "shard")
_SPAN_KEYS = ("label", "count", "total_s", "min_s", "max_s", "self_s")


def snapshot_events(snapshot: dict, run_info: Optional[dict] = None) -> List[dict]:
    """Flatten a session snapshot into an ordered list of JSONL events."""
    run_event: Dict[str, object] = {
        "schema": SCHEMA,
        "event": "run",
        "elapsed_s": snapshot.get("elapsed_s", 0.0),
        "resources": snapshot.get("resources", {}),
    }
    if run_info:
        run_event.update(run_info)
    events: List[dict] = [run_event]
    for label, stats in snapshot.get("spans", {}).items():
        events.append({
            "schema": SCHEMA, "event": "span", "label": label,
            "count": stats["count"], "total_s": stats["total_s"],
            "min_s": stats["min_s"], "max_s": stats["max_s"],
            "self_s": stats["self_s"],
            "children": stats.get("children", {}),
        })
    for name, value in snapshot.get("counters", {}).items():
        events.append({"schema": SCHEMA, "event": "counter",
                       "name": name, "value": value})
    for name, value in snapshot.get("gauges", {}).items():
        events.append({"schema": SCHEMA, "event": "gauge",
                       "name": name, "value": value})
    for shard_id, shard_snapshot in snapshot.get("shards", {}).items():
        events.append({
            "schema": SCHEMA, "event": "shard", "shard": int(shard_id),
            "elapsed_s": shard_snapshot.get("elapsed_s", 0.0),
            "spans": shard_snapshot.get("spans", {}),
            "counters": shard_snapshot.get("counters", {}),
            "gauges": shard_snapshot.get("gauges", {}),
            "resources": shard_snapshot.get("resources", {}),
        })
    return events


def write_jsonl(path, snapshot: dict, run_info: Optional[dict] = None) -> Path:
    """Export a session snapshot as JSONL; returns the written path."""
    path = Path(path)
    events = snapshot_events(snapshot, run_info)
    with path.open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_events(path) -> List[dict]:
    """Read and validate a telemetry JSONL file."""
    events: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            events.append(event)
    validate_events(events, source=str(path))
    return events


def validate_events(events: List[dict], source: str = "<events>") -> None:
    """Raise ``ValueError`` unless ``events`` is a well-formed export."""
    if not events:
        raise ValueError(f"{source}: empty telemetry export")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{source}: event {i} is not an object")
        if event.get("schema") != SCHEMA:
            raise ValueError(
                f"{source}: event {i} has schema {event.get('schema')!r}, "
                f"expected {SCHEMA!r}"
            )
        kind = event.get("event")
        if kind not in _EVENT_TYPES:
            raise ValueError(f"{source}: event {i} has unknown type {kind!r}")
        if kind == "span":
            for key in _SPAN_KEYS:
                if key not in event:
                    raise ValueError(
                        f"{source}: span event {i} missing key {key!r}"
                    )
        elif kind in ("counter", "gauge"):
            if "name" not in event or "value" not in event:
                raise ValueError(
                    f"{source}: {kind} event {i} missing name/value"
                )
        elif kind == "shard":
            if "shard" not in event:
                raise ValueError(f"{source}: shard event {i} missing shard id")
    if events[0].get("event") != "run":
        raise ValueError(f"{source}: first event must be 'run', "
                         f"got {events[0].get('event')!r}")


def _metric_name(name: str, suffix: str = "") -> str:
    out = "repro_" + name.replace(".", "_").replace("-", "_") + suffix
    return out


def prometheus_text(snapshot: dict, run_info: Optional[dict] = None) -> str:
    """Render a snapshot in Prometheus text exposition format."""
    lines = [
        f"# repro.telemetry exposition (schema {SCHEMA})",
        "# TYPE repro_run_elapsed_seconds gauge",
        f"repro_run_elapsed_seconds {snapshot.get('elapsed_s', 0.0):.6f}",
    ]
    resources = snapshot.get("resources", {})
    if resources:
        lines.append("# TYPE repro_peak_rss_bytes gauge")
        lines.append(
            f"repro_peak_rss_bytes {int(resources.get('peak_rss_bytes', 0))}"
        )
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for label, stats in snapshot.get("spans", {}).items():
        metric = _metric_name("span_" + label)
        lines.append(f"# TYPE {metric}_seconds summary")
        lines.append(f"{metric}_seconds_count {stats['count']}")
        lines.append(f"{metric}_seconds_sum {stats['total_s']:.6f}")
        lines.append(f"{metric}_seconds_max {stats['max_s']:.6f}")
    return "\n".join(lines) + "\n"
