"""Nestable monotonic-clock spans with per-label accumulation.

A span is a ``with`` block timed by :func:`time.perf_counter`.  Spans
aggregate *per label*, not per occurrence: entering ``span("stage.reduce")``
ten thousand times costs one dict entry holding count/total/min/max, so
a run's telemetry snapshot stays a few hundred bytes no matter how many
records flowed through it.

Nesting is tracked through a thread-local stack.  When a child span
exits while a parent is open, the child's elapsed time is credited to
the parent's ``children[child_label]`` accumulator.  That makes two
derived quantities exact:

* ``self`` time — ``total - sum(children.values())`` — the time a label
  spent in its own code, excluding everything it timed beneath it;
* exclusive *stage* time — ``total`` minus only the child time of
  labels in some namespace (``stage.*``) — which is what lets
  ``repro stats`` sum stage rows to within a few percent of wall-clock
  even when stages nest (batch mode times ``stage.source`` inside
  ``stage.reduce``).

The algebra is a commutative monoid: :meth:`SpanStats.merge` sums
counts, totals, and child credits, and takes min-of-mins/max-of-maxes,
so per-shard snapshots from cluster workers merge losslessly in any
order.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, Optional


class SpanStats:
    """Accumulated timing for one span label."""

    __slots__ = ("count", "total", "min", "max", "children")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        #: seconds spent inside *directly* nested spans, keyed by the
        #: child's label.  ``self_total`` subtracts all of them.
        self.children: Dict[str, float] = {}

    def add(self, elapsed: float, child_credit: Optional[Dict[str, float]] = None) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed
        if child_credit:
            for label, seconds in child_credit.items():
                self.children[label] = self.children.get(label, 0.0) + seconds

    @property
    def self_total(self) -> float:
        """Total time minus all directly nested span time."""
        return self.total - sum(self.children.values())

    def exclusive_of(self, labels) -> float:
        """Total minus child time credited to the given labels only."""
        return self.total - sum(
            seconds for label, seconds in self.children.items() if label in labels
        )

    def merge(self, other: "SpanStats") -> None:
        """Fold ``other`` into this entry (commutative, associative)."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for label, seconds in other.children.items():
            self.children[label] = self.children.get(label, 0.0) + seconds

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "self_s": self.self_total,
            "children": dict(self.children),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanStats":
        stats = cls()
        stats.count = int(payload["count"])
        stats.total = float(payload["total_s"])
        stats.min = float(payload["min_s"]) if stats.count else float("inf")
        stats.max = float(payload["max_s"])
        stats.children = {
            str(k): float(v) for k, v in payload.get("children", {}).items()
        }
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SpanStats(count={self.count}, total={self.total:.6f}, "
                f"self={self.self_total:.6f})")


class _Span:
    """One live ``with span(label)`` occurrence."""

    __slots__ = ("_collector", "label", "_start", "_child_credit")

    def __init__(self, collector: "SpanCollector", label: str) -> None:
        self._collector = collector
        self.label = label
        self._start = 0.0
        self._child_credit: Optional[Dict[str, float]] = None

    def __enter__(self) -> "_Span":
        self._collector._stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._collector._stack()
        stack.pop()
        if stack:
            parent = stack[-1]
            if parent._child_credit is None:
                parent._child_credit = {}
            parent._child_credit[self.label] = (
                parent._child_credit.get(self.label, 0.0) + elapsed
            )
        self._collector._record(self.label, elapsed, self._child_credit)


class SpanCollector:
    """Thread-safe registry of :class:`SpanStats` keyed by label."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: Dict[str, SpanStats] = {}
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, label: str) -> _Span:
        return _Span(self, label)

    def _record(self, label: str, elapsed: float,
                child_credit: Optional[Dict[str, float]]) -> None:
        with self._lock:
            stats = self._stats.get(label)
            if stats is None:
                stats = self._stats[label] = SpanStats()
            stats.add(elapsed, child_credit)

    def record(self, label: str, elapsed: float) -> None:
        """Record an externally measured duration (no nesting credit)."""
        self._record(label, elapsed, None)

    def stats(self) -> Dict[str, dict]:
        """Snapshot all labels as plain dicts (safe to pickle/serialize)."""
        with self._lock:
            return {label: s.to_dict() for label, s in sorted(self._stats.items())}


def merge_span_stats(*snapshots: Dict[str, dict]) -> Dict[str, dict]:
    """Merge span snapshots (as produced by :meth:`SpanCollector.stats`).

    Lossless for count/total/min/max/children: merging N shard
    snapshots equals collecting all their spans in one process.
    """
    merged: Dict[str, SpanStats] = {}
    for snapshot in snapshots:
        for label, payload in snapshot.items():
            stats = merged.get(label)
            if stats is None:
                merged[label] = SpanStats.from_dict(payload)
            else:
                stats.merge(SpanStats.from_dict(payload))
    return {label: s.to_dict() for label, s in sorted(merged.items())}


def iter_top_level_stage_time(span_snapshot: Dict[str, dict],
                              prefix: str = "stage.") -> Iterator[tuple]:
    """Yield ``(label, exclusive_seconds)`` for stage labels.

    Exclusive seconds subtract only *stage* children, so summing the
    yielded values counts every stage span's wall-clock exactly once
    regardless of stage-in-stage nesting (batch mode's source-inside-
    reduce, cluster's score-inside-merge).
    """
    stage_labels = {l for l in span_snapshot if l.startswith(prefix)}
    for label in sorted(stage_labels):
        stats = SpanStats.from_dict(span_snapshot[label])
        yield label, stats.exclusive_of(stage_labels)
