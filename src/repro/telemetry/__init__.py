"""``repro.telemetry`` — zero-dependency instrumentation for the pipeline.

One process-wide session, explicitly enabled::

    from repro import telemetry

    session = telemetry.enable()
    with telemetry.span("stage.reduce"):
        ...
    telemetry.count("pipeline.records", len(batch))
    snapshot = session.snapshot()
    telemetry.disable()

When no session is active — the default — every instrumentation hook
collapses to almost nothing: :func:`span` performs one module-global
load, one ``is None`` test, and returns a shared no-op context manager;
:func:`count`/:func:`gauge` return after the same test.  Hooks sit at
chunk and bin boundaries (thousands of events per run), never in
per-record loops, so the disabled overhead on the streaming hot path is
well under the 2% budget ``tools/check_perf.py`` gates.

The session aggregates three kinds of state (see the submodules):

* :mod:`repro.telemetry.spans` — nestable monotonic-clock spans with
  per-label count/total/min/max and parent/child time credits;
* :mod:`repro.telemetry.counters` — counters, gauges, and a sampling
  RSS/CPU poller (``/proc/self/statm`` + ``resource.getrusage``);
* :mod:`repro.telemetry.export` — schema-versioned JSONL sink and
  Prometheus-style text exposition.

Cluster shard workers run their own session (fresh after ``fork``) and
ship :meth:`TelemetrySession.snapshot` dicts over the existing result
queue; the coordinator attaches them via :meth:`TelemetrySession.add_shard`
so one exported file carries the whole cluster's breakdown.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, Optional

from .counters import (
    CounterSet,
    ResourcePoller,
    merge_counters,
    merge_gauges,
    merge_resources,
    sample_rss_bytes,
)
from .spans import SpanCollector, SpanStats, iter_top_level_stage_time, merge_span_stats

__all__ = [
    "TelemetrySession",
    "enable",
    "disable",
    "active",
    "enabled",
    "span",
    "record",
    "count",
    "counter_value",
    "gauge",
    "gauge_max",
    "timed_iter",
    "merge_snapshots",
    "sample_rss_bytes",
    "SpanStats",
    "SpanCollector",
    "CounterSet",
    "ResourcePoller",
    "iter_top_level_stage_time",
    "merge_span_stats",
]


class _NullSpan:
    """Shared no-op context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class TelemetrySession:
    """All telemetry state for one process (or one cluster shard)."""

    def __init__(self, poll_interval_s: float = 0.05, poll: bool = True) -> None:
        self.spans = SpanCollector()
        self.counters = CounterSet()
        self.poller = ResourcePoller(poll_interval_s)
        if poll:
            self.poller.start()
        self.started = time.perf_counter()
        #: per-shard snapshots attached by the cluster coordinator.
        self.shards: Dict[int, dict] = {}

    def add_shard(self, shard_id: int, snapshot: Optional[dict]) -> None:
        if snapshot is not None:
            self.shards[int(shard_id)] = snapshot

    def snapshot(self) -> dict:
        """Serializable view of everything collected so far."""
        return {
            "elapsed_s": time.perf_counter() - self.started,
            "spans": self.spans.stats(),
            "counters": self.counters.counters(),
            "gauges": self.counters.gauges(),
            "resources": self.poller.snapshot(),
            "shards": {str(k): v for k, v in sorted(self.shards.items())},
        }

    def close(self) -> None:
        self.poller.stop()


_session: Optional[TelemetrySession] = None


def enable(poll_interval_s: float = 0.05, poll: bool = True) -> TelemetrySession:
    """Install a fresh session (replacing any active one) and return it.

    Always builds a new session rather than reusing the old one: in a
    forked cluster worker the inherited session's poller thread does
    not exist, so reuse would silently stop sampling.
    """
    global _session
    if _session is not None:
        _session.close()
    _session = TelemetrySession(poll_interval_s=poll_interval_s, poll=poll)
    return _session


def disable() -> None:
    """Stop and remove the active session (no-op when already off)."""
    global _session
    if _session is not None:
        _session.close()
        _session = None


def active() -> Optional[TelemetrySession]:
    return _session


def enabled() -> bool:
    return _session is not None


def span(label: str):
    """Context manager timing ``label`` (shared no-op when disabled)."""
    s = _session
    if s is None:
        return _NULL_SPAN
    return s.spans.span(label)


def record(label: str, seconds: float) -> None:
    """Record an externally measured duration under ``label``."""
    s = _session
    if s is not None:
        s.spans.record(label, seconds)


def count(name: str, n: int = 1) -> None:
    s = _session
    if s is not None:
        s.counters.inc(name, n)


def counter_value(name: str, default: int = 0) -> int:
    s = _session
    if s is None:
        return default
    return s.counters.get(name, default)


def gauge(name: str, value: float) -> None:
    s = _session
    if s is not None:
        s.counters.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    s = _session
    if s is not None:
        s.counters.gauge_max(name, value)


def timed_iter(iterable: Iterable, label: str,
               counter: Optional[str] = None) -> Iterator:
    """Iterate ``iterable``, timing each ``next()`` under ``label``.

    Used to attribute producer time (``stage.source``) without touching
    the producer: the span covers only the generator's work, not the
    consumer's.  When ``counter`` is given and items have a length,
    ``len(item)`` is added to that counter per item.
    """
    it = iter(iterable)
    while True:
        with span(label):
            try:
                item = next(it)
            except StopIteration:
                return
        if counter is not None and _session is not None:
            try:
                _session.counters.inc(counter, len(item))
            except TypeError:
                pass
        yield item


def merge_snapshots(*snapshots: dict) -> dict:
    """Losslessly merge session snapshots (e.g. one per cluster shard).

    Spans merge by their monoid algebra, counters sum, gauges take the
    max, resources take peak-of-peaks and sum CPU seconds.  ``elapsed_s``
    is the max: shards run concurrently, so the merged view's clock is
    the slowest shard, not the sum.
    """
    snaps = [s for s in snapshots if s]
    if not snaps:
        return {
            "elapsed_s": 0.0, "spans": {}, "counters": {}, "gauges": {},
            "resources": {}, "shards": {},
        }
    return {
        "elapsed_s": max(float(s.get("elapsed_s", 0.0)) for s in snaps),
        "spans": merge_span_stats(*(s.get("spans", {}) for s in snaps)),
        "counters": merge_counters(*(s.get("counters", {}) for s in snaps)),
        "gauges": merge_gauges(*(s.get("gauges", {}) for s in snaps)),
        "resources": merge_resources(*(s.get("resources", {}) for s in snaps)),
        "shards": {},
    }
