"""Grouped-reduction kernels shared by the flows, stream, and cluster layers.

See :mod:`repro.kernels.grouped` for the core: composite-key sorting,
``np.add.reduceat`` run reduction, and one-pass grouped entropy over
the canonical sorted-run representation (:class:`GroupedRuns`).
"""

from repro.kernels.grouped import (
    GroupedRuns,
    group_reduce,
    group_sums,
    grouped_entropy,
    merge_histograms,
    segment_sums,
    sort_order,
)

__all__ = [
    "GroupedRuns",
    "group_reduce",
    "group_sums",
    "grouped_entropy",
    "merge_histograms",
    "segment_sums",
    "sort_order",
]
