"""Vectorized grouped-reduction kernel: the measurement pipeline's core.

Every entropy time series in the paper (Section 4) is built from
(group, feature value) -> packet count histograms, where a *group* is
an OD flow, a (bin, OD flow) pair, or a shard partition.  Doing that
grouping with per-group Python loops (mask + copy per OD, ``Counter``
per histogram) dominates the hot path at realistic record rates, so
this module reduces whole record batches with array primitives instead:

1. compose ``(group, value)`` into a single sortable int64 key —
   bit-packed when the ranges allow (one ``argsort``), ``np.lexsort``
   otherwise;
2. one sort brings equal keys together, run boundaries fall out of a
   single comparison, and ``np.add.reduceat`` sums the weights per run;
3. per-group Shannon entropies come from the sorted count runs in one
   vectorized pass (no per-group calls into :func:`sample_entropy`).

The result — :class:`GroupedRuns`, a CSR-style bundle of sorted
``(group, value, count)`` runs — is the canonical representation the
flows, stream, and cluster layers all exchange: within each group the
values are ascending and counts positive, which is exactly the
canonical histogram form the mergeable shard summaries serialize.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import telemetry as tel

__all__ = [
    "GroupedRuns",
    "group_reduce",
    "grouped_entropy",
    "group_sums",
    "merge_histograms",
    "segment_sums",
    "sort_order",
]

#: Bit-packing layout: key = group << 32 | value.  Usable whenever the
#: values fit 32 bits (IPv4 addresses, ports) and groups fit 31 bits
#: ((bin, OD) composites included) — i.e. every workload this repo
#: generates; :func:`group_reduce` falls back to lexsort otherwise.
_VALUE_BITS = 32


def _sort_order(groups: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Stable order sorting by (group, value)."""
    if (
        groups.size
        and groups[0] >= 0  # cheap guard before the full min scan
        and values.min() >= 0
        and values.max() < (1 << _VALUE_BITS)
        and groups.min() >= 0
        and groups.max() < (1 << (63 - _VALUE_BITS))
    ):
        packed = (groups << _VALUE_BITS) | values
        return np.argsort(packed, kind="stable")
    return np.lexsort((values, groups))


def sort_order(groups: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Public alias of the kernel's stable (group, value) sort order.

    The trace store persists per-record run indices derived from exactly
    this order, so precomputed-column replay reproduces the kernel's
    canonical run layout bit for bit.
    """
    return _sort_order(
        np.asarray(groups, dtype=np.int64), np.asarray(values, dtype=np.int64)
    )


# -- shared thread pool for the parallel reduction path ------------------
#
# One process-wide pool, lazily created and grown to the largest
# ``threads=`` request seen; numpy's argsort/reduceat release the GIL on
# large arrays, so partitions genuinely overlap.

_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None
_POOL_WORKERS = 0


def _executor(workers: int) -> ThreadPoolExecutor:
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-kernel"
            )
            _POOL_WORKERS = workers
        return _POOL


@dataclass(frozen=True)
class GroupedRuns:
    """Sorted (group, value, count) runs in CSR layout.

    Attributes:
        group_ids: ``(G,)`` distinct group ids, ascending; only groups
            with at least one positive-weight observation appear.
        starts: ``(G + 1,)`` offsets: group ``i`` owns
            ``values[starts[i]:starts[i+1]]`` (and the same count
            slice).
        values: ``(M,)`` feature values, ascending within each group.
        counts: ``(M,)`` summed weights per (group, value), all > 0.
    """

    group_ids: np.ndarray
    starts: np.ndarray
    values: np.ndarray
    counts: np.ndarray

    @property
    def n_groups(self) -> int:
        """Number of non-empty groups G."""
        return len(self.group_ids)

    def __len__(self) -> int:
        return len(self.values)

    def slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(values, counts)`` of the i-th group (views, not copies)."""
        lo, hi = self.starts[i], self.starts[i + 1]
        return self.values[lo:hi], self.counts[lo:hi]

    def group(self, group_id: int) -> tuple[np.ndarray, np.ndarray]:
        """``(values, counts)`` of a group by id (empty when absent)."""
        i = int(np.searchsorted(self.group_ids, group_id))
        if i == self.n_groups or self.group_ids[i] != group_id:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return self.slice(i)

    def lengths(self) -> np.ndarray:
        """``(G,)`` number of distinct values per group."""
        return np.diff(self.starts)

    def totals(self) -> np.ndarray:
        """``(G,)`` total weight per group (int64, exact)."""
        if len(self.values) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.add.reduceat(self.counts, self.starts[:-1])

    def entropies(self) -> np.ndarray:
        """``(G,)`` per-group sample entropies in one vectorized pass."""
        return grouped_entropy(self.counts, self.starts)


def _reduce_partition(
    groups: np.ndarray, values: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort + reduce one partition's rows (no telemetry: runs off-thread).

    Returns ``(group_ids, group_starts, run_values, counts)`` with
    ``group_starts`` local to the partition and *without* the trailing
    total — the stitcher offsets and terminates it.
    """
    order = _sort_order(groups, values)
    g = groups[order]
    v = values[order]
    w = weights[order]
    new_run = np.empty(len(g), dtype=bool)
    new_run[0] = True
    np.logical_or(g[1:] != g[:-1], v[1:] != v[:-1], out=new_run[1:])
    run_starts = np.flatnonzero(new_run)
    counts = np.add.reduceat(w, run_starts)
    run_groups = g[run_starts]
    run_values = v[run_starts]

    new_group = np.empty(len(run_groups), dtype=bool)
    new_group[0] = True
    np.not_equal(run_groups[1:], run_groups[:-1], out=new_group[1:])
    group_starts = np.flatnonzero(new_group)
    return run_groups[group_starts], group_starts, run_values, counts


def _group_reduce_parallel(
    groups: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray,
    threads: int,
) -> GroupedRuns:
    """Partition rows by group range, reduce partitions on the shared
    thread pool, stitch the CSR bundles back in canonical order.

    Every group id falls in exactly one partition (the ranges are
    disjoint and ascending) and ``np.flatnonzero`` preserves each
    partition's original row order, so a partition's stable sort equals
    the global stable sort restricted to its group range — the stitched
    result is bit-identical to the single-threaded reference.
    """
    gmin = int(groups.min())
    gmax = int(groups.max())
    span = gmax - gmin + 1
    t = min(threads, span)
    # Group-range pivots: partition i owns groups in [edges[i-1], edges[i]).
    edges = gmin + (span * np.arange(1, t)) // t
    part = np.searchsorted(edges, groups, side="right")
    with tel.span("kernel.sort"):
        slices = []
        for i in range(t):
            idx = np.flatnonzero(part == i)
            if len(idx):
                slices.append((groups[idx], values[idx], weights[idx]))
        pool = _executor(threads)
        results = list(pool.map(lambda s: _reduce_partition(*s), slices))
    with tel.span("kernel.reduceat"):
        gid_parts: list[np.ndarray] = []
        start_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        count_parts: list[np.ndarray] = []
        run_offset = 0
        for gids, gstarts, rvalues, rcounts in results:
            if len(rvalues) == 0:
                continue
            gid_parts.append(gids)
            start_parts.append(gstarts + run_offset)
            value_parts.append(rvalues)
            count_parts.append(rcounts)
            run_offset += len(rvalues)
        if not gid_parts:
            empty = np.zeros(0, dtype=np.int64)
            return GroupedRuns(empty, np.zeros(1, dtype=np.int64), empty, empty)
        starts = np.append(np.concatenate(start_parts), run_offset).astype(np.int64)
        return GroupedRuns(
            np.concatenate(gid_parts),
            starts,
            np.concatenate(value_parts),
            np.concatenate(count_parts),
        )


def group_reduce(
    groups: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray | None = None,
    threads: int = 1,
) -> GroupedRuns:
    """Reduce (group, value, weight) triples into :class:`GroupedRuns`.

    Args:
        groups: ``(n,)`` integer group ids (need not be sorted).
        values: ``(n,)`` integer feature values, aligned with groups.
        weights: ``(n,)`` non-negative integer weights; defaults to 1
            per row (pure occurrence counting).  Zero-weight rows are
            dropped — they are not part of the empirical histogram,
            matching :meth:`FeatureHistogram.add`.
        threads: Sort/reduce partitions on this many pool threads
            (``1``, the default, is the pinned single-threaded
            reference).  Any value produces bit-identical output — the
            parallel path partitions by disjoint group ranges and
            stitches runs back in canonical order.

    Returns:
        The canonical sorted-run representation; counts are exact int64
        sums of the weights per distinct (group, value).
    """
    groups = np.asarray(groups, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    if groups.shape != values.shape or groups.ndim != 1:
        raise ValueError("groups and values must be aligned 1-D arrays")
    if weights is None:
        weights = np.ones(len(groups), dtype=np.int64)
    else:
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != groups.shape:
            raise ValueError("weights must align with groups")
        if weights.size and weights.min() < 0:
            raise ValueError("weights must be non-negative")
        keep = weights > 0
        if not keep.all():
            groups, values, weights = groups[keep], values[keep], weights[keep]
    if len(groups) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return GroupedRuns(empty, np.zeros(1, dtype=np.int64), empty, empty)

    threads = max(1, int(threads))
    if threads > 1:
        return _group_reduce_parallel(groups, values, weights, threads)

    with tel.span("kernel.sort"):
        order = _sort_order(groups, values)
        g = groups[order]
        v = values[order]
        w = weights[order]

    with tel.span("kernel.reduceat"):
        new_run = np.empty(len(g), dtype=bool)
        new_run[0] = True
        np.logical_or(g[1:] != g[:-1], v[1:] != v[:-1], out=new_run[1:])
        run_starts = np.flatnonzero(new_run)
        counts = np.add.reduceat(w, run_starts)
        run_groups = g[run_starts]
        run_values = v[run_starts]

        new_group = np.empty(len(run_groups), dtype=bool)
        new_group[0] = True
        np.not_equal(run_groups[1:], run_groups[:-1], out=new_group[1:])
        group_starts = np.flatnonzero(new_group)
        starts = np.append(group_starts, len(run_values)).astype(np.int64)
    return GroupedRuns(run_groups[group_starts], starts, run_values, counts)


def grouped_entropy(counts: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment sample entropy (bits) over a CSR count layout.

    ``counts[starts[i]:starts[i+1]]`` is segment ``i``'s histogram; the
    return value has one entropy per segment.  Empty segments and
    zero-count entries yield/contribute 0, matching
    :func:`repro.core.entropy.sample_entropy` conventions — and the
    per-element arithmetic (p = n/S, p*log2 p) is identical to the
    scalar routine's, so results agree to within summation-order
    rounding (~1 ulp).
    """
    counts = np.asarray(counts, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    n_segments = len(starts) - 1
    out = np.zeros(n_segments)
    if n_segments == 0 or len(counts) == 0:
        return out
    lengths = np.diff(starts)
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    with tel.span("kernel.entropy"):
        # reduceat over the non-empty segment starts only: consecutive
        # selected starts delimit exactly one segment each (empty
        # segments occupy zero width between them).
        seg_starts = starts[:-1][nonempty]
        totals = np.add.reduceat(counts, seg_starts)
        per_element_total = np.repeat(totals, lengths[nonempty])
        with np.errstate(divide="ignore", invalid="ignore"):
            p = np.where(per_element_total > 0, counts / per_element_total, 0.0)
            terms = p * np.log2(p, out=np.zeros_like(p), where=p > 0)
        entropies = -np.add.reduceat(terms, seg_starts)
        # Segments whose total is 0 (all-zero counts) have entropy 0.
        entropies[totals == 0] = 0.0
        out[nonempty] = entropies
    return out


def segment_sums(x: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment float sums over a CSR layout.

    ``x[starts[i]:starts[i+1]]`` is segment ``i``; empty segments sum
    to 0 (plain ``np.add.reduceat`` mis-handles them).
    """
    x = np.asarray(x, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    n_segments = len(starts) - 1
    out = np.zeros(n_segments)
    if n_segments == 0 or len(x) == 0:
        return out
    lengths = np.diff(starts)
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    out[nonempty] = np.add.reduceat(x, starts[:-1][nonempty])
    return out


def group_sums(groups: np.ndarray, weights: np.ndarray, n_groups: int) -> np.ndarray:
    """Dense ``(n_groups,)`` int64 sum of weights per group id.

    ``np.bincount`` accumulates in float64, which is exact for totals
    below 2**53 — far above any per-bin packet/byte count this pipeline
    produces — so the cast back to int64 is lossless.
    """
    groups = np.asarray(groups, dtype=np.int64)
    weights = np.asarray(weights)
    sums = np.bincount(groups, weights=weights, minlength=n_groups)
    return sums.astype(np.int64)


def merge_histograms(
    values_a: np.ndarray,
    counts_a: np.ndarray,
    values_b: np.ndarray,
    counts_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two canonical histograms into one (values sorted, counts
    summed) — same result as
    :func:`repro.flows.sketches.canonical_histogram` over the
    concatenation, via one sort + reduceat instead of unique + add.at.
    """
    values = np.concatenate([np.asarray(values_a, dtype=np.int64),
                             np.asarray(values_b, dtype=np.int64)])
    counts = np.concatenate([np.asarray(counts_a, dtype=np.int64),
                             np.asarray(counts_b, dtype=np.int64)])
    if len(values) == 0:
        return values, counts
    order = np.argsort(values, kind="stable")
    v = values[order]
    w = counts[order]
    new_run = np.empty(len(v), dtype=bool)
    new_run[0] = True
    np.not_equal(v[1:], v[:-1], out=new_run[1:])
    run_starts = np.flatnonzero(new_run)
    return v[run_starts], np.add.reduceat(w, run_starts)
