"""Summary transports: how shard workers reach the coordinator.

The cluster runner speaks one message vocabulary regardless of where a
worker lives; a :class:`SummaryTransport` owns the links and normalises
whatever happens on them into plain tuples:

* ``("summary", shard, attempt, payload, heartbeat)`` — one wire-format
  :class:`~repro.cluster.summary.ShardBinSummary` (``RBS2`` bytes, CRC
  inside, verified at merge time);
* ``("close", shard, attempt, n_records, late, snapshot)`` — the shard
  finished; ``n_records`` is an int for a leaf worker, a per-child dict
  for an aggregator;
* ``("error", shard, attempt, text)`` — the worker raised;
* ``("eof", shard, exitcode)`` — the link died; everything the worker
  sent before dying has already been delivered (pipes and TCP both
  deliver in order ahead of EOF);
* ``("frame_error", shard, reason)`` — undecodable bytes on a TCP
  link; routed into the same supervised-restart path as a corrupt
  summary payload.

Two implementations:

:class:`PipeTransport`
    The original per-worker ``multiprocessing.Pipe``.  One pipe per
    worker so a killed worker can never wedge a sibling, back-pressure
    via the OS pipe buffer.

:class:`TcpTransport`
    Length-prefixed frames over raw TCP sockets.  Frame layout::

        <u32 total_len> <u32 header_len> <header JSON> <payload bytes>

    The header carries the message kind and scalar fields; the payload
    carries the ``RBS2`` summary bytes (which embed their own CRC32,
    so a flipped bit surfaces as ``SummaryCorruptError`` at the merge,
    not silent skew), the close snapshot JSON, or the pickled worker
    spec.  Without ``--listen`` the transport binds a loopback
    ephemeral port and spawns local connector processes — same
    process tree as the pipe transport, but every byte crosses a real
    socket.  With ``--listen HOST:PORT`` it only binds and waits:
    remote ``repro worker --connect HOST:PORT`` processes pick up
    queued shard specs FIFO (the spec is pickled on the wire — run
    this on a trusted network only, exactly like every other pickle
    transport).  The supervisor's deadlines and degrade policy cover a
    remote worker that never connects or silently dies.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import struct
import time
from collections import deque
from multiprocessing import connection as mp_connection

__all__ = [
    "FrameError",
    "PipeTransport",
    "SummaryTransport",
    "TcpTransport",
    "decode_message",
    "encode_message",
    "parse_hostport",
    "serve",
]


def parse_hostport(text: str) -> tuple[str, int]:
    """``"HOST:PORT"`` -> ``(host, port)`` (host may be empty for
    all-interfaces binds, spelled ``:9100`` or ``0.0.0.0:9100``)."""
    host, sep, port_text = str(text).rpartition(":")
    if not sep:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"port must be an integer, got {port_text!r}")
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range: {port}")
    return host or "0.0.0.0", port

_LEN = struct.Struct("<II")  # (total_len, header_len)
#: Hard per-frame ceiling: a summary for even the largest topology is
#: a few MB; anything bigger is a corrupt or hostile length prefix.
MAX_FRAME_BYTES = 256 * 1024 * 1024
_HANDSHAKE_TIMEOUT_S = 10.0
_RECV_BYTES = 1 << 16


class FrameError(ValueError):
    """A TCP frame that cannot be decoded (bad length, header, kind)."""


# -- frame codec -------------------------------------------------------


def _encode_frame(header: dict, payload: bytes = b"") -> bytes:
    head = json.dumps(header, separators=(",", ":")).encode()
    return _LEN.pack(len(head) + len(payload), len(head)) + head + payload


def encode_message(message: tuple) -> bytes:
    """One runner message tuple -> one wire frame."""
    kind = message[0]
    if kind == "summary":
        _, shard, attempt, payload, heartbeat = message
        header = {"kind": kind, "shard": shard, "attempt": attempt,
                  "heartbeat": heartbeat}
        return _encode_frame(header, payload)
    if kind == "close":
        _, shard, attempt, n_records, late, snapshot = message
        if isinstance(n_records, dict):
            n_records = {str(k): int(v) for k, v in n_records.items()}
        header = {"kind": kind, "shard": shard, "attempt": attempt,
                  "n_records": n_records, "late": late}
        payload = b"" if snapshot is None else json.dumps(snapshot).encode()
        return _encode_frame(header, payload)
    if kind == "error":
        _, shard, attempt, text = message
        header = {"kind": kind, "shard": shard, "attempt": attempt}
        return _encode_frame(header, text.encode())
    raise FrameError(f"unsendable message kind {kind!r}")


def decode_message(header: dict, payload: bytes) -> tuple:
    """One decoded frame -> the runner message tuple."""
    try:
        kind = header["kind"]
        if kind == "summary":
            return ("summary", header["shard"], header["attempt"], payload,
                    header.get("heartbeat"))
        if kind == "close":
            n_records = header["n_records"]
            if isinstance(n_records, dict):
                n_records = {int(k): int(v) for k, v in n_records.items()}
            snapshot = json.loads(payload) if payload else None
            return ("close", header["shard"], header["attempt"], n_records,
                    header["late"], snapshot)
        if kind == "error":
            return ("error", header["shard"], header["attempt"],
                    payload.decode(errors="replace"))
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"malformed {header.get('kind', '?')} frame: {exc}")
    raise FrameError(f"unknown frame kind {header.get('kind')!r}")


class _FrameBuffer:
    """Reassembles frames from a TCP byte stream (recv gives fragments)."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[dict, bytes]]:
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            total, head_len = _LEN.unpack_from(self._buf)
            if total > MAX_FRAME_BYTES or head_len > total:
                raise FrameError(
                    f"implausible frame length {total} (header {head_len})"
                )
            end = _LEN.size + total
            if len(self._buf) < end:
                return frames
            raw = bytes(self._buf[_LEN.size:end])
            del self._buf[:end]
            try:
                header = json.loads(raw[:head_len].decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"undecodable frame header: {exc}")
            if not isinstance(header, dict):
                raise FrameError("frame header is not an object")
            frames.append((header, raw[head_len:]))


def _recv_frame(sock: socket.socket, buffer: _FrameBuffer) -> tuple[dict, bytes]:
    """Block until one full frame arrives (handshake use only)."""
    while True:
        frames = buffer.feed(b"")
        if frames:
            return frames[0]
        data = sock.recv(_RECV_BYTES)
        if not data:
            raise FrameError("connection closed mid-frame")
        frames = buffer.feed(data)
        if frames:
            # At most one frame is in flight during a handshake.
            return frames[0]


class _SocketConn:
    """Worker-side adapter: the ``conn.send(message)`` surface that
    ``_shard_worker`` expects, over a framed TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def send(self, message: tuple) -> None:
        self._sock.sendall(encode_message(message))

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._sock.close()


# -- transports --------------------------------------------------------


class SummaryTransport:
    """Owns the links between the supervisor and its worker units."""

    def launch(self, spec) -> None:
        """Start (or queue, for remote TCP) one worker for ``spec``."""
        raise NotImplementedError

    def poll(self, timeout: float) -> list[tuple]:
        """Wait up to ``timeout`` seconds and return decoded messages."""
        raise NotImplementedError

    def discard(self, unit_id: int) -> None:
        """Sever the unit's link and terminate its local process."""
        raise NotImplementedError

    def drain(self) -> None:
        """Join local processes after a clean finish."""

    def shutdown(self) -> None:
        """Close every link; terminate any local process still alive."""
        raise NotImplementedError


class PipeTransport(SummaryTransport):
    """One ``multiprocessing.Pipe`` per local worker process."""

    def __init__(self, entry, context) -> None:
        self._entry = entry
        self._context = context
        self._procs: dict[int, object] = {}
        self._conns: dict[int, mp_connection.Connection] = {}
        self._conn_unit: dict[mp_connection.Connection, int] = {}

    def launch(self, spec) -> None:
        unit_id = spec.shard_id
        reader, writer_end = self._context.Pipe(duplex=False)
        # Aggregator units spawn their own children, which the daemon
        # flag forbids; they install a SIGTERM handler instead so the
        # subtree still dies with them.
        proc = self._context.Process(
            target=self._entry, args=(spec, writer_end),
            daemon=not hasattr(spec, "children"),
        )
        proc.start()
        # Close the parent's copy of the write end *now*: the pipe's
        # EOF fires when the last writer closes, and must not wait on
        # this process (or later-forked siblings, which never inherit
        # an already-closed fd).
        writer_end.close()
        self._procs[unit_id] = proc
        self._conns[unit_id] = reader
        self._conn_unit[reader] = unit_id

    def poll(self, timeout: float) -> list[tuple]:
        if not self._conn_unit:
            time.sleep(timeout)
            return []
        ready = mp_connection.wait(list(self._conn_unit), timeout=timeout)
        messages: list[tuple] = []
        for reader in ready:
            unit_id = self._conn_unit.get(reader)
            if unit_id is None:
                continue  # discarded earlier in this batch
            try:
                messages.append(reader.recv())
            except EOFError:
                # The worker is gone and — pipes deliver in order —
                # everything it sent has already been handled.
                self._drop(unit_id)
                proc = self._procs.get(unit_id)
                if proc is not None:
                    proc.join()
                code = proc.exitcode if proc is not None else None
                messages.append(("eof", unit_id, code))
        return messages

    def _drop(self, unit_id: int) -> None:
        reader = self._conns.pop(unit_id, None)
        if reader is not None:
            self._conn_unit.pop(reader, None)
            reader.close()

    def discard(self, unit_id: int) -> None:
        self._drop(unit_id)
        proc = self._procs.pop(unit_id, None)
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join()

    def drain(self) -> None:
        for proc in self._procs.values():
            proc.join()

    def shutdown(self) -> None:
        for unit_id in list(self._conns):
            self._drop(unit_id)
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join()
        self._procs.clear()


class TcpTransport(SummaryTransport):
    """Framed TCP links, loopback self-spawned or remote workers.

    ``spawn_local=True`` (the default, used when no ``--listen`` was
    given) binds ``127.0.0.1:0`` and forks one connector process per
    launched spec.  ``spawn_local=False`` binds the given address and
    waits for external ``repro worker --connect`` processes; queued
    specs are handed out in launch order as workers say hello.
    """

    def __init__(self, context, listen=None, spawn_local: bool = True) -> None:
        self._context = context
        self._spawn_local = spawn_local
        host, port = listen or ("127.0.0.1", 0)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        # A connection that vanishes between wait() and accept() must
        # not wedge the supervisor loop.
        self._listener.settimeout(_HANDSHAKE_TIMEOUT_S)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._pending: deque = deque()  # specs awaiting a connection
        self._parked: deque = deque()  # hello'd workers awaiting a spec
        self._socks: dict[int, socket.socket] = {}
        self._sock_unit: dict[socket.socket, int] = {}
        self._buffers: dict[int, _FrameBuffer] = {}
        self._procs: dict[int, list] = {}  # unit -> local connector procs
        self._unassigned: list = []  # local procs not yet handshaken

    def launch(self, spec) -> None:
        self._pending.append(spec)
        self._drain_parked()
        if self._spawn_local:
            # Non-daemon: the connector may be handed an aggregator
            # spec, and daemonic processes cannot have children.
            proc = self._context.Process(
                target=serve, args=(self.address,), kwargs={"once": True}
            )
            proc.start()
            self._unassigned.append(proc)

    def _accept(self) -> None:
        try:
            sock, _addr = self._listener.accept()
        except (BlockingIOError, OSError):
            return
        sock.settimeout(_HANDSHAKE_TIMEOUT_S)
        buffer = _FrameBuffer()
        try:
            header, _payload = _recv_frame(sock, buffer)
            if header.get("kind") != "hello":
                raise FrameError(f"expected hello, got {header.get('kind')!r}")
        except (FrameError, OSError, socket.timeout):
            sock.close()
            return
        if not self._pending:
            # A worker dialing in early (before launch) or beyond the
            # shard count waits parked; the next launch — including a
            # supervised restart — assigns it.
            self._parked.append((sock, buffer, header.get("pid")))
            return
        spec = self._pending.popleft()
        if not self._try_assign(sock, buffer, header.get("pid"), spec):
            self._pending.appendleft(spec)

    def _drain_parked(self) -> None:
        while self._parked and self._pending:
            sock, buffer, pid = self._parked.popleft()
            spec = self._pending.popleft()
            if not self._try_assign(sock, buffer, pid, spec):
                self._pending.appendleft(spec)

    def _try_assign(self, sock, buffer, pid, spec) -> bool:
        try:
            sock.sendall(_encode_frame({"kind": "spec"}, pickle.dumps(spec)))
        except OSError:
            sock.close()  # worker went away while parked; next one
            return False
        sock.settimeout(None)
        sock.setblocking(False)
        unit_id = spec.shard_id
        self._socks[unit_id] = sock
        self._sock_unit[sock] = unit_id
        self._buffers[unit_id] = buffer
        if self._unassigned and pid is not None:
            for proc in list(self._unassigned):
                if proc.pid == pid:
                    self._unassigned.remove(proc)
                    self._procs.setdefault(unit_id, []).append(proc)
                    break
        return True

    def poll(self, timeout: float) -> list[tuple]:
        waitables = [self._listener] + list(self._sock_unit)
        ready = mp_connection.wait(waitables, timeout=timeout)
        messages: list[tuple] = []
        for obj in ready:
            if obj is self._listener:
                self._accept()
                continue
            unit_id = self._sock_unit.get(obj)
            if unit_id is None:
                continue  # discarded earlier in this batch
            try:
                data = obj.recv(_RECV_BYTES)
            except BlockingIOError:
                continue
            except OSError:
                data = b""
            if not data:
                # TCP delivers in order ahead of FIN, so everything the
                # worker sent is already buffered/decoded by now.
                self._drop(unit_id)
                messages.append(("eof", unit_id, self._reap(unit_id)))
                continue
            try:
                frames = self._buffers[unit_id].feed(data)
            except FrameError as exc:
                self._drop(unit_id)
                messages.append(("frame_error", unit_id, str(exc)))
                continue
            for header, payload in frames:
                try:
                    messages.append(decode_message(header, payload))
                except FrameError as exc:
                    self._drop(unit_id)
                    messages.append(("frame_error", unit_id, str(exc)))
                    break
        return messages

    def _drop(self, unit_id: int) -> None:
        sock = self._socks.pop(unit_id, None)
        if sock is not None:
            self._sock_unit.pop(sock, None)
            sock.close()
        self._buffers.pop(unit_id, None)

    def _reap(self, unit_id: int):
        code = None
        for proc in self._procs.pop(unit_id, []):
            proc.join()
            code = proc.exitcode if proc.exitcode is not None else code
        return code

    def discard(self, unit_id: int) -> None:
        self._drop(unit_id)
        # A spec still queued for this unit (remote worker never
        # connected) must not reach a late-arriving worker: the
        # supervisor will relaunch with a fresh attempt number.
        self._pending = deque(
            s for s in self._pending if s.shard_id != unit_id
        )
        for proc in self._procs.pop(unit_id, []):
            if proc.is_alive():
                proc.terminate()
                proc.join()

    def drain(self) -> None:
        for procs in self._procs.values():
            for proc in procs:
                proc.join()
        for proc in self._unassigned:
            proc.join()

    def shutdown(self) -> None:
        for unit_id in list(self._socks):
            self._drop(unit_id)
        while self._parked:
            sock, _buffer, _pid = self._parked.popleft()
            try:
                sock.close()  # parked workers see EOF and exit cleanly
            except OSError:
                pass
        for procs in list(self._procs.values()) + [self._unassigned]:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join()
        self._procs.clear()
        self._unassigned = []
        try:
            self._listener.close()
        except OSError:
            pass


# -- worker side -------------------------------------------------------


def serve(address: tuple[str, int], once: bool = False) -> int:
    """Connect to a coordinator and run assigned shard specs.

    The ``repro worker --connect HOST:PORT`` entry point (and the local
    connector the loopback transport forks).  Each connection serves
    one spec: hello -> receive pickled spec -> run it, shipping frames
    back over the same socket.  A worker that dials in before the
    coordinator has work is parked and waits — possibly indefinitely —
    for an assignment; the coordinator closing the link releases it.
    With ``once=False`` the worker reconnects for further assignments
    (e.g. a supervised restart) until the coordinator stops listening.

    Returns:
        Number of shard assignments served.

    Raises:
        OSError: The first connection attempt was refused (no
            coordinator is listening there).
    """
    from repro.cluster.runner import _unit_main

    served = 0
    while True:
        try:
            sock = socket.create_connection(address, timeout=30.0)
        except OSError:
            if served:
                return served  # coordinator finished and closed shop
            raise
        try:
            # Wait for the spec without a deadline: a parked worker is
            # the idle half of a worker pool, released by coordinator
            # close (EOF -> FrameError below).
            sock.settimeout(None)
            try:
                sock.sendall(
                    _encode_frame({"kind": "hello", "pid": os.getpid()})
                )
                header, payload = _recv_frame(sock, _FrameBuffer())
            except (FrameError, OSError):
                return served  # coordinator closed without assigning
            if header.get("kind") != "spec":
                return served
            spec = pickle.loads(payload)
            _unit_main(spec, _SocketConn(sock))
            served += 1
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if once:
            return served
