"""Multi-process cluster driver for the synthetic workload.

Ties the pieces together into the ``repro cluster`` command: N worker
processes each run a :class:`repro.cluster.shard.ShardMonitor` over
their OD-flow slice of a deterministic trace, ship wire-format
summaries through a bounded queue (back-pressure: a worker sleeping on a
full queue stops producing records), and the parent's
:class:`repro.cluster.coordinator.ClusterCoordinator` merges and scores
them with a :class:`repro.stream.engine.StreamingDetectionEngine`.

Workers source their records one of two ways:

* **shared trace file** (``trace_path``): every worker memory-maps the
  *same* columnar trace (:mod:`repro.io.trace`) and keeps only its
  OD-flow slice of each chunk — one producer pass at write time, zero
  regeneration per worker;
* **inline synthesis** (default): each worker materialises its OD
  slice from a :class:`repro.traffic.generator.TrafficGenerator`.

Determinism: the synthetic record stream seeds every (OD flow, bin)
draw from ``SeedSequence([generator_seed, stream_seed, od, bin])``
(see :func:`repro.stream.chunks.synthetic_record_stream`), and a trace
written by :func:`repro.io.trace.write_trace` replays those exact
records — so whichever source a worker uses, it sees bit-identical
records for its ODs no matter how many shards exist, and the cluster's
detections are bin-for-bin identical to a single process consuming the
whole trace (exact-histogram mode; sketch mode matches within
estimator tolerance).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.shard import ShardMonitor
from repro.flows.binning import BIN_SECONDS
from repro.stream.chunks import iter_record_chunks, synthetic_record_stream
from repro.stream.engine import StreamConfig, StreamDetection, StreamingDetectionEngine, StreamingReport

__all__ = ["ClusterResult", "run_cluster", "shard_ods"]

_NETWORKS = ("abilene", "geant")


def shard_ods(n_od_flows: int, n_shards: int, shard_id: int) -> list[int]:
    """Round-robin OD-flow partition: shard ``s`` owns ``od % n_shards == s``.

    Round-robin (rather than contiguous ranges) balances load because
    the gravity model makes OD-flow rates heavy-tailed in OD index.
    """
    if not 0 <= shard_id < n_shards:
        raise ValueError("shard_id must be in [0, n_shards)")
    return list(range(shard_id, n_od_flows, n_shards))


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker needs to rebuild its shard (picklable)."""

    network: str
    n_bins: int
    seed: int
    shard_id: int
    n_shards: int
    max_records_per_od: int
    chunk_records: int
    exact: bool
    sketch_width: int
    sketch_depth: int
    sketch_seed: int
    trace_path: str | None = None
    bin_width: float = BIN_SECONDS
    bin_start: float = 0.0


def _build_topology(network: str):
    from repro.net.topology import abilene, geant

    if network not in _NETWORKS:
        raise ValueError(f"unknown network {network!r}; expected one of {_NETWORKS}")
    return abilene() if network == "abilene" else geant()


def _worker_source(spec: _WorkerSpec, topology, monitor):
    """This shard's ``(chunk, ods)`` pairs: mmap'd trace slice or synthesis.

    ``ods`` is the per-record OD attribution when the worker already
    resolved it (the shared-trace slice path, where attribution doubles
    as the shard filter — resolved once, fed to the monitor so the
    stage does not repeat the longest-prefix pass), else None.
    """
    if spec.trace_path is not None:
        from repro.io.trace import TraceReader

        reader = TraceReader(spec.trace_path)
        router = monitor.router  # share the stage's LPM tables
        for chunk in reader.iter_chunks(
            chunk_records=spec.chunk_records, bins=range(spec.n_bins)
        ):
            ods = router.resolve_ods_mixed(chunk.ingress_pop, chunk.dst_ip)
            if spec.n_shards > 1:
                mask = ods % spec.n_shards == spec.shard_id
                if not mask.any():
                    continue
                chunk = chunk.select(mask)
                ods = ods[mask]
            yield chunk, ods
        return
    from repro.flows.binning import TimeBins
    from repro.traffic.generator import TrafficGenerator

    generator = TrafficGenerator(
        topology,
        TimeBins(n_bins=spec.n_bins, width=spec.bin_width, start=spec.bin_start),
        seed=spec.seed,
    )
    ods = shard_ods(topology.n_od_flows, spec.n_shards, spec.shard_id)
    source = synthetic_record_stream(
        generator,
        range(spec.n_bins),
        ods=ods,
        max_records_per_od=spec.max_records_per_od,
        seed=spec.seed,
    )
    for chunk in iter_record_chunks(source, spec.chunk_records):
        yield chunk, None


def _shard_worker(spec: _WorkerSpec, queue) -> None:
    """Worker entry point: produce records, reduce, ship, close."""
    try:
        topology = _build_topology(spec.network)
        monitor = ShardMonitor(
            topology,
            bin_width=spec.bin_width,
            start=spec.bin_start,
            width=spec.sketch_width,
            depth=spec.sketch_depth,
            sketch_seed=spec.sketch_seed,
            exact=spec.exact,
            shard_id=spec.shard_id,
        )
        n_records = 0
        for chunk, ods in _worker_source(spec, topology, monitor):
            n_records += len(chunk)
            for summary in monitor.ingest(chunk, ods=ods):
                queue.put(("summary", spec.shard_id, summary.to_bytes()))
        for summary in monitor.flush():
            queue.put(("summary", spec.shard_id, summary.to_bytes()))
        queue.put(("close", spec.shard_id, n_records, monitor.late_records))
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        import traceback

        queue.put(("error", spec.shard_id, f"{exc!r}\n{traceback.format_exc()}"))


@dataclass
class ClusterResult:
    """Outcome of one cluster run.

    Attributes:
        report: The merged :class:`StreamingReport` (same shape as a
            single-process run; ``to_diagnosis_report()`` applies).
        n_shards: Worker count.
        n_records: Records ingested across all shards.
        elapsed: Wall-clock seconds, worker launch to final merge.
        shard_records: Per-shard record counts (load-balance check).
    """

    report: StreamingReport
    n_shards: int
    n_records: int
    elapsed: float
    shard_records: dict[int, int] = field(default_factory=dict)

    @property
    def records_per_sec(self) -> float:
        """Cluster-wide ingest throughput."""
        return self.n_records / self.elapsed if self.elapsed > 0 else float("inf")


def run_cluster(
    network: str = "abilene",
    n_bins: int = 72,
    seed: int = 0,
    n_shards: int = 2,
    config: StreamConfig | None = None,
    max_records_per_od: int = 400,
    queue_depth: int = 16,
    start_method: str | None = None,
    on_detection: Callable[[StreamDetection], None] | None = None,
    trace_path: str | Path | None = None,
) -> ClusterResult:
    """Run the sharded pipeline end-to-end on a synthetic trace.

    Args:
        network: ``"abilene"`` or ``"geant"``.
        n_bins: Bins to stream (warm-up included).  With a trace this
            must not exceed the bins the trace covers; pass
            ``trace_info(path).n_bins`` to stream all of it.
        seed: Master seed (generator and record draws; unused when
            replaying a trace).
        n_shards: Worker process count (>= 1).
        config: Engine knobs; ``exact_histograms``, sketch geometry and
            ``chunk_records`` also shape the shard monitors.
        max_records_per_od: Records materialised per (OD flow, bin)
            (inline synthesis only).
        queue_depth: Bound on in-flight summaries per queue — the
            back-pressure knob; workers block rather than outrun the
            coordinator.
        start_method: ``multiprocessing`` start method (None: platform
            default, e.g. ``fork`` on Linux).
        on_detection: Callback invoked with each verdict as bins close
            (live output; the verdicts also land in the report).
        trace_path: Optional recorded trace (:mod:`repro.io.trace`).
            When given, every worker memory-maps this one file and
            ingests only its OD slice of each chunk — no per-worker
            record regeneration.  The trace's network must match
            ``network``.

    Returns:
        A :class:`ClusterResult` with the merged report and throughput.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    topology = _build_topology(network)
    bin_width, bin_start = BIN_SECONDS, 0.0
    if trace_path is not None:
        from repro.io.trace import trace_info

        info = trace_info(trace_path)
        info.ensure_compatible(network=topology.name, min_bins=n_bins)
        # The engine and every shard monitor adopt the trace's grid —
        # re-binning a trace onto a different grid would silently
        # change every per-bin feature.
        bin_width, bin_start = info.bins.width, info.bins.start
        trace_path = str(trace_path)
    config = config or StreamConfig()
    engine = StreamingDetectionEngine(
        topology, config, bin_width=bin_width, start=bin_start
    )
    coordinator = ClusterCoordinator(engine, shard_ids=range(n_shards))
    specs = [
        _WorkerSpec(
            network=network,
            n_bins=n_bins,
            seed=seed,
            shard_id=shard_id,
            n_shards=n_shards,
            max_records_per_od=max_records_per_od,
            chunk_records=config.chunk_records,
            exact=config.exact_histograms,
            sketch_width=config.sketch_width,
            sketch_depth=config.sketch_depth,
            sketch_seed=config.sketch_seed,
            trace_path=trace_path,
            bin_width=bin_width,
            bin_start=bin_start,
        )
        for shard_id in range(n_shards)
    ]

    context = multiprocessing.get_context(start_method)
    queue = context.Queue(maxsize=queue_depth)
    workers = [
        context.Process(target=_shard_worker, args=(spec, queue), daemon=True)
        for spec in specs
    ]
    start = time.perf_counter()
    shard_records: dict[int, int] = {}
    try:
        for worker in workers:
            worker.start()
        open_shards = set(range(n_shards))
        while open_shards:
            try:
                message = queue.get(timeout=1.0)
            except queue_module.Empty:
                # A worker killed hard (OOM, segfault) never sends its
                # close/error message; without this liveness check the
                # coordinator would block on the queue forever.
                for shard_id in sorted(open_shards):
                    worker = workers[shard_id]
                    if not worker.is_alive() and worker.exitcode != 0:
                        raise RuntimeError(
                            f"shard {shard_id} worker died with exit code "
                            f"{worker.exitcode} before closing its stream"
                        )
                continue
            kind = message[0]
            if kind == "summary":
                _, shard_id, payload = message
                verdicts = coordinator.add_serialized(shard_id, payload)
            elif kind == "close":
                _, shard_id, n_records, late_records = message
                shard_records[shard_id] = n_records
                coordinator.record_late(late_records)
                verdicts = coordinator.close_shard(shard_id)
                open_shards.discard(shard_id)
            else:
                _, shard_id, detail = message
                raise RuntimeError(f"shard {shard_id} failed:\n{detail}")
            if on_detection is not None:
                for verdict in verdicts:
                    on_detection(verdict)
        for worker in workers:
            worker.join()
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join()
    report = coordinator.finish()
    elapsed = time.perf_counter() - start
    return ClusterResult(
        report=report,
        n_shards=n_shards,
        n_records=report.n_records,
        elapsed=elapsed,
        shard_records=shard_records,
    )
