"""Multi-process cluster driver: the pipeline's ``cluster`` mode.

Ties the pieces together behind ``repro cluster`` and
``DetectionPipeline.run(mode="cluster")``: N worker processes each run
a :class:`repro.cluster.shard.ShardMonitor` over their OD-flow slice of
a record source, ship wire-format summaries to the parent over a
per-worker pipe (back-pressure: a worker blocking on a full pipe stops
producing records), and the parent's
:class:`repro.cluster.coordinator.ClusterCoordinator` merges and scores
them with a :class:`repro.stream.engine.StreamingDetectionEngine`.

Workers source their records through the pipeline's
:class:`repro.pipeline.sources.RecordSource` adapters — each worker
rebuilds the source from its picklable :class:`SourceSpec` and consumes
only its shard's slice:

* **trace** sources: every worker memory-maps the *same* columnar
  trace (:mod:`repro.io.trace`) and keeps only its OD-flow slice of
  each chunk — one producer pass at write time, zero regeneration;
* **synthetic** sources: each worker materialises its OD slice from a
  :class:`repro.traffic.generator.TrafficGenerator`;
* **scenario** sources: synthetic background plus the scenario's
  anomaly events — each worker regenerates exactly the events whose
  target OD it owns.

Determinism: every record draw is seeded per (OD flow, bin) —
``SeedSequence([generator_seed, stream_seed, od, bin])`` for background
records (see :func:`repro.stream.chunks.synthetic_record_stream`) and a
per-event equivalent for scenario anomalies — and a trace written by
:func:`repro.io.trace.write_trace` replays those exact records.  So
whichever source a worker uses, it sees bit-identical records for its
ODs no matter how many shards exist, and the cluster's detections are
bin-for-bin identical to a single process consuming the whole source
(exact-histogram mode; sketch mode matches within estimator tolerance).

Supervision (``repro.resilience``): the coordinator loop doubles as a
shard *supervisor*.  A worker that dies, stalls past the per-bin
deadline, or ships a corrupt summary is terminated and relaunched with
bounded retries and exponential backoff — determinism makes the restart
safe, because the replacement recomputes bit-identical summaries and
resumes at :meth:`ClusterCoordinator.resume_bin` (duplicates are
deduped by the reopened-shard path).  A shard out of retries either
aborts the run (``strict``) or is closed with its remaining bins as
gaps and the report flagged ``degraded=True`` (``degrade``).  With
``checkpoint=`` the coordinator spills every closed bin's merged
summary to disk, and ``resume=True`` replays that file instead of
recomputing; ``chaos=`` injects a deterministic
:class:`repro.resilience.FaultPlan` at the workers' ship points for
tests and the CI chaos-smoke job.

Transport notes: each worker writes to its *own* pipe, so killing one
worker can never wedge another (a shared queue's write lock dies with
whoever holds it), and the parent always observes a worker's messages
*in order, before* the pipe's EOF — a worker whose ``close`` is still
in flight when it exits is drained, not misreported as a crash.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Callable

from repro import telemetry as tel
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.shard import ShardMonitor
from repro.cluster.summary import SummaryCorruptError
from repro.pipeline.bank import DEFAULT_DETECTORS
from repro.pipeline.sources import (
    RecordSource,
    SourceSpec,
    SyntheticSource,
    TraceSource,
    build_source,
    shard_ods,
)
from repro.resilience.chaos import FaultPlan, corrupt_payload
from repro.resilience.checkpoint import (
    CheckpointWriter,
    load_checkpoint,
    run_fingerprint,
)
from repro.resilience.policy import ResiliencePolicy, ShardHealth
from repro.stream.engine import StreamConfig, StreamDetection, StreamingDetectionEngine, StreamingReport

# ``shard_ods`` is defined once, next to the sources whose
# ``shard_batches`` implement it; re-exported here for compatibility.
__all__ = ["ClusterResult", "run_cluster", "run_cluster_source", "shard_ods"]


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker needs to rebuild its shard (picklable)."""

    source: SourceSpec
    shard_id: int
    n_shards: int
    chunk_records: int
    exact: bool
    sketch_width: int
    sketch_depth: int
    sketch_seed: int
    #: grouped-reduction kernel threads inside the worker (bit-identical
    #: at any value; 1 = the pinned single-threaded reference).
    threads: int = 1
    #: run a telemetry session inside the worker and ship snapshots in
    #: the heartbeat/close messages (set when the parent's is active).
    telemetry: bool = False
    #: which launch of this shard the worker is (0 = first); echoed in
    #: every message so the supervisor can drop a terminated attempt's
    #: stragglers.
    attempt: int = 0
    #: first bin to actually ship; earlier bins are recomputed (the
    #: source is deterministic) but never sent — the coordinator
    #: already holds or merged them.
    resume_bin: int = 0
    #: deterministic fault plan (chaos harness); None in production.
    chaos: FaultPlan | None = None


def _heartbeat(session) -> dict | None:
    """Small per-bin progress payload piggybacked on summary messages."""
    if session is None:
        return None
    return {
        "records": session.counters.get("reduce.records"),
        "bins": session.counters.get("reduce.bins_closed"),
        "rss_bytes": tel.sample_rss_bytes(),
    }


def _shard_worker(spec: _WorkerSpec, conn) -> None:
    """Worker entry point: produce records, reduce, ship, close."""
    # A fresh session per worker: with the ``fork`` start method the
    # parent's session object is inherited but its poller thread is
    # not, so reusing it would silently stop sampling.
    session = tel.enable() if spec.telemetry else None

    def ship(summary) -> None:
        if summary.bin < spec.resume_bin:
            return  # already merged or held by the coordinator
        payload = summary.to_bytes()
        if spec.chaos is not None:
            fault = spec.chaos.fault_for(spec.shard_id, summary.bin, spec.attempt)
            if fault is not None:
                if fault.kind == "kill":
                    os._exit(137)  # hard death mid-bin, nothing shipped
                elif fault.kind == "stall":
                    time.sleep(fault.secs)
                elif fault.kind == "corrupt":
                    payload = corrupt_payload(payload)
        # stage.ship includes back-pressure: a full pipe means the
        # worker waits here for the coordinator.
        with tel.span("stage.ship"):
            conn.send(("summary", spec.shard_id, spec.attempt, payload,
                       _heartbeat(session)))

    try:
        source = build_source(spec.source)
        topology = source.topology
        monitor = ShardMonitor(
            topology,
            bin_width=spec.source.bin_width,
            start=spec.source.bin_start,
            width=spec.sketch_width,
            depth=spec.sketch_depth,
            sketch_seed=spec.sketch_seed,
            exact=spec.exact,
            threads=spec.threads,
            shard_id=spec.shard_id,
        )
        # Fast-forward on resume: chunks entirely before the resume bin
        # only feed bins whose summaries would be dropped anyway.
        resume_time = (
            spec.source.bin_start + spec.resume_bin * spec.source.bin_width
        )
        n_records = 0
        chunks = tel.timed_iter(
            source.shard_batches(
                spec.shard_id,
                spec.n_shards,
                router=monitor.router,
                chunk_records=spec.chunk_records,
            ),
            "stage.source",
        )
        for chunk, ods in chunks:
            if (
                spec.resume_bin > 0
                and len(chunk)
                and chunk.timestamp.max() < resume_time
            ):
                continue
            n_records += len(chunk)
            for summary in monitor.ingest(chunk, ods=ods):
                ship(summary)
        for summary in monitor.flush():
            ship(summary)
        snapshot = session.snapshot() if session is not None else None
        conn.send(("close", spec.shard_id, spec.attempt, n_records,
                   monitor.late_records, snapshot))
        if spec.chaos is not None and spec.chaos.close_fault(
            spec.shard_id, spec.attempt
        ):
            # Die *after* the close message is on the wire: the exact
            # liveness race where a finished worker looks crashed.
            conn.close()
            os._exit(3)
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        import traceback

        try:
            conn.send(("error", spec.shard_id, spec.attempt,
                       f"{exc!r}\n{traceback.format_exc()}"))
        except OSError:
            pass  # parent already faulted this attempt and closed up
    finally:
        conn.close()


@dataclass
class ClusterResult:
    """Outcome of one cluster run.

    Attributes:
        report: The merged :class:`StreamingReport` (same shape as a
            single-process run; ``to_diagnosis_report()`` applies).
        n_shards: Worker count.
        n_records: Records ingested across all shards.
        elapsed: Wall-clock seconds, worker launch to final merge.
        shard_records: Per-shard record counts (load-balance check).
        degraded: Run completed without one or more shards (their
            missing bins are gaps); mirrored in report meta.
        restarts: Worker restarts the supervisor performed.
        preloaded_bins: Bins replayed from a checkpoint on resume.
    """

    report: StreamingReport
    n_shards: int
    n_records: int
    elapsed: float
    shard_records: dict[int, int] = field(default_factory=dict)
    degraded: bool = False
    restarts: int = 0
    preloaded_bins: int = 0

    @property
    def records_per_sec(self) -> float:
        """Cluster-wide ingest throughput."""
        return self.n_records / self.elapsed if self.elapsed > 0 else float("inf")


def run_cluster_source(
    source: RecordSource | SourceSpec,
    n_shards: int = 2,
    config: StreamConfig | None = None,
    queue_depth: int = 16,
    start_method: str | None = None,
    on_detection: Callable[[StreamDetection], None] | None = None,
    detectors: tuple[str, ...] = DEFAULT_DETECTORS,
    meta: dict | None = None,
    resilience: ResiliencePolicy | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    chaos: FaultPlan | str | None = None,
) -> ClusterResult:
    """Run the sharded pipeline over any :class:`RecordSource`.

    Args:
        source: The record source (or its picklable spec).  Its bin
            grid and topology configure the engine and every shard
            monitor.
        n_shards: Worker process count (>= 1).
        config: Engine knobs; ``exact_histograms``, sketch geometry and
            ``chunk_records`` also shape the shard monitors.
        queue_depth: Legacy transport knob, still validated for
            compatibility.  In-flight summaries are now bounded by each
            worker's OS pipe buffer (workers block on a full pipe), so
            this value no longer changes behaviour.
        start_method: ``multiprocessing`` start method (None: platform
            default, e.g. ``fork`` on Linux).
        on_detection: Callback invoked with each verdict as bins close
            (live output; the verdicts also land in the report).
        detectors: Detector-bank selection (see
            :mod:`repro.pipeline.bank`).
        meta: Extra provenance merged into the report's metadata, on
            top of the source's own and ``mode``/``n_shards``.
        resilience: Supervision policy (retries, backoff, deadlines,
            strict-vs-degrade); None uses :class:`ResiliencePolicy`'s
            defaults (2 retries, strict completion).
        checkpoint: Path to spill every closed bin's merged summary to;
            enables crash recovery via ``resume``.
        resume: Replay an existing ``checkpoint`` file before starting
            workers, restarting the run from the last closed bin.
        chaos: Deterministic fault plan (or its ``--chaos`` spec
            string) injected at the workers' ship points.

    Returns:
        A :class:`ClusterResult` with the merged report and throughput.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    if resume and checkpoint is None:
        raise ValueError("resume requires a checkpoint path")
    if isinstance(source, SourceSpec):
        source = build_source(source)
    n_bins = source.spec.n_bins
    if n_bins < 1:
        raise ValueError("source must cover at least one bin")
    config = config or StreamConfig()
    policy = resilience or ResiliencePolicy()
    if isinstance(chaos, str):
        chaos = FaultPlan.parse(chaos)
    if chaos is not None:
        chaos = chaos.resolve(n_shards, n_bins)
        for entry in chaos.faults:
            if entry.shard >= n_shards:
                raise ValueError(
                    f"chaos fault targets shard {entry.shard}, "
                    f"but the run has only {n_shards} shard(s)"
                )
    engine = StreamingDetectionEngine(
        source.topology,
        config,
        bin_width=source.spec.bin_width,
        start=source.spec.bin_start,
        detectors=detectors,
    )
    engine.meta.update(source.provenance)
    engine.meta.update({"mode": "cluster", "n_shards": int(n_shards)})
    engine.meta.update(meta or {})
    coordinator = ClusterCoordinator(engine, shard_ids=range(n_shards))
    session = tel.active()

    # -- checkpoint: replay, then attach the spill hook (in that order:
    # attaching first would re-append every replayed bin).
    writer: CheckpointWriter | None = None
    preloaded_bins = 0
    if checkpoint is not None:
        fingerprint = run_fingerprint(source.spec, config, detectors)
        state = None
        if resume and os.path.exists(checkpoint):
            state = load_checkpoint(str(checkpoint), fingerprint)
            for bin_index, payload in state.bins:
                coordinator.preload(bin_index, payload)
            preloaded_bins = len(state.bins)
        writer = CheckpointWriter(str(checkpoint), fingerprint, resume_from=state)

        def _spill(bin_index: int, merged) -> None:
            writer.append(
                bin_index, None if merged is None else merged.to_bytes()
            )
            tel.count("cluster.checkpoint_bins")

        coordinator.on_bin_merged = _spill

    context = multiprocessing.get_context(start_method)

    # -- supervisor state
    procs: dict[int, multiprocessing.Process] = {}
    conns: dict[int, mp_connection.Connection] = {}
    conn_shard: dict[mp_connection.Connection, int] = {}
    attempt: dict[int, int] = {s: 0 for s in range(n_shards)}
    health: dict[int, ShardHealth] = {
        s: ShardHealth(shard_id=s) for s in range(n_shards)
    }
    restart_due: dict[int, float] = {}
    last_progress: dict[int, float] = {}
    open_shards = set(range(n_shards))
    shard_records: dict[int, int] = {}
    degraded = False
    total_restarts = 0
    start = time.perf_counter()

    def spawn(shard_id: int) -> None:
        spec = _WorkerSpec(
            source=source.spec,
            shard_id=shard_id,
            n_shards=n_shards,
            chunk_records=config.chunk_records,
            exact=config.exact_histograms,
            sketch_width=config.sketch_width,
            sketch_depth=config.sketch_depth,
            sketch_seed=config.sketch_seed,
            threads=config.threads,
            telemetry=session is not None,
            attempt=attempt[shard_id],
            resume_bin=coordinator.resume_bin(shard_id),
            chaos=chaos,
        )
        reader, writer_end = context.Pipe(duplex=False)
        proc = context.Process(
            target=_shard_worker, args=(spec, writer_end), daemon=True
        )
        proc.start()
        # Close the parent's copy of the write end *now*: the pipe's
        # EOF fires when the last writer closes, and must not wait on
        # this process (or later-forked siblings, which never inherit
        # an already-closed fd).
        writer_end.close()
        procs[shard_id] = proc
        conns[shard_id] = reader
        conn_shard[reader] = shard_id
        last_progress[shard_id] = time.perf_counter()
        health[shard_id].status = "running"

    def drop_conn(shard_id: int) -> None:
        reader = conns.pop(shard_id, None)
        if reader is not None:
            conn_shard.pop(reader, None)
            reader.close()

    def emit(verdicts: list[StreamDetection]) -> None:
        if on_detection is not None:
            for verdict in verdicts:
                on_detection(verdict)

    def exhaust(shard_id: int, reason: str) -> None:
        nonlocal degraded
        tel.count("resilience.retries_exhausted")
        if not policy.degrade:
            raise RuntimeError(
                f"shard {shard_id} failed after {attempt[shard_id] + 1} "
                f"attempt(s): {reason}"
            )
        degraded = True
        record = health[shard_id]
        record.status = "failed"
        record.gap_bins = list(range(coordinator.resume_bin(shard_id), n_bins))
        emit(coordinator.close_shard(shard_id))
        open_shards.discard(shard_id)

    def fault(shard_id: int, reason: str) -> None:
        nonlocal total_restarts
        tel.count("resilience.faults")
        record = health[shard_id]
        record.record_fault(reason)
        drop_conn(shard_id)
        proc = procs.pop(shard_id, None)
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join()
        if attempt[shard_id] >= policy.max_retries:
            exhaust(shard_id, reason)
            return
        attempt[shard_id] += 1
        record.attempts += 1
        record.restarts += 1
        record.status = "restarting"
        total_restarts += 1
        tel.count("resilience.restarts")
        coordinator.reopen_shard(shard_id)
        restart_due[shard_id] = (
            time.perf_counter() + policy.backoff(attempt[shard_id])
        )

    def handle(message) -> None:
        kind, shard_id, msg_attempt = message[0], message[1], message[2]
        if shard_id not in open_shards or msg_attempt != attempt[shard_id]:
            return  # straggler from a terminated attempt
        last_progress[shard_id] = time.perf_counter()
        if kind == "summary":
            payload, heartbeat = message[3], message[4]
            try:
                with tel.span("stage.merge"):
                    verdicts = coordinator.add_serialized(shard_id, payload)
            except SummaryCorruptError:
                tel.count("resilience.corrupt_summaries")
                fault(shard_id, "corrupt summary payload (CRC mismatch)")
                return
            if session is not None:
                tel.gauge_max("cluster.straggler_lag_bins",
                              coordinator.straggler_lag)
                tel.gauge_max("cluster.pending_bins",
                              coordinator.n_pending_bins)
                if heartbeat:
                    tel.gauge_max(f"cluster.shard{shard_id}.rss_bytes",
                                  heartbeat.get("rss_bytes", 0))
            emit(verdicts)
        elif kind == "close":
            n_records, late_records, snapshot = message[3], message[4], message[5]
            shard_records[shard_id] = n_records
            record = health[shard_id]
            record.status = "closed"
            record.n_records = n_records
            coordinator.record_late(late_records)
            with tel.span("stage.merge"):
                verdicts = coordinator.close_shard(shard_id)
            open_shards.discard(shard_id)
            if session is not None:
                session.add_shard(shard_id, snapshot)
            emit(verdicts)
        else:  # "error": the worker raised — retryable like any fault
            fault(shard_id, f"worker exception:\n{message[3]}")

    def check_deadlines(now: float) -> None:
        if policy.bin_deadline_s is None:
            return
        for shard_id in sorted(open_shards):
            if shard_id not in conns:
                continue  # awaiting restart (or already resolved)
            stalled = now - last_progress.get(shard_id, now)
            if stalled > policy.bin_deadline_s:
                fault(
                    shard_id,
                    f"no summary within the bin deadline "
                    f"({policy.bin_deadline_s:.1f}s)",
                )

    try:
        for shard_id in range(n_shards):
            spawn(shard_id)
        while open_shards:
            now = time.perf_counter()
            if (
                policy.run_deadline_s is not None
                and now - start > policy.run_deadline_s
            ):
                if not policy.degrade:
                    raise RuntimeError(
                        f"cluster run exceeded its deadline "
                        f"({policy.run_deadline_s:.1f}s) with shards "
                        f"{sorted(open_shards)} unfinished"
                    )
                degraded = True
                restart_due.clear()
                for shard_id in sorted(open_shards):
                    record = health[shard_id]
                    record.record_fault("run deadline exceeded")
                    record.status = "failed"
                    record.gap_bins = list(
                        range(coordinator.resume_bin(shard_id), n_bins)
                    )
                    drop_conn(shard_id)
                    proc = procs.pop(shard_id, None)
                    if proc is not None and proc.is_alive():
                        proc.terminate()
                        proc.join()
                    emit(coordinator.close_shard(shard_id))
                open_shards.clear()
                break
            for shard_id in [s for s, due in restart_due.items() if now >= due]:
                del restart_due[shard_id]
                spawn(shard_id)
            timeout = 1.0
            if restart_due:
                timeout = min(
                    timeout, max(0.001, min(restart_due.values()) - now)
                )
            if policy.bin_deadline_s is not None:
                timeout = min(timeout, max(0.01, policy.bin_deadline_s / 4))
            if policy.run_deadline_s is not None:
                remaining = policy.run_deadline_s - (now - start)
                timeout = min(timeout, max(0.001, remaining))
            wait_list = list(conn_shard)
            if not wait_list:
                time.sleep(timeout)
                continue
            with tel.span("stage.wait"):
                ready = mp_connection.wait(wait_list, timeout=timeout)
            if not ready:
                check_deadlines(time.perf_counter())
                continue
            for reader in ready:
                shard_id = conn_shard.get(reader)
                if shard_id is None:
                    continue  # faulted earlier in this batch
                try:
                    message = reader.recv()
                except EOFError:
                    # The worker is gone and — pipes deliver in order —
                    # everything it sent has already been handled.  A
                    # shard still open at its EOF really did die early.
                    drop_conn(shard_id)
                    proc = procs.get(shard_id)
                    if proc is not None:
                        proc.join()
                    if shard_id in open_shards and shard_id not in restart_due:
                        code = proc.exitcode if proc is not None else None
                        fault(
                            shard_id,
                            f"worker died with exit code {code} "
                            f"before closing its stream",
                        )
                    continue
                handle(message)
            check_deadlines(time.perf_counter())
        if degraded:
            # If every shard died early the tail bins have no
            # deliveries left to trigger the coordinator's gap path;
            # pad so the report still covers the whole grid.
            emit(coordinator.pad_to(n_bins))
        for proc in procs.values():
            proc.join()
    finally:
        for shard_id in list(conns):
            drop_conn(shard_id)
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join()
        if writer is not None:
            writer.close()
    if degraded or total_restarts:
        engine.meta["degraded"] = degraded
        engine.meta["shard_health"] = {
            str(s): health[s].to_meta() for s in range(n_shards)
        }
    if preloaded_bins:
        engine.meta["resumed_bins"] = preloaded_bins
    report = coordinator.finish()
    elapsed = time.perf_counter() - start
    return ClusterResult(
        report=report,
        n_shards=n_shards,
        n_records=report.n_records,
        elapsed=elapsed,
        shard_records=shard_records,
        degraded=degraded,
        restarts=total_restarts,
        preloaded_bins=preloaded_bins,
    )


def run_cluster(
    network: str = "abilene",
    n_bins: int = 72,
    seed: int = 0,
    n_shards: int = 2,
    config: StreamConfig | None = None,
    max_records_per_od: int = 400,
    queue_depth: int = 16,
    start_method: str | None = None,
    on_detection: Callable[[StreamDetection], None] | None = None,
    trace_path: str | Path | None = None,
    resilience: ResiliencePolicy | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    chaos: FaultPlan | str | None = None,
) -> ClusterResult:
    """Run the sharded pipeline on a synthetic or recorded trace.

    Thin wrapper over :func:`run_cluster_source` preserving the
    original argument surface: it builds a
    :class:`repro.pipeline.sources.TraceSource` when ``trace_path`` is
    given (the engine and every shard monitor adopt the trace's
    recorded grid — re-binning a trace onto a different grid would
    silently change every per-bin feature) and a
    :class:`SyntheticSource` otherwise.

    Args:
        network: ``"abilene"`` or ``"geant"``.
        n_bins: Bins to stream (warm-up included).  With a trace this
            must not exceed the bins the trace covers; pass
            ``trace_info(path).n_bins`` to stream all of it.
        seed: Master seed (generator and record draws; unused when
            replaying a trace).
        n_shards: Worker process count (>= 1).
        config: Engine knobs; ``exact_histograms``, sketch geometry and
            ``chunk_records`` also shape the shard monitors.
        max_records_per_od: Records materialised per (OD flow, bin)
            (inline synthesis only).
        queue_depth: Legacy transport knob (see
            :func:`run_cluster_source`).
        start_method: ``multiprocessing`` start method.
        on_detection: Callback invoked with each verdict as bins close.
        trace_path: Optional recorded trace (:mod:`repro.io.trace`)
            every worker memory-maps.  Its network must match
            ``network``.
        resilience: Supervision policy (see :func:`run_cluster_source`).
        checkpoint: Closed-bin spill path for crash recovery.
        resume: Replay ``checkpoint`` before starting workers.
        chaos: Deterministic fault plan or its spec string.

    Returns:
        A :class:`ClusterResult` with the merged report and throughput.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if trace_path is not None:
        source: RecordSource = TraceSource(
            trace_path, network=network, n_bins=n_bins
        )
    else:
        source = SyntheticSource(
            network=network,
            n_bins=n_bins,
            seed=seed,
            max_records_per_od=max_records_per_od,
        )
    return run_cluster_source(
        source,
        n_shards=n_shards,
        config=config,
        queue_depth=queue_depth,
        start_method=start_method,
        on_detection=on_detection,
        resilience=resilience,
        checkpoint=checkpoint,
        resume=resume,
        chaos=chaos,
    )
