"""Multi-process cluster driver: the pipeline's ``cluster`` mode.

Ties the pieces together behind ``repro cluster`` and
``DetectionPipeline.run(mode="cluster")``: N worker processes each run
a :class:`repro.cluster.shard.ShardMonitor` over their OD-flow slice of
a record source, ship wire-format summaries to the parent over a
per-worker pipe (back-pressure: a worker blocking on a full pipe stops
producing records), and the parent's
:class:`repro.cluster.coordinator.ClusterCoordinator` merges and scores
them with a :class:`repro.stream.engine.StreamingDetectionEngine`.

Workers source their records through the pipeline's
:class:`repro.pipeline.sources.RecordSource` adapters — each worker
rebuilds the source from its picklable :class:`SourceSpec` and consumes
only its shard's slice:

* **trace** sources: every worker memory-maps the *same* columnar
  trace (:mod:`repro.io.trace`) and keeps only its OD-flow slice of
  each chunk — one producer pass at write time, zero regeneration;
* **synthetic** sources: each worker materialises its OD slice from a
  :class:`repro.traffic.generator.TrafficGenerator`;
* **scenario** sources: synthetic background plus the scenario's
  anomaly events — each worker regenerates exactly the events whose
  target OD it owns.

Determinism: every record draw is seeded per (OD flow, bin) —
``SeedSequence([generator_seed, stream_seed, od, bin])`` for background
records (see :func:`repro.stream.chunks.synthetic_record_stream`) and a
per-event equivalent for scenario anomalies — and a trace written by
:func:`repro.io.trace.write_trace` replays those exact records.  So
whichever source a worker uses, it sees bit-identical records for its
ODs no matter how many shards exist, and the cluster's detections are
bin-for-bin identical to a single process consuming the whole source
(exact-histogram mode; sketch mode matches within estimator tolerance).

Supervision (``repro.resilience``): the coordinator loop doubles as a
shard *supervisor*.  A worker that dies, stalls past the per-bin
deadline, or ships a corrupt summary is terminated and relaunched with
bounded retries and exponential backoff — determinism makes the restart
safe, because the replacement recomputes bit-identical summaries and
resumes at :meth:`ClusterCoordinator.resume_bin` (duplicates are
deduped by the reopened-shard path).  A shard out of retries either
aborts the run (``strict``) or is closed with its remaining bins as
gaps and the report flagged ``degraded=True`` (``degrade``).  With
``checkpoint=`` the coordinator spills every closed bin's merged
summary to disk, and ``resume=True`` replays that file instead of
recomputing; ``chaos=`` injects a deterministic
:class:`repro.resilience.FaultPlan` at the workers' ship points for
tests and the CI chaos-smoke job.

Transport (``repro.cluster.transport``): each worker gets its *own*
link — a ``multiprocessing.Pipe`` or a framed TCP socket — so killing
one worker can never wedge another (a shared queue's write lock dies
with whoever holds it), and the parent always observes a worker's
messages *in order, before* the link's EOF — a worker whose ``close``
is still in flight when it exits is drained, not misreported as a
crash.  With ``transport="tcp"`` workers may live on other machines
(``repro worker --connect``); with ``tiers="AxB"`` an aggregator tier
(``repro.cluster.aggregator``) tree-merges each B-worker subtree
before one summary per bin goes upstream, keeping coordinator fan-in
flat as shard counts grow.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import telemetry as tel
from repro.cluster.aggregator import AggregatorSpec, TierMerge, parse_tiers
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.shard import ShardMonitor
from repro.cluster.summary import SummaryCorruptError
from repro.cluster.transport import (
    PipeTransport,
    SummaryTransport,
    TcpTransport,
    parse_hostport,
)
from repro.pipeline.bank import DEFAULT_DETECTORS
from repro.pipeline.sources import (
    RecordSource,
    SourceSpec,
    SyntheticSource,
    TraceSource,
    build_source,
    shard_ods,
)
from repro.resilience.chaos import FaultPlan, corrupt_payload
from repro.resilience.checkpoint import (
    CheckpointWriter,
    load_checkpoint,
    run_fingerprint,
)
from repro.resilience.policy import ResiliencePolicy, ShardHealth
from repro.stream.engine import StreamConfig, StreamDetection, StreamingDetectionEngine, StreamingReport

# ``shard_ods`` is defined once, next to the sources whose
# ``shard_batches`` implement it; re-exported here for compatibility.
__all__ = ["ClusterResult", "run_cluster", "run_cluster_source", "shard_ods"]


def _process_cpus() -> int:
    """CPUs available to this process (3.13's process_cpu_count, with
    an affinity-aware fallback for older interpreters)."""
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:
        return getter() or 1
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker needs to rebuild its shard (picklable)."""

    source: SourceSpec
    shard_id: int
    n_shards: int
    chunk_records: int
    exact: bool
    sketch_width: int
    sketch_depth: int
    sketch_seed: int
    #: grouped-reduction kernel threads inside the worker (bit-identical
    #: at any value; 1 = the pinned single-threaded reference).
    threads: int = 1
    #: exact-mode trace workers read contiguous per-bin row stripes
    #: instead of masking their OD slice.  Off by default: stripes give
    #: every shard the full OD set with near-complete distinct-value
    #: histograms, which roughly doubles summary bytes and merge work —
    #: measured slower end-to-end than the disjoint OD split even
    #: though the reads themselves are ~20x cheaper.
    stripe: bool = False
    #: run a telemetry session inside the worker and ship snapshots in
    #: the heartbeat/close messages (set when the parent's is active).
    telemetry: bool = False
    #: which launch of this shard the worker is (0 = first); echoed in
    #: every message so the supervisor can drop a terminated attempt's
    #: stragglers.
    attempt: int = 0
    #: first bin to actually ship; earlier bins are recomputed (the
    #: source is deterministic) but never sent — the coordinator
    #: already holds or merged them.
    resume_bin: int = 0
    #: deterministic fault plan (chaos harness); None in production.
    chaos: FaultPlan | None = None


def _heartbeat(session) -> dict | None:
    """Small per-bin progress payload piggybacked on summary messages."""
    if session is None:
        return None
    return {
        "records": session.counters.get("reduce.records"),
        "bins": session.counters.get("reduce.bins_closed"),
        "rss_bytes": tel.sample_rss_bytes(),
    }


def _shard_worker(spec: _WorkerSpec, conn) -> None:
    """Worker entry point: produce records, reduce, ship, close."""
    # A fresh session per worker: with the ``fork`` start method the
    # parent's session object is inherited but its poller thread is
    # not, so reusing it would silently stop sampling.
    session = tel.enable() if spec.telemetry else None

    def ship(summary) -> None:
        if summary.bin < spec.resume_bin:
            return  # already merged or held by the coordinator
        payload = summary.to_bytes()
        if spec.chaos is not None:
            fault = spec.chaos.fault_for(spec.shard_id, summary.bin, spec.attempt)
            if fault is not None:
                if fault.kind == "kill":
                    os._exit(137)  # hard death mid-bin, nothing shipped
                elif fault.kind == "stall":
                    time.sleep(fault.secs)
                elif fault.kind == "corrupt":
                    payload = corrupt_payload(payload)
        # stage.ship includes back-pressure: a full pipe means the
        # worker waits here for the coordinator.
        with tel.span("stage.ship"):
            conn.send(("summary", spec.shard_id, spec.attempt, payload,
                       _heartbeat(session)))

    try:
        source = build_source(spec.source)
        topology = source.topology
        monitor = ShardMonitor(
            topology,
            bin_width=spec.source.bin_width,
            start=spec.source.bin_start,
            width=spec.sketch_width,
            depth=spec.sketch_depth,
            sketch_seed=spec.sketch_seed,
            exact=spec.exact,
            threads=spec.threads,
            shard_id=spec.shard_id,
        )
        # Fast-forward on resume: chunks entirely before the resume bin
        # only feed bins whose summaries would be dropped anyway.
        resume_time = (
            spec.source.bin_start + spec.resume_bin * spec.source.bin_width
        )
        n_records = 0
        chunks = tel.timed_iter(
            source.shard_batches(
                spec.shard_id,
                spec.n_shards,
                router=monitor.router,
                chunk_records=spec.chunk_records,
                # Exact merge is canonical under *any* record partition,
                # so ``stripe`` may hand trace workers contiguous row
                # stripes; the spec builder clears it in sketch mode
                # (striping would split an OD's records across
                # conservative-update sketches).
                stripe=spec.stripe,
            ),
            "stage.source",
        )
        for chunk, ods in chunks:
            if (
                spec.resume_bin > 0
                and len(chunk)
                and chunk.timestamp.max() < resume_time
            ):
                continue
            n_records += len(chunk)
            for summary in monitor.ingest(chunk, ods=ods):
                ship(summary)
        for summary in monitor.flush():
            ship(summary)
        snapshot = session.snapshot() if session is not None else None
        conn.send(("close", spec.shard_id, spec.attempt, n_records,
                   monitor.late_records, snapshot))
        if spec.chaos is not None and spec.chaos.close_fault(
            spec.shard_id, spec.attempt
        ):
            # Die *after* the close message is on the wire: the exact
            # liveness race where a finished worker looks crashed.
            conn.close()
            os._exit(3)
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        import traceback

        try:
            conn.send(("error", spec.shard_id, spec.attempt,
                       f"{exc!r}\n{traceback.format_exc()}"))
        except OSError:
            pass  # parent already faulted this attempt and closed up
    finally:
        conn.close()


def _aggregator_worker(spec: AggregatorSpec, conn) -> None:
    """Aggregator entry point: run K children, tree-merge, forward.

    Supervision is all-or-nothing inside the subtree: any child fault
    (death before close, corrupt payload, raised exception) becomes
    this aggregator's error, and the parent supervisor restarts or
    degrades the whole subtree — the deterministic sources make the
    recompute bit-identical, and the coordinator's reopened-shard
    dedup absorbs re-delivered bins.
    """
    session = tel.enable() if spec.telemetry else None
    # Aggregators run non-daemon (they have children), so a supervisor
    # terminate() must still tear the subtree down: turn SIGTERM into
    # SystemExit so the ``finally`` below reaches link.shutdown().
    import signal

    def _terminate(signum, frame):
        raise SystemExit(143)

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    context = multiprocessing.get_context(spec.start_method)
    if spec.child_transport == "tcp":
        link: SummaryTransport = TcpTransport(context=context)
    else:
        link = PipeTransport(entry=_unit_main, context=context)
    tier = TierMerge([child.shard_id for child in spec.children])
    open_children = {child.shard_id for child in spec.children}
    child_records: dict[int, int] = {}
    late_records = 0

    def ship(merged) -> None:
        # The receiver counts each link's bytes (the coordinator counts
        # this payload on arrival), so only span the send here — else
        # merged snapshots would tally the upstream link twice.
        payload = merged.to_bytes()
        with tel.span("stage.ship"):
            conn.send(("summary", spec.shard_id, spec.attempt, payload,
                       _heartbeat(session)))

    try:
        for child in spec.children:
            link.launch(child)
        while open_children:
            for message in link.poll(1.0):
                kind = message[0]
                if kind == "eof":
                    if message[1] in open_children:
                        raise RuntimeError(
                            f"child shard {message[1]} died with exit code "
                            f"{message[2]} before closing its stream"
                        )
                    continue
                if kind == "frame_error":
                    raise SummaryCorruptError(
                        f"child shard {message[1]}: {message[2]}"
                    )
                if kind == "error":
                    raise RuntimeError(
                        f"child shard {message[1]} failed:\n{message[3]}"
                    )
                child_id = message[1]
                if kind == "summary":
                    tel.count("cluster.bytes_shipped", len(message[3]))
                    tel.count(f"cluster.link{child_id}.bytes", len(message[3]))
                    # A corrupt child payload raises SummaryCorruptError
                    # here and surfaces as this aggregator's fault.
                    with tel.span("stage.merge"):
                        merged = tier.add_serialized(child_id, message[3])
                    for summary in merged:
                        ship(summary)
                elif kind == "close":
                    child_records[child_id] = message[3]
                    late_records += message[4]
                    if session is not None:
                        session.add_shard(child_id, message[5])
                    open_children.discard(child_id)
                    for summary in tier.close_child(child_id):
                        ship(summary)
        snapshot = session.snapshot() if session is not None else None
        conn.send(("close", spec.shard_id, spec.attempt, child_records,
                   late_records, snapshot))
    except Exception as exc:
        import traceback

        try:
            conn.send(("error", spec.shard_id, spec.attempt,
                       f"{exc!r}\n{traceback.format_exc()}"))
        except OSError:
            pass  # parent already faulted this attempt and closed up
    finally:
        link.shutdown()
        conn.close()


def _unit_main(spec, conn) -> None:
    """Process entry shared by every transport: dispatch on spec type."""
    if isinstance(spec, AggregatorSpec):
        _aggregator_worker(spec, conn)
    else:
        _shard_worker(spec, conn)


@dataclass
class ClusterResult:
    """Outcome of one cluster run.

    Attributes:
        report: The merged :class:`StreamingReport` (same shape as a
            single-process run; ``to_diagnosis_report()`` applies).
        n_shards: Worker count.
        n_records: Records ingested across all shards.
        elapsed: Wall-clock seconds, worker launch to final merge.
        shard_records: Per-shard record counts (load-balance check).
        degraded: Run completed without one or more shards (their
            missing bins are gaps); mirrored in report meta.
        restarts: Worker restarts the supervisor performed.
        preloaded_bins: Bins replayed from a checkpoint on resume.
    """

    report: StreamingReport
    n_shards: int
    n_records: int
    elapsed: float
    shard_records: dict[int, int] = field(default_factory=dict)
    degraded: bool = False
    restarts: int = 0
    preloaded_bins: int = 0

    @property
    def records_per_sec(self) -> float:
        """Cluster-wide ingest throughput."""
        return self.n_records / self.elapsed if self.elapsed > 0 else float("inf")


def run_cluster_source(
    source: RecordSource | SourceSpec,
    n_shards: int = 2,
    config: StreamConfig | None = None,
    queue_depth: int = 16,
    start_method: str | None = None,
    on_detection: Callable[[StreamDetection], None] | None = None,
    detectors: tuple[str, ...] = DEFAULT_DETECTORS,
    meta: dict | None = None,
    resilience: ResiliencePolicy | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    chaos: FaultPlan | str | None = None,
    transport: str = "pipe",
    listen: str | tuple[str, int] | None = None,
    tiers: str | tuple[int, int] | None = None,
    worker_threads: int | None = None,
    stripe: bool = False,
) -> ClusterResult:
    """Run the sharded pipeline over any :class:`RecordSource`.

    Args:
        source: The record source (or its picklable spec).  Its bin
            grid and topology configure the engine and every shard
            monitor.
        n_shards: Worker process count (>= 1); overridden by ``tiers``.
        config: Engine knobs; ``exact_histograms``, sketch geometry and
            ``chunk_records`` also shape the shard monitors.
        queue_depth: Legacy transport knob, still validated for
            compatibility.  In-flight summaries are now bounded by each
            worker's OS pipe buffer (workers block on a full pipe), so
            this value no longer changes behaviour.
        start_method: ``multiprocessing`` start method (None: platform
            default, e.g. ``fork`` on Linux).
        on_detection: Callback invoked with each verdict as bins close
            (live output; the verdicts also land in the report).
        detectors: Detector-bank selection (see
            :mod:`repro.pipeline.bank`).
        meta: Extra provenance merged into the report's metadata, on
            top of the source's own and ``mode``/``n_shards``.
        resilience: Supervision policy (retries, backoff, deadlines,
            strict-vs-degrade); None uses :class:`ResiliencePolicy`'s
            defaults (2 retries, strict completion).
        checkpoint: Path to spill every closed bin's merged summary to;
            enables crash recovery via ``resume``.
        resume: Replay an existing ``checkpoint`` file before starting
            workers, restarting the run from the last closed bin.
        chaos: Deterministic fault plan (or its ``--chaos`` spec
            string) injected at the workers' ship points.
        transport: ``"pipe"`` (local multiprocessing, the default) or
            ``"tcp"`` (framed sockets; loopback self-spawned workers
            unless ``listen`` is given).
        listen: ``"HOST:PORT"`` to bind and wait for external
            ``repro worker --connect`` processes instead of spawning
            local ones (TCP only).
        tiers: Declarative aggregator layout ``"AxB"`` — A aggregator
            processes each tree-merging B workers (A*B shards total,
            coordinator fan-in A).  Overrides ``n_shards``.
        worker_threads: Grouped-reduction threads inside each worker;
            None auto-sizes to ``cpus // n_shards`` (at least 1)
            unless ``config.threads`` was set explicitly.
        stripe: Exact-mode trace workers take contiguous per-bin row
            stripes instead of masking their OD slice (byte-identical
            detections either way).  Ignored in sketch mode.  Off by
            default — see :class:`_WorkerSpec.stripe` for the measured
            trade-off.

    Returns:
        A :class:`ClusterResult` with the merged report and throughput.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    if resume and checkpoint is None:
        raise ValueError("resume requires a checkpoint path")
    if transport not in ("pipe", "tcp"):
        raise ValueError(f"unknown transport {transport!r} (pipe or tcp)")
    if listen is not None and transport != "tcp":
        raise ValueError("--listen requires --transport tcp")
    tier_shape = parse_tiers(tiers) if tiers is not None else None
    if tier_shape is not None:
        n_shards = tier_shape[0] * tier_shape[1]
    if isinstance(source, SourceSpec):
        source = build_source(source)
    n_bins = source.spec.n_bins
    if n_bins < 1:
        raise ValueError("source must cover at least one bin")
    config = config or StreamConfig()
    policy = resilience or ResiliencePolicy()
    cpus = _process_cpus()
    if worker_threads is None:
        # Auto-size the grouped-reduction kernel: split the CPUs the
        # process may use across workers (an explicitly configured
        # engine thread count wins).
        worker_threads = (
            config.threads if config.threads != 1
            else max(1, cpus // n_shards)
        )
    if worker_threads < 1:
        raise ValueError("worker threads must be >= 1")
    if worker_threads > 1 and worker_threads * n_shards > 2 * cpus:
        raise ValueError(
            f"--threads {worker_threads} across {n_shards} worker shard(s) "
            f"oversubscribes the {cpus} available CPU(s); omit --threads "
            f"to auto-size (cpus // shards) or use at most "
            f"{max(1, 2 * cpus // n_shards)}"
        )
    if isinstance(chaos, str):
        chaos = FaultPlan.parse(chaos)
    if chaos is not None:
        chaos = chaos.resolve(n_shards, n_bins)
        for entry in chaos.faults:
            if entry.shard >= n_shards:
                raise ValueError(
                    f"chaos fault targets shard {entry.shard}, "
                    f"but the run has only {n_shards} shard(s)"
                )
    engine = StreamingDetectionEngine(
        source.topology,
        config,
        bin_width=source.spec.bin_width,
        start=source.spec.bin_start,
        detectors=detectors,
    )
    engine.meta.update(source.provenance)
    engine.meta.update({"mode": "cluster", "n_shards": int(n_shards),
                        "transport": transport})
    if tier_shape is not None:
        engine.meta["tiers"] = f"{tier_shape[0]}x{tier_shape[1]}"
    engine.meta.update(meta or {})
    # The coordinator supervises *units*: plain workers when flat, one
    # aggregator per subtree when tiered (fan-in A instead of A*B).
    n_units = tier_shape[0] if tier_shape is not None else n_shards
    coordinator = ClusterCoordinator(engine, shard_ids=range(n_units))
    session = tel.active()
    tel.gauge("cluster.merge_depth", 2 if tier_shape is not None else 1)

    # -- checkpoint: replay, then attach the spill hook (in that order:
    # attaching first would re-append every replayed bin).
    writer: CheckpointWriter | None = None
    preloaded_bins = 0
    if checkpoint is not None:
        fingerprint = run_fingerprint(source.spec, config, detectors)
        state = None
        if resume and os.path.exists(checkpoint):
            state = load_checkpoint(str(checkpoint), fingerprint)
            for bin_index, payload in state.bins:
                coordinator.preload(bin_index, payload)
            preloaded_bins = len(state.bins)
        writer = CheckpointWriter(str(checkpoint), fingerprint, resume_from=state)

        def _spill(bin_index: int, merged) -> None:
            writer.append(
                bin_index, None if merged is None else merged.to_bytes()
            )
            tel.count("cluster.checkpoint_bins")

        coordinator.on_bin_merged = _spill

    context = multiprocessing.get_context(start_method)
    if transport == "tcp":
        bind = parse_hostport(listen) if isinstance(listen, str) else listen
        link: SummaryTransport = TcpTransport(
            context=context, listen=bind, spawn_local=listen is None
        )
    else:
        link = PipeTransport(entry=_unit_main, context=context)

    # -- supervisor state (keyed by unit: worker shard or aggregator)
    attempt: dict[int, int] = {s: 0 for s in range(n_units)}
    health: dict[int, ShardHealth] = {
        s: ShardHealth(shard_id=s) for s in range(n_units)
    }
    restart_due: dict[int, float] = {}
    last_progress: dict[int, float] = {}
    open_shards = set(range(n_units))
    shard_records: dict[int, int] = {}
    degraded = False
    total_restarts = 0
    start = time.perf_counter()

    def build_spec(unit_id: int):
        unit_attempt = attempt[unit_id]
        resume_from = coordinator.resume_bin(unit_id)

        def worker_spec(shard_id: int) -> _WorkerSpec:
            return _WorkerSpec(
                source=source.spec,
                shard_id=shard_id,
                n_shards=n_shards,
                chunk_records=config.chunk_records,
                exact=config.exact_histograms,
                sketch_width=config.sketch_width,
                sketch_depth=config.sketch_depth,
                sketch_seed=config.sketch_seed,
                threads=worker_threads,
                stripe=stripe and config.exact_histograms,
                telemetry=session is not None,
                attempt=unit_attempt,
                resume_bin=resume_from,
                chaos=chaos,
            )

        if tier_shape is None:
            return worker_spec(unit_id)
        fan_in = tier_shape[1]
        return AggregatorSpec(
            children=tuple(
                worker_spec(unit_id * fan_in + j) for j in range(fan_in)
            ),
            shard_id=unit_id,
            attempt=unit_attempt,
            telemetry=session is not None,
            child_transport=transport,
            start_method=start_method,
        )

    def spawn(unit_id: int) -> None:
        link.launch(build_spec(unit_id))
        last_progress[unit_id] = time.perf_counter()
        health[unit_id].status = "running"

    def emit(verdicts: list[StreamDetection]) -> None:
        if on_detection is not None:
            for verdict in verdicts:
                on_detection(verdict)

    def exhaust(shard_id: int, reason: str) -> None:
        nonlocal degraded
        tel.count("resilience.retries_exhausted")
        if not policy.degrade:
            raise RuntimeError(
                f"shard {shard_id} failed after {attempt[shard_id] + 1} "
                f"attempt(s): {reason}"
            )
        degraded = True
        record = health[shard_id]
        record.status = "failed"
        record.gap_bins = list(range(coordinator.resume_bin(shard_id), n_bins))
        emit(coordinator.close_shard(shard_id))
        open_shards.discard(shard_id)

    def fault(shard_id: int, reason: str) -> None:
        nonlocal total_restarts
        tel.count("resilience.faults")
        record = health[shard_id]
        record.record_fault(reason)
        link.discard(shard_id)
        if attempt[shard_id] >= policy.max_retries:
            exhaust(shard_id, reason)
            return
        attempt[shard_id] += 1
        record.attempts += 1
        record.restarts += 1
        record.status = "restarting"
        total_restarts += 1
        tel.count("resilience.restarts")
        coordinator.reopen_shard(shard_id)
        restart_due[shard_id] = (
            time.perf_counter() + policy.backoff(attempt[shard_id])
        )

    def handle(message) -> None:
        kind, shard_id, msg_attempt = message[0], message[1], message[2]
        if shard_id not in open_shards or msg_attempt != attempt[shard_id]:
            return  # straggler from a terminated attempt
        last_progress[shard_id] = time.perf_counter()
        if kind == "summary":
            payload, heartbeat = message[3], message[4]
            tel.count("cluster.bytes_shipped", len(payload))
            tel.count(f"cluster.link{shard_id}.bytes", len(payload))
            try:
                with tel.span("stage.merge"):
                    verdicts = coordinator.add_serialized(shard_id, payload)
            except SummaryCorruptError:
                tel.count("resilience.corrupt_summaries")
                fault(shard_id, "corrupt summary payload (CRC mismatch)")
                return
            if session is not None:
                tel.gauge_max("cluster.straggler_lag_bins",
                              coordinator.straggler_lag)
                tel.gauge_max("cluster.pending_bins",
                              coordinator.n_pending_bins)
                if heartbeat:
                    tel.gauge_max(f"cluster.shard{shard_id}.rss_bytes",
                                  heartbeat.get("rss_bytes", 0))
            emit(verdicts)
        elif kind == "close":
            n_records, late_records, snapshot = message[3], message[4], message[5]
            record = health[shard_id]
            record.status = "closed"
            if isinstance(n_records, dict):
                # An aggregator reports per-child counts keyed by the
                # children's global shard ids.
                for child_id, child_records in n_records.items():
                    shard_records[int(child_id)] = int(child_records)
                record.n_records = int(sum(n_records.values()))
            else:
                shard_records[shard_id] = n_records
                record.n_records = n_records
            coordinator.record_late(late_records)
            with tel.span("stage.merge"):
                verdicts = coordinator.close_shard(shard_id)
            open_shards.discard(shard_id)
            if session is not None:
                session.add_shard(shard_id, snapshot)
            emit(verdicts)
        else:  # "error": the worker raised — retryable like any fault
            fault(shard_id, f"worker exception:\n{message[3]}")

    def check_deadlines(now: float) -> None:
        if policy.bin_deadline_s is None:
            return
        for shard_id in sorted(open_shards):
            if shard_id in restart_due:
                continue  # awaiting restart (or already resolved)
            # Note this covers remote TCP shards too: a worker that
            # never connects or silently dies misses the deadline the
            # same way a stalled local one does.
            stalled = now - last_progress.get(shard_id, now)
            if stalled > policy.bin_deadline_s:
                fault(
                    shard_id,
                    f"no summary within the bin deadline "
                    f"({policy.bin_deadline_s:.1f}s)",
                )

    try:
        for shard_id in range(n_units):
            spawn(shard_id)
        while open_shards:
            now = time.perf_counter()
            if (
                policy.run_deadline_s is not None
                and now - start > policy.run_deadline_s
            ):
                if not policy.degrade:
                    raise RuntimeError(
                        f"cluster run exceeded its deadline "
                        f"({policy.run_deadline_s:.1f}s) with shards "
                        f"{sorted(open_shards)} unfinished"
                    )
                degraded = True
                restart_due.clear()
                for shard_id in sorted(open_shards):
                    record = health[shard_id]
                    record.record_fault("run deadline exceeded")
                    record.status = "failed"
                    record.gap_bins = list(
                        range(coordinator.resume_bin(shard_id), n_bins)
                    )
                    link.discard(shard_id)
                    emit(coordinator.close_shard(shard_id))
                open_shards.clear()
                break
            for shard_id in [s for s, due in restart_due.items() if now >= due]:
                del restart_due[shard_id]
                spawn(shard_id)
            timeout = 1.0
            if restart_due:
                timeout = min(
                    timeout, max(0.001, min(restart_due.values()) - now)
                )
            if policy.bin_deadline_s is not None:
                timeout = min(timeout, max(0.01, policy.bin_deadline_s / 4))
            if policy.run_deadline_s is not None:
                remaining = policy.run_deadline_s - (now - start)
                timeout = min(timeout, max(0.001, remaining))
            with tel.span("stage.wait"):
                messages = link.poll(timeout)
            for message in messages:
                kind = message[0]
                if kind == "eof":
                    # The link died and — both transports deliver in
                    # order ahead of EOF — everything the worker sent
                    # has already been handled.  A unit still open at
                    # its EOF really did die early.
                    unit_id, code = message[1], message[2]
                    if unit_id in open_shards and unit_id not in restart_due:
                        fault(
                            unit_id,
                            f"worker died with exit code {code} "
                            f"before closing its stream",
                        )
                elif kind == "frame_error":
                    # Garbage on a TCP link: same supervised path as a
                    # corrupt summary payload.
                    unit_id = message[1]
                    if unit_id in open_shards and unit_id not in restart_due:
                        tel.count("resilience.corrupt_summaries")
                        fault(unit_id, f"undecodable frame: {message[2]}")
                else:
                    handle(message)
            check_deadlines(time.perf_counter())
        if degraded:
            # If every shard died early the tail bins have no
            # deliveries left to trigger the coordinator's gap path;
            # pad so the report still covers the whole grid.
            emit(coordinator.pad_to(n_bins))
        link.drain()
    finally:
        link.shutdown()
        if writer is not None:
            writer.close()
    if degraded or total_restarts:
        engine.meta["degraded"] = degraded
        engine.meta["shard_health"] = {
            str(s): health[s].to_meta() for s in range(n_units)
        }
    if preloaded_bins:
        engine.meta["resumed_bins"] = preloaded_bins
    report = coordinator.finish()
    elapsed = time.perf_counter() - start
    return ClusterResult(
        report=report,
        n_shards=n_shards,
        n_records=report.n_records,
        elapsed=elapsed,
        shard_records=shard_records,
        degraded=degraded,
        restarts=total_restarts,
        preloaded_bins=preloaded_bins,
    )


def run_cluster(
    network: str = "abilene",
    n_bins: int = 72,
    seed: int = 0,
    n_shards: int = 2,
    config: StreamConfig | None = None,
    max_records_per_od: int = 400,
    queue_depth: int = 16,
    start_method: str | None = None,
    on_detection: Callable[[StreamDetection], None] | None = None,
    trace_path: str | Path | None = None,
    resilience: ResiliencePolicy | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    chaos: FaultPlan | str | None = None,
    transport: str = "pipe",
    listen: str | tuple[str, int] | None = None,
    tiers: str | tuple[int, int] | None = None,
    worker_threads: int | None = None,
    stripe: bool = False,
) -> ClusterResult:
    """Run the sharded pipeline on a synthetic or recorded trace.

    Thin wrapper over :func:`run_cluster_source` preserving the
    original argument surface: it builds a
    :class:`repro.pipeline.sources.TraceSource` when ``trace_path`` is
    given (the engine and every shard monitor adopt the trace's
    recorded grid — re-binning a trace onto a different grid would
    silently change every per-bin feature) and a
    :class:`SyntheticSource` otherwise.

    Args:
        network: ``"abilene"`` or ``"geant"``.
        n_bins: Bins to stream (warm-up included).  With a trace this
            must not exceed the bins the trace covers; pass
            ``trace_info(path).n_bins`` to stream all of it.
        seed: Master seed (generator and record draws; unused when
            replaying a trace).
        n_shards: Worker process count (>= 1).
        config: Engine knobs; ``exact_histograms``, sketch geometry and
            ``chunk_records`` also shape the shard monitors.
        max_records_per_od: Records materialised per (OD flow, bin)
            (inline synthesis only).
        queue_depth: Legacy transport knob (see
            :func:`run_cluster_source`).
        start_method: ``multiprocessing`` start method.
        on_detection: Callback invoked with each verdict as bins close.
        trace_path: Optional recorded trace (:mod:`repro.io.trace`)
            every worker memory-maps.  Its network must match
            ``network``.
        resilience: Supervision policy (see :func:`run_cluster_source`).
        checkpoint: Closed-bin spill path for crash recovery.
        resume: Replay ``checkpoint`` before starting workers.
        chaos: Deterministic fault plan or its spec string.
        transport: ``"pipe"`` or ``"tcp"`` (see
            :func:`run_cluster_source`).
        listen: ``HOST:PORT`` to await external ``repro worker``
            processes (TCP only).
        tiers: Aggregator layout ``"AxB"``; overrides ``n_shards``.
        worker_threads: Kernel threads per worker (None: auto-size).
        stripe: Row-stripe exact-mode trace workers (see
            :func:`run_cluster_source`).

    Returns:
        A :class:`ClusterResult` with the merged report and throughput.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if trace_path is not None:
        source: RecordSource = TraceSource(
            trace_path, network=network, n_bins=n_bins
        )
    else:
        source = SyntheticSource(
            network=network,
            n_bins=n_bins,
            seed=seed,
            max_records_per_od=max_records_per_od,
        )
    return run_cluster_source(
        source,
        n_shards=n_shards,
        config=config,
        queue_depth=queue_depth,
        start_method=start_method,
        on_detection=on_detection,
        resilience=resilience,
        checkpoint=checkpoint,
        resume=resume,
        chaos=chaos,
        transport=transport,
        listen=listen,
        tiers=tiers,
        worker_threads=worker_threads,
        stripe=stripe,
    )
