"""Multi-process cluster driver: the pipeline's ``cluster`` mode.

Ties the pieces together behind ``repro cluster`` and
``DetectionPipeline.run(mode="cluster")``: N worker processes each run
a :class:`repro.cluster.shard.ShardMonitor` over their OD-flow slice of
a record source, ship wire-format summaries through a bounded queue
(back-pressure: a worker sleeping on a full queue stops producing
records), and the parent's
:class:`repro.cluster.coordinator.ClusterCoordinator` merges and scores
them with a :class:`repro.stream.engine.StreamingDetectionEngine`.

Workers source their records through the pipeline's
:class:`repro.pipeline.sources.RecordSource` adapters — each worker
rebuilds the source from its picklable :class:`SourceSpec` and consumes
only its shard's slice:

* **trace** sources: every worker memory-maps the *same* columnar
  trace (:mod:`repro.io.trace`) and keeps only its OD-flow slice of
  each chunk — one producer pass at write time, zero regeneration;
* **synthetic** sources: each worker materialises its OD slice from a
  :class:`repro.traffic.generator.TrafficGenerator`;
* **scenario** sources: synthetic background plus the scenario's
  anomaly events — each worker regenerates exactly the events whose
  target OD it owns.

Determinism: every record draw is seeded per (OD flow, bin) —
``SeedSequence([generator_seed, stream_seed, od, bin])`` for background
records (see :func:`repro.stream.chunks.synthetic_record_stream`) and a
per-event equivalent for scenario anomalies — and a trace written by
:func:`repro.io.trace.write_trace` replays those exact records.  So
whichever source a worker uses, it sees bit-identical records for its
ODs no matter how many shards exist, and the cluster's detections are
bin-for-bin identical to a single process consuming the whole source
(exact-histogram mode; sketch mode matches within estimator tolerance).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import telemetry as tel
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.shard import ShardMonitor
from repro.pipeline.bank import DEFAULT_DETECTORS
from repro.pipeline.sources import (
    RecordSource,
    SourceSpec,
    SyntheticSource,
    TraceSource,
    build_source,
    shard_ods,
)
from repro.stream.engine import StreamConfig, StreamDetection, StreamingDetectionEngine, StreamingReport

# ``shard_ods`` is defined once, next to the sources whose
# ``shard_batches`` implement it; re-exported here for compatibility.
__all__ = ["ClusterResult", "run_cluster", "run_cluster_source", "shard_ods"]


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker needs to rebuild its shard (picklable)."""

    source: SourceSpec
    shard_id: int
    n_shards: int
    chunk_records: int
    exact: bool
    sketch_width: int
    sketch_depth: int
    sketch_seed: int
    #: run a telemetry session inside the worker and ship snapshots in
    #: the heartbeat/close messages (set when the parent's is active).
    telemetry: bool = False


def _heartbeat(session) -> dict | None:
    """Small per-bin progress payload piggybacked on summary messages."""
    if session is None:
        return None
    return {
        "records": session.counters.get("reduce.records"),
        "bins": session.counters.get("reduce.bins_closed"),
        "rss_bytes": tel.sample_rss_bytes(),
    }


def _shard_worker(spec: _WorkerSpec, queue) -> None:
    """Worker entry point: produce records, reduce, ship, close."""
    # A fresh session per worker: with the ``fork`` start method the
    # parent's session object is inherited but its poller thread is
    # not, so reusing it would silently stop sampling.
    session = tel.enable() if spec.telemetry else None
    try:
        source = build_source(spec.source)
        topology = source.topology
        monitor = ShardMonitor(
            topology,
            bin_width=spec.source.bin_width,
            start=spec.source.bin_start,
            width=spec.sketch_width,
            depth=spec.sketch_depth,
            sketch_seed=spec.sketch_seed,
            exact=spec.exact,
            shard_id=spec.shard_id,
        )
        n_records = 0
        chunks = tel.timed_iter(
            source.shard_batches(
                spec.shard_id,
                spec.n_shards,
                router=monitor.router,
                chunk_records=spec.chunk_records,
            ),
            "stage.source",
        )
        for chunk, ods in chunks:
            n_records += len(chunk)
            for summary in monitor.ingest(chunk, ods=ods):
                # stage.ship includes back-pressure: a full queue means
                # the worker waits here for the coordinator.
                with tel.span("stage.ship"):
                    queue.put(("summary", spec.shard_id, summary.to_bytes(),
                               _heartbeat(session)))
        for summary in monitor.flush():
            with tel.span("stage.ship"):
                queue.put(("summary", spec.shard_id, summary.to_bytes(),
                           _heartbeat(session)))
        snapshot = session.snapshot() if session is not None else None
        queue.put(("close", spec.shard_id, n_records, monitor.late_records,
                   snapshot))
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        import traceback

        queue.put(("error", spec.shard_id, f"{exc!r}\n{traceback.format_exc()}"))


@dataclass
class ClusterResult:
    """Outcome of one cluster run.

    Attributes:
        report: The merged :class:`StreamingReport` (same shape as a
            single-process run; ``to_diagnosis_report()`` applies).
        n_shards: Worker count.
        n_records: Records ingested across all shards.
        elapsed: Wall-clock seconds, worker launch to final merge.
        shard_records: Per-shard record counts (load-balance check).
    """

    report: StreamingReport
    n_shards: int
    n_records: int
    elapsed: float
    shard_records: dict[int, int] = field(default_factory=dict)

    @property
    def records_per_sec(self) -> float:
        """Cluster-wide ingest throughput."""
        return self.n_records / self.elapsed if self.elapsed > 0 else float("inf")


def run_cluster_source(
    source: RecordSource | SourceSpec,
    n_shards: int = 2,
    config: StreamConfig | None = None,
    queue_depth: int = 16,
    start_method: str | None = None,
    on_detection: Callable[[StreamDetection], None] | None = None,
    detectors: tuple[str, ...] = DEFAULT_DETECTORS,
    meta: dict | None = None,
) -> ClusterResult:
    """Run the sharded pipeline over any :class:`RecordSource`.

    Args:
        source: The record source (or its picklable spec).  Its bin
            grid and topology configure the engine and every shard
            monitor.
        n_shards: Worker process count (>= 1).
        config: Engine knobs; ``exact_histograms``, sketch geometry and
            ``chunk_records`` also shape the shard monitors.
        queue_depth: Bound on in-flight summaries per queue — the
            back-pressure knob; workers block rather than outrun the
            coordinator.
        start_method: ``multiprocessing`` start method (None: platform
            default, e.g. ``fork`` on Linux).
        on_detection: Callback invoked with each verdict as bins close
            (live output; the verdicts also land in the report).
        detectors: Detector-bank selection (see
            :mod:`repro.pipeline.bank`).
        meta: Extra provenance merged into the report's metadata, on
            top of the source's own and ``mode``/``n_shards``.

    Returns:
        A :class:`ClusterResult` with the merged report and throughput.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    if isinstance(source, SourceSpec):
        source = build_source(source)
    if source.spec.n_bins < 1:
        raise ValueError("source must cover at least one bin")
    config = config or StreamConfig()
    engine = StreamingDetectionEngine(
        source.topology,
        config,
        bin_width=source.spec.bin_width,
        start=source.spec.bin_start,
        detectors=detectors,
    )
    engine.meta.update(source.provenance)
    engine.meta.update({"mode": "cluster", "n_shards": int(n_shards)})
    engine.meta.update(meta or {})
    coordinator = ClusterCoordinator(engine, shard_ids=range(n_shards))
    session = tel.active()
    specs = [
        _WorkerSpec(
            source=source.spec,
            shard_id=shard_id,
            n_shards=n_shards,
            chunk_records=config.chunk_records,
            exact=config.exact_histograms,
            sketch_width=config.sketch_width,
            sketch_depth=config.sketch_depth,
            sketch_seed=config.sketch_seed,
            telemetry=session is not None,
        )
        for shard_id in range(n_shards)
    ]

    context = multiprocessing.get_context(start_method)
    queue = context.Queue(maxsize=queue_depth)
    workers = [
        context.Process(target=_shard_worker, args=(spec, queue), daemon=True)
        for spec in specs
    ]
    start = time.perf_counter()
    shard_records: dict[int, int] = {}
    try:
        for worker in workers:
            worker.start()
        open_shards = set(range(n_shards))
        while open_shards:
            try:
                with tel.span("stage.wait"):
                    message = queue.get(timeout=1.0)
            except queue_module.Empty:
                # A worker killed hard (OOM, segfault) never sends its
                # close/error message; without this liveness check the
                # coordinator would block on the queue forever.
                for shard_id in sorted(open_shards):
                    worker = workers[shard_id]
                    if not worker.is_alive() and worker.exitcode != 0:
                        raise RuntimeError(
                            f"shard {shard_id} worker died with exit code "
                            f"{worker.exitcode} before closing its stream"
                        )
                continue
            kind = message[0]
            if kind == "summary":
                _, shard_id, payload, heartbeat = message
                with tel.span("stage.merge"):
                    verdicts = coordinator.add_serialized(shard_id, payload)
                if session is not None:
                    tel.gauge_max("cluster.straggler_lag_bins",
                                  coordinator.straggler_lag)
                    tel.gauge_max("cluster.pending_bins",
                                  coordinator.n_pending_bins)
                    if heartbeat:
                        tel.gauge_max(f"cluster.shard{shard_id}.rss_bytes",
                                      heartbeat.get("rss_bytes", 0))
            elif kind == "close":
                _, shard_id, n_records, late_records, snapshot = message
                shard_records[shard_id] = n_records
                coordinator.record_late(late_records)
                with tel.span("stage.merge"):
                    verdicts = coordinator.close_shard(shard_id)
                open_shards.discard(shard_id)
                if session is not None:
                    session.add_shard(shard_id, snapshot)
            else:
                _, shard_id, detail = message
                raise RuntimeError(f"shard {shard_id} failed:\n{detail}")
            if on_detection is not None:
                for verdict in verdicts:
                    on_detection(verdict)
        for worker in workers:
            worker.join()
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join()
    report = coordinator.finish()
    elapsed = time.perf_counter() - start
    return ClusterResult(
        report=report,
        n_shards=n_shards,
        n_records=report.n_records,
        elapsed=elapsed,
        shard_records=shard_records,
    )


def run_cluster(
    network: str = "abilene",
    n_bins: int = 72,
    seed: int = 0,
    n_shards: int = 2,
    config: StreamConfig | None = None,
    max_records_per_od: int = 400,
    queue_depth: int = 16,
    start_method: str | None = None,
    on_detection: Callable[[StreamDetection], None] | None = None,
    trace_path: str | Path | None = None,
) -> ClusterResult:
    """Run the sharded pipeline on a synthetic or recorded trace.

    Thin wrapper over :func:`run_cluster_source` preserving the
    original argument surface: it builds a
    :class:`repro.pipeline.sources.TraceSource` when ``trace_path`` is
    given (the engine and every shard monitor adopt the trace's
    recorded grid — re-binning a trace onto a different grid would
    silently change every per-bin feature) and a
    :class:`SyntheticSource` otherwise.

    Args:
        network: ``"abilene"`` or ``"geant"``.
        n_bins: Bins to stream (warm-up included).  With a trace this
            must not exceed the bins the trace covers; pass
            ``trace_info(path).n_bins`` to stream all of it.
        seed: Master seed (generator and record draws; unused when
            replaying a trace).
        n_shards: Worker process count (>= 1).
        config: Engine knobs; ``exact_histograms``, sketch geometry and
            ``chunk_records`` also shape the shard monitors.
        max_records_per_od: Records materialised per (OD flow, bin)
            (inline synthesis only).
        queue_depth: Bound on in-flight summaries per queue.
        start_method: ``multiprocessing`` start method.
        on_detection: Callback invoked with each verdict as bins close.
        trace_path: Optional recorded trace (:mod:`repro.io.trace`)
            every worker memory-maps.  Its network must match
            ``network``.

    Returns:
        A :class:`ClusterResult` with the merged report and throughput.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if trace_path is not None:
        source: RecordSource = TraceSource(
            trace_path, network=network, n_bins=n_bins
        )
    else:
        source = SyntheticSource(
            network=network,
            n_bins=n_bins,
            seed=seed,
            max_records_per_od=max_records_per_od,
        )
    return run_cluster_source(
        source,
        n_shards=n_shards,
        config=config,
        queue_depth=queue_depth,
        start_method=start_method,
        on_detection=on_detection,
    )
