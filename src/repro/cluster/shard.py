"""Shard-side ingestion: records in, mergeable bin summaries out.

A :class:`ShardMonitor` is the process-local half of the distributed
deployment sketched in the paper's Section 8: it consumes the shard's
slice of the flow-record stream (any partition works — by OD flow, by
ingress PoP, by collector) and emits one :class:`ShardBinSummary` per
closed time bin instead of a scored entropy matrix.  Everything about
ingestion — chunked batches, bin rollover, gap bins, late-record
discard, OD attribution, collector anonymisation — is inherited from
:class:`repro.stream.window.StreamFeatureStage`; only the bin-close
hand-off differs, deferring entropy to the coordinator's merge point so
the shard ships raw mergeable counts.  Since the accumulator's grouped
store already holds each feature's counts as canonical sorted runs
(:mod:`repro.kernels`), that export is a slice of the kernel output,
not a per-OD canonicalisation pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.summary import ShardBinSummary
from repro.stream.window import BinAccumulator, StreamFeatureStage

__all__ = ["ShardMonitor"]


@dataclass
class ShardMonitor(StreamFeatureStage):
    """A per-shard feature stage emitting mergeable summaries.

    Same constructor knobs as :class:`StreamFeatureStage` (topology,
    bin grid, sketch geometry, ``exact``), plus:

    Attributes:
        shard_id: This shard's identity, echoed to the coordinator.

    ``ingest`` / ``ingest_histograms`` / ``flush`` return
    :class:`ShardBinSummary` objects (one per closed bin, gap bins
    included) ready to serialize with ``to_bytes()``.
    """

    shard_id: int = 0

    def _finalize(self, accumulator: BinAccumulator, bin_index: int) -> ShardBinSummary:
        return ShardBinSummary.from_accumulator(accumulator, bin_index)
