"""Central merge point: align shard summaries by bin, merge, diagnose.

The :class:`ClusterCoordinator` is the "central point" of the paper's
network-wide diagnosis applied to the sharded deployment: shards push
per-bin :class:`ShardBinSummary` objects (in bin order, as their local
streams advance), the coordinator holds each bin open until every
still-open shard has advanced past it, then folds the shards together
with the summary algebra and drives
:meth:`repro.stream.engine.StreamingDetectionEngine.observe_summary` —
so the cluster's output is the same stream of
:class:`repro.stream.engine.StreamDetection` verdicts (and ultimately
the same ``DiagnosisReport``) a single-process engine produces.

Alignment rules:

* each shard's summaries must arrive in increasing bin order (shard
  monitors emit contiguous bins, gaps included);
* bin ``b`` is merged once every open shard has delivered a summary
  with bin >= ``b`` or closed — shards whose streams start late simply
  contribute nothing to earlier bins;
* bins no shard observed (a global gap) are scored as empty summaries,
  matching what a single feature stage would emit for a quiet bin.

Supervision hooks (used by the cluster runner's shard supervisor):

* :meth:`ClusterCoordinator.reopen_shard` marks a shard as restarted —
  its replacement worker may legitimately re-deliver bins the old
  attempt already shipped, so duplicates from reopened shards are
  silently dropped instead of violating the bin-order contract (the
  merge is canonical, so the dropped duplicate is byte-identical to
  the retained copy in exact mode);
* :meth:`ClusterCoordinator.resume_bin` is the first bin a restarted
  worker must recompute — everything earlier is merged or already held
  pending from the previous attempt;
* :meth:`ClusterCoordinator.preload` replays checkpointed merged bins
  through the engine on ``--resume``, advancing the merge frontier
  without any worker involvement;
* :attr:`ClusterCoordinator.on_bin_merged` fires with every closed
  bin's merged summary (``None`` for global gaps) — the checkpoint
  writer's append point.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro import telemetry as tel
from repro.cluster.summary import ShardBinSummary, merge_summaries
from repro.flows.features import N_FEATURES
from repro.stream.engine import StreamDetection, StreamingDetectionEngine, StreamingReport
from repro.stream.window import BinSummary

__all__ = ["ClusterCoordinator"]


class ClusterCoordinator:
    """Merges shard summaries bin-by-bin into a streaming diagnosis.

    Usage::

        engine = StreamingDetectionEngine(topology, config)
        coordinator = ClusterCoordinator(engine, shard_ids=range(4))
        for shard_id, payload in transport:          # any arrival order
            for verdict in coordinator.add_serialized(shard_id, payload):
                ...
        report = coordinator.finish()                # all shards closed
    """

    def __init__(
        self, engine: StreamingDetectionEngine, shard_ids: Sequence[int]
    ) -> None:
        shard_ids = [int(s) for s in shard_ids]
        if not shard_ids:
            raise ValueError("coordinator needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("shard ids must be unique")
        self.engine = engine
        self.shard_ids = shard_ids
        self._open = set(shard_ids)
        self._highwater: dict[int, int] = {}
        self._pending: dict[int, dict[int, ShardBinSummary]] = {}
        self._next_bin: int | None = None
        self._n_records = 0
        self._late_records = 0
        #: bin -> perf_counter of its first summary's arrival; the gap
        #: to its merge is the bin's wait-for-stragglers latency.
        self._first_arrival: dict[int, float] = {}
        #: shards restarted at least once: duplicate deliveries from
        #: these are dropped (canonical merge makes that lossless)
        #: rather than treated as protocol violations.
        self._reopened: set[int] = set()
        #: invoked with (bin, merged summary | None-for-gap) as each
        #: bin closes — the checkpoint writer's append point.  Attach
        #: AFTER preload(), or replayed bins would be re-appended.
        self.on_bin_merged: Callable[[int, ShardBinSummary | None], None] | None = None

    @property
    def n_pending_bins(self) -> int:
        """Bins buffered waiting for lagging shards (back-pressure gauge)."""
        return len(self._pending)

    @property
    def straggler_lag(self) -> int:
        """Bin spread between the fastest and slowest open shard."""
        marks = [self._highwater[s] for s in self._open if s in self._highwater]
        if len(marks) < 2:
            return 0
        return max(marks) - min(marks)

    def add_summary(
        self, shard_id: int, summary: ShardBinSummary
    ) -> list[StreamDetection]:
        """Accept one shard's summary; returns verdicts of bins it freed."""
        if shard_id not in self._open:
            raise ValueError(f"shard {shard_id} is unknown or already closed")
        expected_p = self.engine.topology.n_od_flows
        if summary.n_od_flows != expected_p:
            raise ValueError(
                f"shard {shard_id} summary covers {summary.n_od_flows} OD flows, "
                f"engine topology has {expected_p} (topology mismatch?)"
            )
        last = self._highwater.get(shard_id)
        if last is not None and summary.bin <= last:
            if shard_id in self._reopened:
                # A restarted worker recomputing a bin its predecessor
                # already shipped: the copies are byte-identical (exact
                # mode) or estimator-equivalent (sketch), so keep the
                # first and drop this one.
                return []
            raise ValueError(
                f"shard {shard_id} summaries must arrive in bin order "
                f"(got bin {summary.bin} after {last})"
            )
        if self._next_bin is not None and summary.bin < self._next_bin:
            if shard_id in self._reopened:
                return []
            raise ValueError(
                f"shard {shard_id} delivered bin {summary.bin}, already merged "
                f"(coordinator is at bin {self._next_bin})"
            )
        self._highwater[shard_id] = summary.bin
        if summary.bin not in self._pending:
            self._first_arrival[summary.bin] = time.perf_counter()
        self._pending.setdefault(summary.bin, {})[shard_id] = summary
        return self._drain()

    def add_serialized(self, shard_id: int, payload: bytes) -> list[StreamDetection]:
        """Accept one wire-format summary (see :meth:`ShardBinSummary.to_bytes`)."""
        return self.add_summary(shard_id, ShardBinSummary.from_bytes(payload))

    def record_late(self, n_records: int) -> None:
        """Account records a shard discarded as late (report bookkeeping)."""
        self._late_records += int(n_records)

    def close_shard(self, shard_id: int) -> list[StreamDetection]:
        """Mark a shard's stream ended; may release bins it was holding."""
        if shard_id not in self._open:
            raise ValueError(f"shard {shard_id} is unknown or already closed")
        self._open.discard(shard_id)
        return self._drain()

    # -- supervision hooks -------------------------------------------------

    def reopen_shard(self, shard_id: int) -> None:
        """Mark a shard as restarted: duplicate deliveries become drops.

        The shard must still be open (a closed shard finished cleanly
        and has nothing to restart).  Its high-water mark is kept — the
        replacement worker resumes *past* it (see :meth:`resume_bin`),
        and anything at or below it that arrives anyway (stale queue
        messages, recomputed bins) is deduped.
        """
        if shard_id not in self._open:
            raise ValueError(f"shard {shard_id} is unknown or already closed")
        self._reopened.add(shard_id)

    def resume_bin(self, shard_id: int) -> int:
        """First bin a restarted worker for this shard must recompute.

        Everything below the shard's high-water mark was delivered by
        the previous attempt (and is merged or held pending); anything
        below the merge frontier is already scored.
        """
        resume = self._highwater.get(shard_id, -1) + 1
        if self._next_bin is not None:
            resume = max(resume, self._next_bin)
        return resume

    def preload(self, bin_index: int, payload: bytes | None) -> None:
        """Replay one checkpointed merged bin (``None`` = global gap).

        Drives the engine exactly as :meth:`_drain` would have — the
        merge is deterministic, so the replayed diagnosis is identical
        to the original run's.  Must be called with contiguous bins
        starting at the frontier, before any shard delivers.
        """
        expected = 0 if self._next_bin is None else self._next_bin
        if bin_index != expected:
            raise ValueError(
                f"preload must replay contiguous bins (expected bin "
                f"{expected}, got {bin_index})"
            )
        if self._pending or self._highwater:
            raise ValueError("preload must run before any shard delivers")
        if payload is None:
            p = self.engine.topology.n_od_flows
            merged_bin = BinSummary(
                bin=bin_index,
                entropy=np.zeros((p, N_FEATURES)),
                packets=np.zeros(p),
                bytes=np.zeros(p),
                n_records=0,
            )
        else:
            merged = ShardBinSummary.from_bytes(payload)
            if merged.bin != bin_index:
                raise ValueError(
                    f"checkpoint payload for bin {bin_index} describes "
                    f"bin {merged.bin}"
                )
            self._n_records += merged.n_records
            merged_bin = merged.to_bin_summary()
        self.engine.observe_summary(merged_bin)
        self._next_bin = bin_index + 1

    def _drain(self) -> list[StreamDetection]:
        verdicts: list[StreamDetection] = []
        while self._pending:
            target = self._next_bin
            if target is None:
                target = min(self._pending)
            if any(self._highwater.get(s, target - 1) < target for s in self._open):
                break
            group = self._pending.pop(target, None)
            merged: ShardBinSummary | None = None
            if group is None:
                # A global gap: no shard observed this bin.  Score it as
                # the empty summary a quiet single-process stage emits.
                p = self.engine.topology.n_od_flows
                merged_bin = BinSummary(
                    bin=target,
                    entropy=np.zeros((p, N_FEATURES)),
                    packets=np.zeros(p),
                    bytes=np.zeros(p),
                    n_records=0,
                )
            else:
                merged = merge_summaries(group.values())
                self._n_records += merged.n_records
                merged_bin = merged.to_bin_summary()
            if self.on_bin_merged is not None:
                self.on_bin_merged(target, merged)
            arrived = self._first_arrival.pop(target, None)
            if arrived is not None:
                # Merge latency: how long the bin sat buffered between
                # its first shard's summary and being merged/scored.
                tel.record("cluster.bin_wait", time.perf_counter() - arrived)
            verdict = self.engine.observe_summary(merged_bin)
            if verdict is not None:
                verdicts.append(verdict)
            self._next_bin = target + 1
        return verdicts

    def pad_to(self, n_bins: int) -> list[StreamDetection]:
        """Synthesize empty bins up to ``n_bins`` (degraded completion).

        When every shard has failed before the end of the run, the
        remaining bins have no deliveries to trigger the gap path in
        :meth:`_drain`; a degrading supervisor calls this so the report
        still covers the full grid, with the missing tail scored as
        gaps.  All shards must be closed first.
        """
        if self._open:
            raise RuntimeError("pad_to requires all shards closed")
        verdicts: list[StreamDetection] = []
        p = self.engine.topology.n_od_flows
        target = 0 if self._next_bin is None else self._next_bin
        while target < n_bins:
            merged_bin = BinSummary(
                bin=target,
                entropy=np.zeros((p, N_FEATURES)),
                packets=np.zeros(p),
                bytes=np.zeros(p),
                n_records=0,
            )
            if self.on_bin_merged is not None:
                self.on_bin_merged(target, None)
            verdict = self.engine.observe_summary(merged_bin)
            if verdict is not None:
                verdicts.append(verdict)
            target += 1
            self._next_bin = target
        return verdicts

    def finish(self) -> StreamingReport:
        """Drain everything and return the cluster-wide report.

        All shards must be closed first (a shard still open could yet
        contribute to a buffered bin).
        """
        if self._open:
            raise RuntimeError(
                f"cannot finish with open shards: {sorted(self._open)}"
            )
        assert not self._pending  # close_shard drains once all are closed
        report = self.engine.finish()
        report.n_records = self._n_records
        report.late_records += self._late_records
        return report
