"""Central merge point: align shard summaries by bin, merge, diagnose.

The :class:`ClusterCoordinator` is the "central point" of the paper's
network-wide diagnosis applied to the sharded deployment: shards push
per-bin :class:`ShardBinSummary` objects (in bin order, as their local
streams advance), the coordinator holds each bin open until every
still-open shard has advanced past it, then folds the shards together
with the summary algebra and drives
:meth:`repro.stream.engine.StreamingDetectionEngine.observe_summary` —
so the cluster's output is the same stream of
:class:`repro.stream.engine.StreamDetection` verdicts (and ultimately
the same ``DiagnosisReport``) a single-process engine produces.

Alignment rules:

* each shard's summaries must arrive in increasing bin order (shard
  monitors emit contiguous bins, gaps included);
* bin ``b`` is merged once every open shard has delivered a summary
  with bin >= ``b`` or closed — shards whose streams start late simply
  contribute nothing to earlier bins;
* bins no shard observed (a global gap) are scored as empty summaries,
  matching what a single feature stage would emit for a quiet bin.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro import telemetry as tel
from repro.cluster.summary import ShardBinSummary, merge_summaries
from repro.flows.features import N_FEATURES
from repro.stream.engine import StreamDetection, StreamingDetectionEngine, StreamingReport
from repro.stream.window import BinSummary

__all__ = ["ClusterCoordinator"]


class ClusterCoordinator:
    """Merges shard summaries bin-by-bin into a streaming diagnosis.

    Usage::

        engine = StreamingDetectionEngine(topology, config)
        coordinator = ClusterCoordinator(engine, shard_ids=range(4))
        for shard_id, payload in transport:          # any arrival order
            for verdict in coordinator.add_serialized(shard_id, payload):
                ...
        report = coordinator.finish()                # all shards closed
    """

    def __init__(
        self, engine: StreamingDetectionEngine, shard_ids: Sequence[int]
    ) -> None:
        shard_ids = [int(s) for s in shard_ids]
        if not shard_ids:
            raise ValueError("coordinator needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError("shard ids must be unique")
        self.engine = engine
        self.shard_ids = shard_ids
        self._open = set(shard_ids)
        self._highwater: dict[int, int] = {}
        self._pending: dict[int, dict[int, ShardBinSummary]] = {}
        self._next_bin: int | None = None
        self._n_records = 0
        self._late_records = 0
        #: bin -> perf_counter of its first summary's arrival; the gap
        #: to its merge is the bin's wait-for-stragglers latency.
        self._first_arrival: dict[int, float] = {}

    @property
    def n_pending_bins(self) -> int:
        """Bins buffered waiting for lagging shards (back-pressure gauge)."""
        return len(self._pending)

    @property
    def straggler_lag(self) -> int:
        """Bin spread between the fastest and slowest open shard."""
        marks = [self._highwater[s] for s in self._open if s in self._highwater]
        if len(marks) < 2:
            return 0
        return max(marks) - min(marks)

    def add_summary(
        self, shard_id: int, summary: ShardBinSummary
    ) -> list[StreamDetection]:
        """Accept one shard's summary; returns verdicts of bins it freed."""
        if shard_id not in self._open:
            raise ValueError(f"shard {shard_id} is unknown or already closed")
        expected_p = self.engine.topology.n_od_flows
        if summary.n_od_flows != expected_p:
            raise ValueError(
                f"shard {shard_id} summary covers {summary.n_od_flows} OD flows, "
                f"engine topology has {expected_p} (topology mismatch?)"
            )
        last = self._highwater.get(shard_id)
        if last is not None and summary.bin <= last:
            raise ValueError(
                f"shard {shard_id} summaries must arrive in bin order "
                f"(got bin {summary.bin} after {last})"
            )
        if self._next_bin is not None and summary.bin < self._next_bin:
            raise ValueError(
                f"shard {shard_id} delivered bin {summary.bin}, already merged "
                f"(coordinator is at bin {self._next_bin})"
            )
        self._highwater[shard_id] = summary.bin
        if summary.bin not in self._pending:
            self._first_arrival[summary.bin] = time.perf_counter()
        self._pending.setdefault(summary.bin, {})[shard_id] = summary
        return self._drain()

    def add_serialized(self, shard_id: int, payload: bytes) -> list[StreamDetection]:
        """Accept one wire-format summary (see :meth:`ShardBinSummary.to_bytes`)."""
        return self.add_summary(shard_id, ShardBinSummary.from_bytes(payload))

    def record_late(self, n_records: int) -> None:
        """Account records a shard discarded as late (report bookkeeping)."""
        self._late_records += int(n_records)

    def close_shard(self, shard_id: int) -> list[StreamDetection]:
        """Mark a shard's stream ended; may release bins it was holding."""
        if shard_id not in self._open:
            raise ValueError(f"shard {shard_id} is unknown or already closed")
        self._open.discard(shard_id)
        return self._drain()

    def _drain(self) -> list[StreamDetection]:
        verdicts: list[StreamDetection] = []
        while self._pending:
            target = self._next_bin
            if target is None:
                target = min(self._pending)
            if any(self._highwater.get(s, target - 1) < target for s in self._open):
                break
            group = self._pending.pop(target, None)
            if group is None:
                # A global gap: no shard observed this bin.  Score it as
                # the empty summary a quiet single-process stage emits.
                p = self.engine.topology.n_od_flows
                merged_bin = BinSummary(
                    bin=target,
                    entropy=np.zeros((p, N_FEATURES)),
                    packets=np.zeros(p),
                    bytes=np.zeros(p),
                    n_records=0,
                )
            else:
                merged = merge_summaries(group.values())
                self._n_records += merged.n_records
                merged_bin = merged.to_bin_summary()
            arrived = self._first_arrival.pop(target, None)
            if arrived is not None:
                # Merge latency: how long the bin sat buffered between
                # its first shard's summary and being merged/scored.
                tel.record("cluster.bin_wait", time.perf_counter() - arrived)
            verdict = self.engine.observe_summary(merged_bin)
            if verdict is not None:
                verdicts.append(verdict)
            self._next_bin = target + 1
        return verdicts

    def finish(self) -> StreamingReport:
        """Drain everything and return the cluster-wide report.

        All shards must be closed first (a shard still open could yet
        contribute to a buffered bin).
        """
        if self._open:
            raise RuntimeError(
                f"cannot finish with open shards: {sorted(self._open)}"
            )
        assert not self._pending  # close_shard drains once all are closed
        report = self.engine.finish()
        report.n_records = self._n_records
        report.late_records += self._late_records
        return report
