"""Sharded multi-process detection (the paper's Section 8 systems problem).

Record ingestion shards across processes; each shard reduces its slice
of every time bin into a serializable, mergeable summary; a central
coordinator aligns the shards by bin, folds the summaries with an
associative/commutative merge, and drives the streaming detection
engine — so a cluster of monitors produces the same network-wide
diagnosis as one process reading the whole trace.

* :mod:`repro.cluster.summary` — :class:`ShardBinSummary`, the
  mergeable per-bin unit of exchange and its wire format.
* :mod:`repro.cluster.shard` — :class:`ShardMonitor`, the shard-side
  ingestion stage.
* :mod:`repro.cluster.coordinator` — :class:`ClusterCoordinator`, the
  bin-aligned central merge point.
* :mod:`repro.cluster.transport` — :class:`SummaryTransport`
  implementations: per-worker pipes and framed TCP sockets
  (``repro worker --connect`` for off-box workers).
* :mod:`repro.cluster.aggregator` — :class:`TierMerge`, the
  order-invariant tree-merge behind declarative aggregator tiers
  (``--tiers AxB``), keeping coordinator fan-in flat as shards grow.
* :mod:`repro.cluster.runner` — :func:`run_cluster`, the
  ``multiprocessing`` driver behind the ``repro cluster`` command, and
  its shard supervisor (restarts, deadlines, checkpoint/resume,
  degraded completion — see :mod:`repro.resilience`).
"""

from repro.cluster.aggregator import AggregatorSpec, TierMerge, parse_tiers
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.runner import (
    ClusterResult,
    run_cluster,
    run_cluster_source,
    shard_ods,
)
from repro.cluster.shard import ShardMonitor
from repro.cluster.summary import ShardBinSummary, SummaryCorruptError, merge_summaries
from repro.cluster.transport import (
    FrameError,
    PipeTransport,
    SummaryTransport,
    TcpTransport,
    parse_hostport,
)

__all__ = [
    "AggregatorSpec",
    "ClusterCoordinator",
    "ClusterResult",
    "FrameError",
    "PipeTransport",
    "ShardBinSummary",
    "ShardMonitor",
    "SummaryCorruptError",
    "SummaryTransport",
    "TcpTransport",
    "TierMerge",
    "merge_summaries",
    "parse_hostport",
    "parse_tiers",
    "run_cluster",
    "run_cluster_source",
    "shard_ods",
]
