"""Hierarchical tree-merge: aggregator tiers between workers and the
coordinator.

A flat cluster is a star: N workers ship every bin's summary straight
to one coordinator, whose merge work — and inbound byte rate — grows
O(N).  That hub is exactly the saturation point scale-free-network
analyses warn about.  Because :class:`ShardBinSummary`'s merge is
associative and commutative (and byte-canonical in exact mode), the
reduction can instead run as a tree: an *aggregator* merges its K
children's summaries per bin and forwards **one** summary upstream, so
the coordinator sees fan-in K regardless of total worker count and the
reduction depth is O(log N).

Tier layout is declarative: ``--tiers 4x4`` runs 4 aggregators with 4
workers each (16 shards total); the coordinator supervises the 4
aggregators exactly as it would supervise 4 plain workers.  Faults
inside a subtree (a dead child, a corrupt child payload) surface as
that aggregator's fault, and the supervisor restarts the whole subtree
— determinism makes the recompute bit-identical, and the coordinator's
reopened-shard dedup drops any re-delivered bins.

:class:`TierMerge` is the pure, transport-free core: feed it child
summaries in any interleaving (each child's own bins arrive in order,
as workers emit them) and it yields merged summaries in bin order,
byte-identical regardless of arrival order — the property the
hypothesis suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.summary import ShardBinSummary, merge_summaries

__all__ = ["AggregatorSpec", "TierMerge", "parse_tiers"]


def parse_tiers(spec) -> tuple[int, int]:
    """Parse a declarative tier layout.

    ``"AxB"`` means A aggregators with B workers each (A*B shards
    total).  A 2-tuple passes through unchanged.

    Raises:
        ValueError: Malformed spec or non-positive dimensions.
    """
    if isinstance(spec, tuple):
        shape = spec
    else:
        parts = str(spec).lower().replace("×", "x").split("x")
        if len(parts) != 2:
            raise ValueError(
                f"tier layout must look like 'AxB' (A aggregators x B "
                f"workers each), got {spec!r}"
            )
        try:
            shape = (int(parts[0]), int(parts[1]))
        except ValueError:
            raise ValueError(f"tier layout must be two integers, got {spec!r}")
    n_aggregators, fan_in = shape
    if n_aggregators < 1 or fan_in < 1:
        raise ValueError(
            f"tier dimensions must be >= 1, got {n_aggregators}x{fan_in}"
        )
    return int(n_aggregators), int(fan_in)


@dataclass(frozen=True)
class AggregatorSpec:
    """Everything an aggregator process needs (picklable).

    ``children`` are ordinary worker specs with *global* shard ids —
    the aggregator adds no sharding semantics of its own, it only
    merges.  ``shard_id`` is this aggregator's id on the upstream link
    (the coordinator supervises aggregators as if they were shards).
    """

    children: tuple
    shard_id: int
    attempt: int = 0
    telemetry: bool = False
    #: transport for the aggregator's own children ("pipe" or "tcp").
    child_transport: str = "pipe"
    start_method: str | None = None


class TierMerge:
    """Order-invariant per-bin merge of K children's summary streams.

    Mirrors the coordinator's alignment rule without an engine: a bin
    is merged once every still-open child has reported a bin >= it
    (each child ships bins in increasing order, so nothing for that
    bin can still be in flight).  Closed children stop gating.  A bin
    no child ever shipped is simply not emitted — children emit
    contiguous bins, so that only happens past every child's close,
    where the coordinator's own gap handling takes over.
    """

    def __init__(self, child_ids) -> None:
        self._all = set(child_ids)
        if not self._all:
            raise ValueError("an aggregator needs at least one child")
        self._open = set(self._all)
        self._highwater: dict[int, int] = {c: -1 for c in self._all}
        self._pending: dict[int, dict[int, ShardBinSummary]] = {}
        self._emitted_through = -1

    @property
    def done(self) -> bool:
        """Every child closed and every pending bin emitted."""
        return not self._open and not self._pending

    def add_serialized(self, child_id: int, payload: bytes):
        """Decode and add one wire summary (raises
        :class:`~repro.cluster.summary.SummaryCorruptError` on a bad
        CRC, which the aggregator surfaces as its own fault)."""
        return self.add_summary(child_id, ShardBinSummary.from_bytes(payload))

    def add_summary(self, child_id: int, summary: ShardBinSummary):
        """Add one child summary; return merged summaries now ready,
        in bin order."""
        if child_id not in self._all:
            raise ValueError(f"unknown child {child_id}")
        if summary.bin <= self._emitted_through:
            raise ValueError(
                f"child {child_id} re-delivered bin {summary.bin} after "
                f"the tier emitted through bin {self._emitted_through}"
            )
        self._highwater[child_id] = max(
            self._highwater[child_id], summary.bin
        )
        self._pending.setdefault(summary.bin, {})[child_id] = summary
        return self._drain()

    def close_child(self, child_id: int):
        """Mark a child finished; return any merges it was gating."""
        if child_id not in self._all:
            raise ValueError(f"unknown child {child_id}")
        self._open.discard(child_id)
        return self._drain()

    def _drain(self) -> list[ShardBinSummary]:
        merged: list[ShardBinSummary] = []
        while self._pending:
            target = min(self._pending)
            if any(self._highwater[c] < target for c in self._open):
                break
            group = self._pending.pop(target)
            self._emitted_through = target
            merged.append(merge_summaries(group.values()))
        return merged
