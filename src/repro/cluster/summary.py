"""Mergeable per-bin shard summaries (the cluster's unit of exchange).

Section 8 of the paper poses distributed deployment as the open systems
problem: monitors at each PoP observe feature histograms locally and a
central point mines anomalies network-wide.  The object that makes this
work is a *mergeable summary* — each shard reduces its slice of the
records for one time bin into a :class:`ShardBinSummary`, ships it to
the coordinator, and the coordinator folds the shards together with an
associative, commutative :meth:`ShardBinSummary.merge` before entropy
is ever computed.  Because the merge happens on raw counts (exact
histograms) or on Count-Min counter tables (sketch mode), *any*
partition of the records across shards yields the same merged summary:
bit-identical in exact mode, within the sketch estimator's tolerance in
sketch mode (conservative update makes a single-pass sketch slightly
tighter than a merged one, but point queries never under-estimate in
either).

Summaries serialize to a compact little-endian wire format
(:meth:`to_bytes` / :meth:`from_bytes`) so worker processes — or, in a
real deployment, PoP monitors — can ship them over queues and sockets
without pickling.  Exact-mode payloads are canonical: two summaries
describing the same counts serialize to identical bytes regardless of
ingestion order or sharding.

The current wire version (``RBS2``) frames the original ``RBS1`` body
with a CRC32 so bytes corrupted in transit raise
:class:`SummaryCorruptError` at the coordinator — which can then retry
the shard — instead of being silently merged into the diagnosis.
``from_bytes`` still accepts bare ``RBS1`` payloads (older monitors,
pre-CRC checkpoints); framing is additive, so the canonical-bytes
property is preserved.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.flows.features import N_FEATURES
from repro.flows.sketches import CountMinSketch, entropy_from_sketch
from repro.kernels import group_reduce, grouped_entropy, merge_histograms
from repro.stream.window import BinAccumulator, BinSummary

__all__ = ["ShardBinSummary", "SummaryCorruptError", "merge_summaries"]

_MAGIC = b"RBS1"
#: v2 frame: magic + CRC32 of the enclosed v1 payload (itself magic'd).
_MAGIC_V2 = b"RBS2"
_CRC = struct.Struct("<I")
#: magic, mode, bin, n_od_flows, n_records, width, depth, sketch_seed
_HEADER = struct.Struct("<4sBqiqiiq")
_OD_HEADER = struct.Struct("<i")
_COUNT = struct.Struct("<i")
_TOTAL = struct.Struct("<q")

_EXACT, _SKETCH = 0, 1


class SummaryCorruptError(ValueError):
    """A wire payload failed its CRC (bytes corrupted in transit)."""


class _ExactFeature:
    """One (OD, feature) histogram in canonical (sorted, grouped) form."""

    __slots__ = ("values", "counts")

    def __init__(self, values: np.ndarray, counts: np.ndarray) -> None:
        self.values = values
        self.counts = counts

    def merge(self, other: "_ExactFeature") -> "_ExactFeature":
        return _ExactFeature(
            *merge_histograms(self.values, self.counts, other.values, other.counts)
        )


class _SketchFeature:
    """One (OD, feature) Count-Min sketch plus its candidate-value set."""

    __slots__ = ("sketch", "candidates")

    def __init__(self, sketch: CountMinSketch, candidates: set[int]) -> None:
        self.sketch = sketch
        self.candidates = candidates

    def merge(self, other: "_SketchFeature") -> "_SketchFeature":
        return _SketchFeature(
            self.sketch.merge(other.sketch), self.candidates | other.candidates
        )

    def entropy(self) -> float:
        # Sorted candidates: float summation order (and hence the
        # estimate's last bits) must not depend on set insertion
        # history, or identical partitions would score differently.
        candidates = np.fromiter(
            sorted(self.candidates), dtype=np.int64, count=len(self.candidates)
        )
        return entropy_from_sketch(self.sketch, candidates)


class ShardBinSummary:
    """One shard's reduction of one time bin, mergeable across shards.

    State per active OD flow: four per-feature summaries (exact
    canonical histograms, or Count-Min sketches plus candidate sets)
    and int64 packet/byte counters.  ``merge`` is associative and
    commutative, so a coordinator may fold shards in any order.

    Attributes:
        bin: Global bin index.
        n_od_flows: Ensemble width p (must agree to merge).
        exact: Exact histograms (True) or Count-Min sketches.
        width / depth / sketch_seed: Sketch geometry (sketch mode).
        packets / bytes: ``(p,)`` int64 volume counters.
        n_records: Records reduced into this summary.
    """

    def __init__(
        self,
        bin: int,
        n_od_flows: int,
        exact: bool = True,
        width: int = 2048,
        depth: int = 4,
        sketch_seed: int = 0,
    ) -> None:
        self.bin = int(bin)
        self.n_od_flows = int(n_od_flows)
        self.exact = bool(exact)
        # Sketch geometry is meaningless in exact mode; normalise it to
        # zero so exact payloads stay canonical (byte-identical for the
        # same counts) no matter what sketch knobs the monitor carried.
        self.width = 0 if self.exact else int(width)
        self.depth = 0 if self.exact else int(depth)
        self.sketch_seed = 0 if self.exact else int(sketch_seed)
        self.packets = np.zeros(n_od_flows, dtype=np.int64)
        self.bytes = np.zeros(n_od_flows, dtype=np.int64)
        self.n_records = 0
        self._features: dict[int, list] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def from_accumulator(
        cls, accumulator: BinAccumulator, bin_index: int
    ) -> "ShardBinSummary":
        """Freeze a :class:`repro.stream.window.BinAccumulator`.

        This is how a shard monitor exports a closed bin: the
        accumulator's pre-entropy state becomes the mergeable summary.
        Exact parts are canonicalised and candidate sets copied; sketch
        tables are handed off as-is, which is safe because the stage
        discards the accumulator when it closes a bin.
        """
        summary = cls(
            bin_index,
            accumulator.n_od_flows,
            exact=accumulator.exact,
            width=accumulator.width,
            depth=accumulator.depth,
            sketch_seed=accumulator.seed,
        )
        summary.packets, summary.bytes = accumulator.export_volumes()
        summary.n_records = accumulator.n_records
        if accumulator.exact:
            # The kernel's sorted runs ARE the canonical per-OD
            # histograms (values ascending, counts grouped): slice them
            # straight into the summary, one grouped reduction per
            # feature instead of a canonicalisation per (OD, feature).
            for k in range(N_FEATURES):
                runs = accumulator.feature_runs(k)
                for i, od in enumerate(runs.group_ids):
                    values, counts = runs.slice(i)
                    entry = summary._features.setdefault(
                        int(od), [None] * N_FEATURES
                    )
                    entry[k] = _ExactFeature(values.copy(), counts.copy())
            empty = np.zeros(0, dtype=np.int64)
            for entry in summary._features.values():
                for k in range(N_FEATURES):
                    if entry[k] is None:
                        entry[k] = _ExactFeature(empty, empty)
        else:
            banks, candidates = accumulator.sketch_state()
            for od, entry in candidates.items():
                summary._features[od] = [
                    # Views, not copies: the stage discards the
                    # accumulator (and with it write access to the
                    # banks) when the bin closes.
                    _SketchFeature(banks[k].sketch(od, copy=False), set(entry[k]))
                    for k in range(N_FEATURES)
                ]
        return summary

    # -- algebra ----------------------------------------------------------

    def _check_mergeable(self, other: "ShardBinSummary") -> None:
        if self.bin != other.bin:
            raise ValueError(
                f"cannot merge summaries of different bins ({self.bin} != {other.bin})"
            )
        if self.n_od_flows != other.n_od_flows:
            raise ValueError("cannot merge summaries of different ensembles")
        if self.exact != other.exact:
            raise ValueError("cannot merge exact and sketch summaries")
        if not self.exact and (self.width, self.depth, self.sketch_seed) != (
            other.width,
            other.depth,
            other.sketch_seed,
        ):
            raise ValueError("cannot merge sketches of different geometry")

    def merge(self, other: "ShardBinSummary") -> "ShardBinSummary":
        """Fold two shards' summaries of the same bin (associative,
        commutative; neither input is mutated)."""
        self._check_mergeable(other)
        merged = ShardBinSummary(
            self.bin,
            self.n_od_flows,
            exact=self.exact,
            width=self.width,
            depth=self.depth,
            sketch_seed=self.sketch_seed,
        )
        merged.packets = self.packets + other.packets
        merged.bytes = self.bytes + other.bytes
        merged.n_records = self.n_records + other.n_records
        overlap = self._features.keys() & other._features.keys()
        for od in self._features.keys() | other._features.keys():
            if od in overlap:
                continue
            mine, theirs = self._features.get(od), other._features.get(od)
            merged._features[od] = list(mine if theirs is None else theirs)
        if overlap:
            if self.exact:
                # Row-partitioned shards (trace striping) overlap on
                # every active OD; folding them per (OD, feature) costs
                # hundreds of tiny kernel calls per bin.  Batch all
                # overlapping histograms of one feature into a single
                # grouped reduction instead — its sorted runs are
                # already the canonical form, so the merged bytes are
                # identical to the pairwise path.
                merged._features.update(
                    _batched_exact_merge(self._features, other._features, overlap)
                )
            else:
                for od in overlap:
                    mine, theirs = self._features[od], other._features[od]
                    merged._features[od] = [
                        mine[k].merge(theirs[k]) for k in range(N_FEATURES)
                    ]
        return merged

    # -- scoring hand-off --------------------------------------------------

    @property
    def active_ods(self) -> list[int]:
        """OD flows with any data, sorted."""
        return sorted(self._features)

    def entropy_matrix(self) -> np.ndarray:
        """``(p, 4)`` per-feature sample entropies (zeros for idle ODs).

        Exact mode funnels every OD's counts into one grouped-entropy
        kernel pass per feature; sketch mode estimates per sketch.
        """
        entropy = np.zeros((self.n_od_flows, N_FEATURES))
        if not self._features:
            return entropy
        if self.exact:
            ods = self.active_ods
            for k in range(N_FEATURES):
                counts = [self._features[od][k].counts for od in ods]
                lengths = np.array([len(c) for c in counts], dtype=np.int64)
                starts = np.zeros(len(ods) + 1, dtype=np.int64)
                np.cumsum(lengths, out=starts[1:])
                entropy[ods, k] = grouped_entropy(
                    np.concatenate(counts) if counts else np.zeros(0), starts
                )
        else:
            for od, entry in self._features.items():
                for k in range(N_FEATURES):
                    entropy[od, k] = entry[k].entropy()
        return entropy

    def to_bin_summary(self) -> BinSummary:
        """Render as the :class:`BinSummary` the detection engine scores."""
        return BinSummary(
            bin=self.bin,
            entropy=self.entropy_matrix(),
            packets=self.packets.astype(np.float64),
            bytes=self.bytes.astype(np.float64),
            n_records=self.n_records,
        )

    # -- wire format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the CRC-framed wire format (canonical in exact mode).

        Layout: ``b"RBS2"`` + CRC32 of the v1 body + the v1 body.  The
        CRC covers everything after the frame, so any bit flipped in
        transit is caught by :meth:`from_bytes` before the summary can
        reach the merge.
        """
        body = self._to_bytes_v1()
        return b"".join([_MAGIC_V2, _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF), body])

    def _to_bytes_v1(self) -> bytes:
        """The unframed (legacy ``RBS1``) body."""
        mode = _EXACT if self.exact else _SKETCH
        parts = [
            _HEADER.pack(
                _MAGIC,
                mode,
                self.bin,
                self.n_od_flows,
                self.n_records,
                self.width,
                self.depth,
                self.sketch_seed,
            ),
            self.packets.astype("<i8", copy=False).tobytes(),
            self.bytes.astype("<i8", copy=False).tobytes(),
            _COUNT.pack(len(self._features)),
        ]
        for od in sorted(self._features):
            parts.append(_OD_HEADER.pack(od))
            for feature in self._features[od]:
                if self.exact:
                    parts.append(_COUNT.pack(len(feature.values)))
                    parts.append(feature.values.astype("<i8", copy=False).tobytes())
                    parts.append(feature.counts.astype("<i8", copy=False).tobytes())
                else:
                    candidates = np.fromiter(
                        sorted(feature.candidates),
                        dtype="<i8",
                        count=len(feature.candidates),
                    )
                    parts.append(_TOTAL.pack(feature.sketch.total))
                    parts.append(_COUNT.pack(len(candidates)))
                    parts.append(
                        feature.sketch.table.astype("<i8", copy=False).tobytes()
                    )
                    parts.append(candidates.tobytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ShardBinSummary":
        """Rebuild a summary serialized by :meth:`to_bytes`.

        Accepts both wire versions: CRC-framed ``RBS2`` payloads (the
        frame is verified, :class:`SummaryCorruptError` on mismatch)
        and bare legacy ``RBS1`` bodies, which predate the checksum.
        """
        if data[:4] == _MAGIC_V2:
            (stored_crc,) = _CRC.unpack_from(data, 4)
            data = data[4 + _CRC.size :]
            if zlib.crc32(data) & 0xFFFFFFFF != stored_crc:
                raise SummaryCorruptError(
                    "ShardBinSummary payload failed its CRC "
                    "(bytes corrupted in transit)"
                )
        if data[:4] != _MAGIC:
            raise ValueError("not a ShardBinSummary payload")
        (_, mode, bin_index, p, n_records, width, depth, sketch_seed) = _HEADER.unpack_from(
            data, 0
        )
        offset = _HEADER.size
        summary = cls(
            bin_index,
            p,
            exact=(mode == _EXACT),
            width=width,
            depth=depth,
            sketch_seed=sketch_seed,
        )
        summary.n_records = n_records

        def take_array(n: int) -> np.ndarray:
            nonlocal offset
            array = np.frombuffer(data, dtype="<i8", count=n, offset=offset)
            offset += 8 * n
            return array.astype(np.int64)

        summary.packets = take_array(p)
        summary.bytes = take_array(p)
        (n_active,) = _COUNT.unpack_from(data, offset)
        offset += _COUNT.size
        for _ in range(n_active):
            (od,) = _OD_HEADER.unpack_from(data, offset)
            offset += _OD_HEADER.size
            entry = []
            for _ in range(N_FEATURES):
                if summary.exact:
                    (n,) = _COUNT.unpack_from(data, offset)
                    offset += _COUNT.size
                    entry.append(_ExactFeature(take_array(n), take_array(n)))
                else:
                    (total,) = _TOTAL.unpack_from(data, offset)
                    offset += _TOTAL.size
                    (n_candidates,) = _COUNT.unpack_from(data, offset)
                    offset += _COUNT.size
                    sketch = CountMinSketch(width=width, depth=depth, seed=sketch_seed)
                    sketch.table = take_array(depth * width).reshape(depth, width)
                    sketch.total = total
                    entry.append(
                        _SketchFeature(sketch, set(take_array(n_candidates).tolist()))
                    )
            summary._features[od] = entry
        if offset != len(data):
            raise ValueError("trailing bytes in ShardBinSummary payload")
        return summary

    def __repr__(self) -> str:
        mode = "exact" if self.exact else f"sketch w={self.width} d={self.depth}"
        return (
            f"ShardBinSummary(bin={self.bin}, active_ods={len(self._features)}, "
            f"records={self.n_records}, {mode})"
        )


def _batched_exact_merge(
    a: dict[int, list], b: dict[int, list], overlap: set[int]
) -> dict[int, list]:
    """Merge the exact feature entries of ODs present in *both* maps.

    One :func:`group_reduce` call per feature over every overlapping
    OD's concatenated (value, count) runs, keyed by OD.  The kernel's
    ascending (group, value) runs with positive summed counts are
    exactly the canonical histogram form ``_ExactFeature.merge``
    produces, so this is byte-for-byte the pairwise result.
    """
    ods = np.fromiter(sorted(overlap), dtype=np.int64, count=len(overlap))
    merged: dict[int, list] = {int(od): [None] * N_FEATURES for od in ods}
    empty = np.zeros(0, dtype=np.int64)
    for k in range(N_FEATURES):
        features = [side[int(od)][k] for od in ods for side in (a, b)]
        lengths = np.fromiter(
            (len(f.values) for f in features), dtype=np.int64, count=len(features)
        )
        runs = group_reduce(
            np.repeat(np.repeat(ods, 2), lengths),
            np.concatenate([f.values for f in features]),
            np.concatenate([f.counts for f in features]),
        )
        for entry in merged.values():
            # ODs whose histograms are empty on both sides have no rows,
            # so the kernel omits them: pre-fill, then overwrite.
            entry[k] = _ExactFeature(empty, empty)
        for i, od in enumerate(runs.group_ids):
            values, counts = runs.slice(i)
            # Views, not copies: the runs arrays back the merged
            # summary's histograms directly.
            merged[int(od)][k] = _ExactFeature(values, counts)
    return merged


def merge_summaries(summaries) -> ShardBinSummary:
    """Fold an iterable of same-bin summaries into one (order-free)."""
    result = None
    for summary in summaries:
        result = summary if result is None else result.merge(summary)
    if result is None:
        raise ValueError("merge_summaries needs at least one summary")
    return result
