"""Terminal visualisation helpers for timeseries and scatter data.

The paper's figures are timeseries, rank histograms, and entropy-space
scatters.  In a terminal-first reproduction the examples and CLI render
them as unicode sparklines and character grids — enough to *see* the
port scan dip/spike of Figure 2 or the clusters of Figure 8 without a
plotting stack.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "timeseries_panel", "scatter_grid", "histogram_bar"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 72, mark: int | None = None) -> str:
    """One-line unicode sparkline of a series.

    Args:
        values: 1-D series.
        width: Output character width; the series is block-averaged
            down to it (never upsampled).
        mark: Optional index in the *original* series to highlight by
            wrapping its bucket in angle brackets (the anomalous bin);
            adds two characters to the line.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("values must be a non-empty 1-D series")
    n = arr.size
    width = min(width, n)
    # Block-average into `width` buckets.
    edges = np.linspace(0, n, width + 1).astype(int)
    buckets = np.array([arr[a:b].mean() for a, b in zip(edges, edges[1:])])
    lo, hi = buckets.min(), buckets.max()
    if hi - lo < 1e-12:
        line = _SPARK_LEVELS[0] * width
    else:
        idx = np.round((buckets - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1))
        line = "".join(_SPARK_LEVELS[int(i)] for i in idx)
    if mark is not None:
        if not 0 <= mark < n:
            raise ValueError("mark outside the series")
        pos = min(int(mark / n * width), width - 1)
        # Highlight without erasing the data glyph: wrap the bucket.
        line = line[:pos] + "⟨" + line[pos] + "⟩" + line[pos + 1 :]
    return line


def timeseries_panel(
    series: dict[str, np.ndarray], width: int = 72, mark: int | None = None
) -> str:
    """Stacked labelled sparklines (the Figure-2 layout)."""
    if not series:
        raise ValueError("no series given")
    label_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        lines.append(f"{name:<{label_width}}  {sparkline(values, width, mark)}")
    return "\n".join(lines)


def scatter_grid(
    x,
    y,
    labels=None,
    width: int = 48,
    height: int = 18,
    x_name: str = "x",
    y_name: str = "y",
) -> str:
    """Character-grid scatter plot (the Figure-8 layout).

    Points are binned into a width x height grid over [-1.1, 1.1]^2
    (entropy-space coordinates are unit-norm components).  Cells show
    the cluster digit when ``labels`` is given (clusters >= 10 wrap to
    letters), else ``o``; collisions keep the most common label.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    symbols = "0123456789abcdefghijklmnopqrstuvwxyz"
    grid: list[list[dict]] = [[{} for _ in range(width)] for _ in range(height)]
    lo, hi = -1.1, 1.1
    for i in range(x.size):
        col = int((x[i] - lo) / (hi - lo) * (width - 1))
        row = int((y[i] - lo) / (hi - lo) * (height - 1))
        col = min(max(col, 0), width - 1)
        row = min(max(row, 0), height - 1)
        key = "o" if labels is None else symbols[int(labels[i]) % len(symbols)]
        cell = grid[row][col]
        cell[key] = cell.get(key, 0) + 1
    lines = [f"{y_name} ^"]
    for row in reversed(range(height)):
        chars = []
        for col in range(width):
            cell = grid[row][col]
            if not cell:
                chars.append("·" if (row == height // 2 or col == width // 2) else " ")
            else:
                chars.append(max(cell.items(), key=lambda kv: kv[1])[0])
        lines.append("  |" + "".join(chars))
    lines.append("  +" + "-" * width + f"> {x_name}")
    return "\n".join(lines)


def histogram_bar(counts, width: int = 60, max_rows: int = 12) -> str:
    """Horizontal bar chart of a rank-ordered histogram (Figure 1)."""
    arr = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    arr = arr[arr > 0]
    if arr.size == 0:
        return "(empty histogram)"
    top = arr[:max_rows]
    peak = top[0]
    lines = []
    for rank, value in enumerate(top, start=1):
        bar = "#" * max(1, int(value / peak * width))
        lines.append(f"rank {rank:>3}  {bar} {int(value)}")
    if arr.size > max_rows:
        lines.append(f"... {arr.size - max_rows} more values, total {int(arr.sum())}")
    return "\n".join(lines)
