"""The scenario registry: named end-to-end workloads.

A :class:`Scenario` is a complete, reproducible workload — a network,
a bin-grid length, a warm-up split, and a deterministic schedule of
anomaly events composed from the Table-1 zoo
(:mod:`repro.anomalies.builders`) — runnable through
:class:`repro.pipeline.DetectionPipeline` on any source (inline
synthesis, a recorded trace) in any deployment mode (batch, stream,
cluster).  Scenarios echo the workload-stress framing of the related
evaluation literature: one system, many structurally different traffic
regimes.

The registry ships with six workloads:

========================  ====================================================
``baseline-diurnal``      clean diurnal background — the false-alarm floor
``ddos-burst``            a distributed DOS burst plus a single-source echo
``port-scan-sweep``       low-volume port scans sweeping across OD flows
``flash-crowd``           legitimate demand spikes onto one service
``worm-outbreak``         escalating worm + network scanning
``mixed-anomaly-day``     one of each major type across a day of traffic
========================  ====================================================

Register more with :func:`register_scenario`; every registered scenario
is runnable via ``repro run <name>`` and automatically covered by the
mode-parity matrix in ``tests/test_pipeline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.anomalies.base import AnomalyTrace
from repro.anomalies.builders import BUILDERS
from repro.flows.records import FlowRecordBatch
from repro.net.topology import Topology
from repro.scenarios.records import anomaly_record_batch
from repro.stream.chunks import synthetic_record_stream

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioEvent",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "scenario_record_batches",
]


@dataclass(frozen=True)
class ScenarioEvent:
    """One scheduled ground-truth anomaly of a scenario run.

    Attributes:
        bin: Target bin index.
        od: Target OD flow.
        label: Anomaly type (a :data:`BUILDERS` key).
        trace: The built :class:`AnomalyTrace`.
    """

    bin: int
    od: int
    label: str
    trace: AnomalyTrace


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible end-to-end workload.

    Attributes:
        name: Registry key (also the ``repro run`` argument).
        description: One-line summary shown by ``repro scenarios list``.
        network: Default topology.
        n_bins: Default run length (warm-up included).
        warmup_bins: Default bins accumulated before scoring.
        max_records_per_od: Default record cap per (OD flow, bin).
        salt: Per-scenario seed component keeping schedules independent
            across scenarios at the same user seed.
        build_events: ``(topology, n_bins, warmup_bins, rng) -> events``
            — the deterministic schedule builder.
    """

    name: str
    description: str
    build_events: Callable = field(repr=False)
    network: str = "abilene"
    n_bins: int = 72
    warmup_bins: int = 48
    max_records_per_od: int = 120
    salt: int = 0

    def scaled_warmup(self, n_bins: int) -> int:
        """The warm-up split scaled to a run of ``n_bins`` bins.

        The scenario's ``warmup_bins`` is relative to its default
        length; runs (and schedules) on a different grid keep the
        proportion.
        """
        warmup = int(round(self.warmup_bins * int(n_bins) / self.n_bins))
        return max(1, min(warmup, int(n_bins) - 1))

    def events_for(
        self,
        topology: Topology,
        n_bins: int | None = None,
        warmup_bins: int | None = None,
        seed: int = 0,
    ) -> list[ScenarioEvent]:
        """The scenario's ground-truth events on a concrete grid.

        Deterministic for ``(scenario, topology, n_bins, seed)``: any
        process — a cluster worker, a trace writer, an inline run —
        rebuilds the identical schedule.  When ``warmup_bins`` is not
        given, the scenario's warm-up split scales proportionally with
        ``n_bins`` (the same rule ``repro run`` applies), so events
        stay inside the scored window at any run length.
        """
        n_bins = int(n_bins or self.n_bins)
        if n_bins < 2:
            raise ValueError("scenario needs at least 2 bins")
        if warmup_bins is None:
            warmup = self.scaled_warmup(n_bins)
        else:
            warmup = int(warmup_bins)
        warmup = max(1, min(warmup, n_bins - 1))
        rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), self.salt, 0x5CE])
        )
        events = list(self.build_events(topology, n_bins, warmup, rng))
        for event in events:
            if not 0 <= event.bin < n_bins:
                raise ValueError(
                    f"scenario {self.name!r} schedules bin {event.bin} "
                    f"outside [0, {n_bins})"
                )
            if not 0 <= event.od < topology.n_od_flows:
                raise ValueError(
                    f"scenario {self.name!r} schedules OD {event.od} "
                    f"outside the {topology.name} topology"
                )
        events.sort(key=lambda e: (e.bin, e.od))
        return events


def scenario_record_batches(
    generator,
    events: Sequence[ScenarioEvent],
    bins: Sequence[int],
    ods: Sequence[int] | None = None,
    max_records_per_od: int = 120,
    seed: int = 0,
    event_record_cap: int = 4000,
) -> Iterator[FlowRecordBatch]:
    """The scenario's record stream: background with events merged in.

    One time-sorted batch per bin, exactly like
    :func:`repro.stream.chunks.synthetic_record_stream`, with each
    scheduled event's records
    (:func:`repro.scenarios.records.anomaly_record_batch`) merged into
    its bin.  When ``ods`` restricts the stream to an OD slice (a
    cluster shard), only events targeting owned ODs are materialised —
    the union over any partition equals the unsharded stream record for
    record.
    """
    owned = None if ods is None else set(int(od) for od in ods)
    by_bin: dict[int, list[ScenarioEvent]] = {}
    for event in events:
        if owned is not None and event.od not in owned:
            continue
        by_bin.setdefault(event.bin, []).append(event)
    background = synthetic_record_stream(
        generator, bins, ods=ods, max_records_per_od=max_records_per_od, seed=seed
    )
    for b, batch in zip(bins, background):
        staged = by_bin.get(int(b))
        if staged:
            # Events thinned to zero packets (heavy sampling in the
            # quality harness) stay in the ground-truth schedule but
            # materialise no records — exactly what a sampled export
            # would show.
            parts = [batch] + [
                anomaly_record_batch(
                    generator, e.od, e.bin, e.trace,
                    salt=seed, max_records=event_record_cap,
                )
                for e in staged
                if e.trace.packets >= 1
            ]
            if len(parts) > 1:
                batch = FlowRecordBatch.concat(parts).sort_by_time()
        yield batch


# -- registry ------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (name must be unused)."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; raises ``ValueError`` naming the registry."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ValueError(f"unknown scenario {name!r}; registered: {known}") from None


# -- built-in workloads --------------------------------------------------


def _live_bins(n_bins: int, warmup: int, k: int) -> list[int]:
    """``k`` bins spread evenly across the scored (post-warm-up) window."""
    live = n_bins - warmup
    positions = np.linspace(0.2, 0.9, k)
    return sorted({warmup + int(round(p * (live - 1))) for p in positions})


def _pick_ods(topology: Topology, rng: np.random.Generator, k: int) -> list[int]:
    """``k`` distinct OD flows, uniformly at random."""
    return [int(od) for od in rng.choice(topology.n_od_flows, size=k, replace=False)]


def _event(b: int, od: int, label: str, rng: np.random.Generator,
           pps: float, **kwargs) -> ScenarioEvent:
    return ScenarioEvent(
        bin=int(b), od=int(od), label=label,
        trace=BUILDERS[label](rng, pps=pps, **kwargs),
    )


def _baseline_events(topology, n_bins, warmup, rng):
    return []


def _ddos_events(topology, n_bins, warmup, rng):
    bins = _live_bins(n_bins, warmup, 2)
    ods = _pick_ods(topology, rng, len(bins))
    events = [_event(bins[0], ods[0], "ddos", rng, pps=2.75e4)]
    if len(bins) > 1:
        # The single-source echo the paper's Los Nettos trace shows
        # after the distributed phase, at a tenth of its rate.
        events.append(_event(bins[1], ods[1], "dos", rng, pps=3.5e4))
    return events


def _port_scan_events(topology, n_bins, warmup, rng):
    bins = _live_bins(n_bins, warmup, 3)
    ods = _pick_ods(topology, rng, len(bins))
    return [
        _event(b, od, "port_scan", rng, pps=float(rng.uniform(120.0, 320.0)),
               dispersed_src_ports=bool(i % 2 == 0))
        for i, (b, od) in enumerate(zip(bins, ods))
    ]


def _flash_crowd_events(topology, n_bins, warmup, rng):
    bins = _live_bins(n_bins, warmup, 2)
    ods = _pick_ods(topology, rng, len(bins))
    return [
        _event(b, od, "flash_crowd", rng, pps=float(rng.uniform(4_000.0, 9_000.0)))
        for b, od in zip(bins, ods)
    ]


def _worm_events(topology, n_bins, warmup, rng):
    bins = _live_bins(n_bins, warmup, 3)
    ods = _pick_ods(topology, rng, len(bins))
    events = []
    pps = 150.0
    for i, (b, od) in enumerate(zip(bins, ods)):
        label = "network_scan" if i == 0 else "worm"
        events.append(_event(b, od, label, rng, pps=pps))
        pps *= 2.0  # the outbreak escalates as infected hosts scan
    return events


def _mixed_events(topology, n_bins, warmup, rng):
    kinds = (
        ("alpha", 2_500.0),
        ("ddos", 2.2e4),
        ("port_scan", 220.0),
        ("worm", 300.0),
        ("point_multipoint", 900.0),
    )
    bins = _live_bins(n_bins, warmup, len(kinds))
    ods = _pick_ods(topology, rng, len(bins))
    return [
        _event(b, od, label, rng, pps=pps)
        for (label, pps), b, od in zip(kinds, bins, ods)
    ]


register_scenario(Scenario(
    name="baseline-diurnal",
    description="clean diurnal background, no scheduled anomalies "
                "(the false-alarm floor)",
    build_events=_baseline_events,
    salt=1,
))
register_scenario(Scenario(
    name="ddos-burst",
    description="a 27.5k pps distributed DOS burst with a single-source "
                "echo (paper Table 4 rates)",
    build_events=_ddos_events,
    salt=2,
))
register_scenario(Scenario(
    name="port-scan-sweep",
    description="three low-volume port scans sweeping across OD flows "
                "(both source-port variants)",
    build_events=_port_scan_events,
    salt=3,
))
register_scenario(Scenario(
    name="flash-crowd",
    description="legitimate demand spikes converging on one existing "
                "service",
    build_events=_flash_crowd_events,
    salt=4,
))
register_scenario(Scenario(
    name="worm-outbreak",
    description="escalating worm/network scanning at doubling probe "
                "rates",
    build_events=_worm_events,
    salt=5,
))
register_scenario(Scenario(
    name="mixed-anomaly-day",
    description="one of each major anomaly type spread across the "
                "scored window",
    build_events=_mixed_events,
    salt=6,
))
