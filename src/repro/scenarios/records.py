"""Materialise anomaly traces as flow records.

The anomaly zoo (:mod:`repro.anomalies.builders`) describes each
anomaly abstractly: per traffic feature, how its packets distribute
over *background ranks* (values the target OD flow already carries)
and *novel values* (spoofed sources, scanned ports, fresh targets).
The batch injector superimposes those counts onto histograms; the
record-level pipeline needs the same anomaly as a
:class:`repro.flows.records.FlowRecordBatch` so that every deployment
mode — batch aggregation, streaming ingest, sharded cluster workers,
trace replay — sees it through the identical records path.

:func:`anomaly_record_batch` performs that mapping:

* background ranks resolve through
  :meth:`repro.traffic.generator.TrafficGenerator.feature_values`, so a
  DOS victim really is the OD flow's existing heavy host/port;
* novel destination addresses stay inside the destination PoP's prefix
  (anything else would change the record's longest-prefix egress
  resolution and land the anomaly in a different OD flow);
* novel source addresses spread across distinct /21 blocks so the
  collector's 11-bit anonymisation keeps them distinct;
* novel ports come from a high ephemeral range the synthetic
  background never reaches.

All draws come from one ``SeedSequence([generator seed, salt, od, bin])``
stream, independent of any sharding — a cluster worker that owns the
target OD regenerates the exact records the unsharded stream contains,
which is what keeps detections identical at any worker count.
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import AnomalyTrace
from repro.flows.features import DST_IP, FEATURES, SRC_IP
from repro.flows.records import FlowRecordBatch
from repro.net.addressing import ANONYMIZATION_BITS, EPHEMERAL_PORT_START, make_ip
from repro.traffic.distributions import sample_flow_sizes

__all__ = ["anomaly_record_batch"]

#: Base of the novel-source address range (198.18.0.0, the RFC 2544
#: benchmarking block — disjoint from every synthetic PoP prefix).
_NOVEL_SRC_BASE = make_ip(198, 18, 0, 0)

#: First port of the novel range; synthetic background ports are
#: well-known heads plus ephemeral ranks starting at 1024, far below.
_NOVEL_PORT_START = EPHEMERAL_PORT_START + 20_000
_NOVEL_PORT_SPAN = 40_000

#: Record-draw stream tag (disjoint from the generator's own tags).
_TAG_ANOMALY = 0xA70


def _novel_values(generator, od: int, feature: int, n: int) -> np.ndarray:
    """Concrete feature values for ``n`` novel ranks of one feature."""
    origin, destination = generator.topology.od_pair(od)
    ranks = np.arange(n, dtype=np.int64)
    if feature == SRC_IP:
        # One /21 apart each: collector anonymisation masks the low 11
        # bits, and colliding blocks would silently re-concentrate a
        # deliberately dispersed source population.
        return _NOVEL_SRC_BASE + (ranks << ANONYMIZATION_BITS)
    if feature == DST_IP:
        # Must stay inside the destination prefix: egress resolution
        # (hence OD attribution) follows the destination address.
        size = destination.prefix.size
        offset = size // 2
        return destination.prefix.network | (offset + ranks % (size - offset))
    return _NOVEL_PORT_START + ranks % _NOVEL_PORT_SPAN


def _feature_pool(generator, od: int, feature: int, contribution):
    """``(values, weights)`` of one feature's anomaly distribution."""
    values_parts: list[np.ndarray] = []
    weights_parts: list[np.ndarray] = []
    background = [
        (int(rank), int(count))
        for rank, count in contribution.on_background.items()
        if count > 0
    ]
    if background:
        ranks = np.array([r for r, _ in background], dtype=np.int64)
        table = generator.feature_values(od, feature, int(ranks.max()) + 1)
        values_parts.append(table[ranks])
        weights_parts.append(np.array([c for _, c in background], dtype=np.int64))
    novel_idx = np.flatnonzero(contribution.novel)
    if novel_idx.size:
        novel = _novel_values(generator, od, feature, len(contribution.novel))
        values_parts.append(novel[novel_idx])
        weights_parts.append(contribution.novel[novel_idx])
    if not values_parts:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return np.concatenate(values_parts), np.concatenate(weights_parts)


def anomaly_record_batch(
    generator,
    od: int,
    b: int,
    trace: AnomalyTrace,
    salt: int = 0,
    max_records: int = 4000,
) -> FlowRecordBatch:
    """Materialise one anomaly as sampled flow records in one (OD, bin).

    Feature values are drawn per record from the trace's per-feature
    distributions (independent across features, like the background
    materialiser); the anomaly's full packet/byte volume is spread over
    the records.  Deterministic for a given
    ``(generator seed, salt, od, bin)`` — independent of which process
    or shard materialises it.

    Args:
        generator: The background's
            :class:`repro.traffic.generator.TrafficGenerator` (defines
            topology, bin grid, and background feature values).
        od: Target OD flow.
        b: Target bin index.
        trace: The anomaly (from :mod:`repro.anomalies.builders`).
        salt: Extra seed mixed into the draw (the scenario's seed).
        max_records: Cap on materialised records.

    Returns:
        An unsorted :class:`FlowRecordBatch` with timestamps inside bin
        ``b``; callers merge it into the bin's background batch and
        time-sort.
    """
    if trace.packets < 1:
        raise ValueError("anomaly trace carries no packets")
    rng = np.random.default_rng(
        np.random.SeedSequence(
            [generator.config.seed, int(salt), int(od), int(b), _TAG_ANOMALY]
        )
    )
    total = int(trace.packets)
    richest = max(c.n_values for c in trace.contributions)
    n = int(min(max_records, max(1, total // 3, richest)))
    # A ``flow_cdf`` meta entry (set by the quality fuzzer) spreads the
    # volume over records with a heavy-tailed CDF-sampled flow-size mix
    # instead of the uniform split; absent, the draw sequence is
    # bit-identical to the pre-fuzzer materialiser.
    profile = trace.meta.get("flow_cdf")
    if profile is not None:
        sizes = sample_flow_sizes(profile, n, rng).astype(np.float64)
        pmf = sizes / sizes.sum()
    else:
        pmf = np.full(n, 1.0 / n)
    pkts = np.maximum(1, rng.multinomial(total, pmf)).astype(np.int64)

    columns: dict[str, np.ndarray] = {}
    for k, name in enumerate(FEATURES):
        values, weights = _feature_pool(generator, od, k, trace.contributions[k])
        total_w = int(weights.sum())
        if total_w <= 0:
            columns[name] = np.zeros(n, dtype=np.int64)
            continue
        cdf = (weights / total_w).cumsum()
        cdf /= cdf[-1]
        picks = cdf.searchsorted(rng.random(n), side="right").astype(np.int64)
        columns[name] = values[picks]

    origin, _ = generator.topology.od_pair(od)
    scale = trace.bytes / total if total else 0.0
    start = generator.bins.bin_start(b)
    return FlowRecordBatch(
        src_ip=columns["src_ip"],
        dst_ip=columns["dst_ip"],
        src_port=columns["src_port"],
        dst_port=columns["dst_port"],
        protocol=np.full(n, 6, dtype=np.int64),
        packets=pkts,
        bytes=np.round(pkts * scale).astype(np.int64),
        timestamp=start + rng.uniform(0, generator.bins.width, size=n),
        ingress_pop=np.full(n, origin.index, dtype=np.int64),
    )
