"""Registered end-to-end workloads runnable on any pipeline mode.

``repro.scenarios`` holds the scenario registry
(:mod:`repro.scenarios.catalog`) — named, reproducible workloads
composing the anomaly zoo over synthetic backbone traffic — and the
record-level anomaly materialiser (:mod:`repro.scenarios.records`) that
lets every deployment mode see a scenario through the same flow
records.  Run one with::

    repro run ddos-burst --mode stream        # or batch / cluster

or through the API via
:class:`repro.pipeline.sources.ScenarioSource`.
"""

from repro.scenarios.catalog import (
    SCENARIOS,
    Scenario,
    ScenarioEvent,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_record_batches,
)
from repro.scenarios.records import anomaly_record_batch

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioEvent",
    "anomaly_record_batch",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "scenario_record_batches",
]
