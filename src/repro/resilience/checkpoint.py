"""Coordinator checkpoints: closed-bin merged summaries on disk.

As the cluster coordinator closes bins, it appends each bin's *merged*
:class:`~repro.cluster.summary.ShardBinSummary` — the same byte-canonical
wire payload the workers ship — to an append-only checkpoint file.  If
the run dies, ``--resume`` replays the checkpointed bins through the
streaming engine (deterministic, so the replay is bit-identical to the
original merges) and restarts the workers at the first unclosed bin.

File layout (little-endian)::

    8s   magic  b"RPROCKPT"
    <I   header length
    ...  JSON header {"version": 1, "fingerprint": {...}}
    then per closed bin, in bin order starting at 0:
    <q   bin index
    <i   payload length in bytes, or -1 for a gap bin (no payload)
    <I   crc32 of the payload (0 for gaps)
    ...  payload bytes

Records are flushed per append, so a kill can leave at most one torn
record at the tail; :func:`load_checkpoint` stops at the first short,
CRC-bad, or out-of-sequence record and reports the byte offset of the
last good one, which :class:`CheckpointWriter` truncates back to before
resuming appends.

The header ``fingerprint`` (see :func:`run_fingerprint`) pins the
source spec, engine config, and detector set; resuming with a different
workload raises :class:`CheckpointError` rather than silently merging
incompatible summaries.  Shard count is deliberately *excluded* — the
merge is canonical across shardings, so a run checkpointed at 4 workers
may resume at 2.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import zlib
from dataclasses import dataclass

__all__ = [
    "CheckpointError",
    "CheckpointState",
    "CheckpointWriter",
    "load_checkpoint",
    "run_fingerprint",
]

_MAGIC = b"RPROCKPT"
_VERSION = 1
_LEN = struct.Struct("<I")
_RECORD = struct.Struct("<qiI")  # bin index, payload length (-1 = gap), crc32


class CheckpointError(ValueError):
    """Checkpoint file unusable for this run (bad magic, version,
    or fingerprint mismatch)."""


@dataclass(frozen=True)
class CheckpointState:
    """Result of loading a checkpoint.

    Attributes:
        fingerprint: The run fingerprint stored in the header.
        bins: ``(bin_index, payload_or_None)`` for each recovered
            closed bin, contiguous from bin 0; ``None`` marks a gap bin
            (synthesized-empty at merge time).
        end_offset: Byte offset just past the last good record — where
            a resuming writer truncates to before appending.
    """

    fingerprint: dict
    bins: tuple[tuple[int, bytes | None], ...]
    end_offset: int

    @property
    def next_bin(self) -> int:
        """First bin the checkpoint does not cover."""
        return len(self.bins)


def run_fingerprint(spec, config, detectors) -> dict:
    """JSON-safe identity of a run, for checkpoint compatibility.

    Everything that shapes the merged summaries is included: the source
    spec (traffic is a pure function of it), the engine config, and the
    detector set.  Worker count is excluded on purpose — the canonical
    merge makes summaries independent of sharding.
    """
    spec_dict = dataclasses.asdict(spec)
    # `fuzz` is a nested spec object; its repr is stable and JSON-safe.
    if spec_dict.get("fuzz") is not None:
        spec_dict["fuzz"] = repr(spec.fuzz)
    return {
        "spec": spec_dict,
        "config": dataclasses.asdict(config),
        "detectors": list(detectors),
    }


def load_checkpoint(path: str, fingerprint: dict | None = None) -> CheckpointState:
    """Load a checkpoint, stopping at the first torn or bad record.

    Raises :class:`CheckpointError` on bad magic/version or (when
    ``fingerprint`` is given) a fingerprint mismatch.  A torn tail is
    *not* an error — the state simply ends at the last good record.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    if len(blob) < len(_MAGIC) + _LEN.size or blob[: len(_MAGIC)] != _MAGIC:
        raise CheckpointError(f"{path}: not a repro checkpoint file")
    (header_len,) = _LEN.unpack_from(blob, len(_MAGIC))
    header_end = len(_MAGIC) + _LEN.size + header_len
    if header_end > len(blob):
        raise CheckpointError(f"{path}: truncated checkpoint header")
    try:
        header = json.loads(blob[len(_MAGIC) + _LEN.size : header_end])
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: corrupt checkpoint header: {exc}") from None
    if header.get("version") != _VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {header.get('version')!r}"
        )
    stored = header.get("fingerprint", {})
    if fingerprint is not None and stored != fingerprint:
        raise CheckpointError(
            f"{path}: checkpoint belongs to a different run "
            "(source/config/detector fingerprint mismatch); "
            "delete it or drop --resume"
        )

    bins: list[tuple[int, bytes | None]] = []
    offset = header_end
    while True:
        if offset + _RECORD.size > len(blob):
            break  # torn or absent record header
        bin_index, length, crc = _RECORD.unpack_from(blob, offset)
        if bin_index != len(bins):
            break  # out of sequence — treat the rest as garbage
        if length < 0:
            if crc != 0:
                break
            bins.append((bin_index, None))
            offset += _RECORD.size
            continue
        start = offset + _RECORD.size
        if start + length > len(blob):
            break  # torn payload
        payload = blob[start : start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break  # corrupt payload
        bins.append((bin_index, payload))
        offset = start + length
    return CheckpointState(
        fingerprint=stored, bins=tuple(bins), end_offset=offset
    )


class CheckpointWriter:
    """Appends closed-bin records to a checkpoint file.

    Fresh runs write magic + header then records; resumed runs reopen
    the existing file, truncate any torn tail back to
    ``resume_from.end_offset``, and continue appending.  Every append
    is flushed so a kill loses at most the in-flight record.
    """

    def __init__(
        self,
        path: str,
        fingerprint: dict,
        resume_from: CheckpointState | None = None,
    ) -> None:
        self.path = str(path)
        self.n_appended = 0
        if resume_from is not None:
            self._fh = open(self.path, "r+b")
            self._fh.truncate(resume_from.end_offset)
            self._fh.seek(resume_from.end_offset)
            self._next_bin = resume_from.next_bin
        else:
            header = json.dumps(
                {"version": _VERSION, "fingerprint": fingerprint},
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
            self._fh = open(self.path, "wb")
            self._fh.write(_MAGIC)
            self._fh.write(_LEN.pack(len(header)))
            self._fh.write(header)
            self._fh.flush()
            self._next_bin = 0

    def append(self, bin_index: int, payload: bytes | None) -> None:
        """Record one closed bin (``None`` payload = gap bin)."""
        if self._fh is None:
            raise CheckpointError(f"{self.path}: writer already closed")
        if bin_index != self._next_bin:
            raise CheckpointError(
                f"{self.path}: bins must be appended in order; "
                f"expected bin {self._next_bin}, got {bin_index}"
            )
        if payload is None:
            self._fh.write(_RECORD.pack(bin_index, -1, 0))
        else:
            crc = zlib.crc32(payload) & 0xFFFFFFFF
            self._fh.write(_RECORD.pack(bin_index, len(payload), crc))
            self._fh.write(payload)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._next_bin = bin_index + 1
        self.n_appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
