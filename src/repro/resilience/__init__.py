"""Fault tolerance for the long-running, distributed deployment.

The paper's Section 8 monitor is meant to run for weeks across many
collection points; this package supplies the machinery that lets the
sharded pipeline (:mod:`repro.cluster`) survive the faults such a
deployment actually sees, without giving up the exact-mode determinism
contract (cluster detections bit-identical to an unsharded run):

* :mod:`repro.resilience.policy` — :class:`ResiliencePolicy`, the
  supervision knobs (bounded retries, exponential backoff, per-bin and
  whole-run deadlines, ``strict``/``degrade`` completion) and
  :class:`ShardHealth`, the per-shard state machine the coordinator
  publishes into report provenance;
* :mod:`repro.resilience.checkpoint` — append-only checkpoint files of
  closed-bin merged summaries (byte-canonical wire payloads, each CRC
  framed) so a killed run resumes from the last closed bin instead of
  bin 0;
* :mod:`repro.resilience.chaos` — a deterministic fault plan (kill a
  shard at a bin, stall its heartbeats, corrupt its summary bytes,
  truncate a trace tail) injected through worker hooks, driving the
  chaos tests and the CI chaos-smoke job.

Everything here is *dormant by default*: the supervisor hooks sit at
message and bin boundaries of the cluster coordinator loop, never on
the streaming hot path, and ``tools/check_perf.py`` gates the cost of
the disabled hooks alongside telemetry's.
"""

from repro.resilience.chaos import Fault, FaultPlan, corrupt_payload, truncate_tail
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointState,
    CheckpointWriter,
    load_checkpoint,
    run_fingerprint,
)
from repro.resilience.policy import ResiliencePolicy, ShardHealth

__all__ = [
    "CheckpointError",
    "CheckpointState",
    "CheckpointWriter",
    "Fault",
    "FaultPlan",
    "ResiliencePolicy",
    "ShardHealth",
    "corrupt_payload",
    "load_checkpoint",
    "run_fingerprint",
    "truncate_tail",
]
