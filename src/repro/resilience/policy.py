"""Supervision policy and per-shard health state.

:class:`ResiliencePolicy` is the one knob bundle the cluster runner's
shard supervisor reads: how many times a failed shard may be restarted,
how the restart delay grows, how long a shard may go without delivering
a bin before it is declared stalled, how long the whole run may take,
and what happens when a shard is out of retries — ``strict`` (raise,
the pre-supervision behaviour) or ``degrade`` (complete the run without
the shard and flag the report).

:class:`ShardHealth` is the supervisor's per-shard state machine::

    running ──fault──▶ restarting ──launch──▶ running
       │                   │
       │ close             │ retries exhausted / run deadline
       ▼                   ▼
     closed              failed  (degrade: remaining bins become gaps)

Its :meth:`ShardHealth.to_meta` rendering lands in the report's
provenance ``meta["shard_health"]`` so a degraded run documents exactly
which shard died, how often it was restarted, and which bins are gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResiliencePolicy", "ShardHealth"]

#: Terminal + transient states a shard moves through under supervision.
SHARD_STATES = ("running", "restarting", "closed", "failed")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the cluster shard supervisor.

    Attributes:
        max_retries: Restarts allowed per shard before it is declared
            failed (0 disables restarts; worker death then follows
            ``on_exhaustion`` immediately).
        backoff_s: Delay before the first restart, seconds.
        backoff_factor: Multiplier applied per subsequent restart
            (exponential backoff).
        backoff_max_s: Ceiling on any single restart delay.
        bin_deadline_s: Straggler deadline — a shard that delivers no
            message for this long (while its worker is alive) is
            treated as stalled and restarted.  None disables.
        run_deadline_s: Whole-run deadline; on expiry the run either
            degrades (remaining shards closed, their missing bins
            becoming gaps) or raises, per ``on_exhaustion``.  None
            disables.
        on_exhaustion: ``"strict"`` raises ``RuntimeError`` when a
            shard is out of retries (or the run deadline expires);
            ``"degrade"`` completes the run without the shard and flags
            the report ``degraded=True``.
    """

    max_retries: int = 2
    backoff_s: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    bin_deadline_s: float | None = None
    run_deadline_s: float | None = None
    on_exhaustion: str = "strict"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.backoff_max_s < 0:
            raise ValueError("backoff knobs must be non-negative (factor >= 1)")
        for name in ("bin_deadline_s", "run_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None to disable)")
        if self.on_exhaustion not in ("strict", "degrade"):
            raise ValueError(
                f"on_exhaustion must be 'strict' or 'degrade', "
                f"not {self.on_exhaustion!r}"
            )

    def backoff(self, restarts: int) -> float:
        """Delay before restart number ``restarts`` (1-based), seconds."""
        if restarts <= 0:
            return 0.0
        return min(
            self.backoff_s * self.backoff_factor ** (restarts - 1),
            self.backoff_max_s,
        )

    @property
    def degrade(self) -> bool:
        """Whether exhaustion degrades instead of raising."""
        return self.on_exhaustion == "degrade"


@dataclass
class ShardHealth:
    """One shard's supervision record (rendered into report meta).

    Attributes:
        shard_id: The shard.
        status: One of ``running | restarting | closed | failed``.
        attempts: Worker launches so far (1 = never restarted).
        restarts: Restarts performed (``attempts - 1``).
        faults: Human-readable fault descriptions, in order.
        gap_bins: Bins this shard never contributed to a merge (only
            populated when the shard fails under a degrade policy).
        n_records: Records the shard's last completed attempt reported.
    """

    shard_id: int
    status: str = "running"
    attempts: int = 1
    restarts: int = 0
    faults: list[str] = field(default_factory=list)
    gap_bins: list[int] = field(default_factory=list)
    n_records: int = 0

    def record_fault(self, reason: str) -> None:
        self.faults.append(str(reason))

    def to_meta(self) -> dict:
        """JSON-safe rendering for report provenance ``meta``."""
        out = {
            "status": self.status,
            "attempts": int(self.attempts),
            "restarts": int(self.restarts),
        }
        if self.faults:
            out["faults"] = list(self.faults)
        if self.gap_bins:
            # Compact contiguous runs: [first, last] inclusive pairs.
            out["gap_bins"] = _runs(self.gap_bins)
        return out


def _runs(bins: list[int]) -> list[list[int]]:
    """Compress a sorted bin list into inclusive [first, last] runs."""
    runs: list[list[int]] = []
    for b in sorted(int(b) for b in bins):
        if runs and b == runs[-1][1] + 1:
            runs[-1][1] = b
        else:
            runs.append([b, b])
    return runs
