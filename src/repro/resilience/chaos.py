"""Deterministic chaos harness for the cluster path.

A :class:`FaultPlan` is a list of :class:`Fault` entries, each pinned to
a (shard, bin, attempt) coordinate, so a chaos run is *reproducible*:
the same plan against the same :class:`~repro.pipeline.sources.SourceSpec`
kills the same worker at the same bin every time.  Plans are built
either explicitly (``kill:shard=1,bin=9``) or from a seed
(``seeded:seed=7,kind=kill``), in which case the coordinates are drawn
from a dedicated ``SeedSequence`` stream — independent of the traffic
seeds, so chaos never perturbs the workload itself.

Fault kinds, all injected at the worker's summary-ship hook (the only
place a worker talks to the coordinator):

* ``kill`` — the worker process dies hard (``os._exit``) *before*
  shipping the bin, as if the machine lost power mid-bin.
* ``stall`` — the worker sleeps ``secs`` before shipping, simulating a
  straggler; with a ``bin_deadline_s`` policy the supervisor restarts it.
* ``corrupt`` — the summary payload is bit-flipped in transit; the
  coordinator's wire CRC rejects it and the supervisor retries the
  shard instead of merging garbage.
* ``exit-after-close`` — the worker exits with a non-zero code *after*
  its ``close`` message is queued, reproducing the liveness race where
  a dead-but-finished worker must not be misreported as a crash.

``attempts`` bounds how many worker attempts a fault fires on (default
1: fire on the first attempt only, so the restarted shard succeeds).
:func:`truncate_tail` is the trace-side fault, used by tests and the CI
chaos-smoke job against the columnar trace store.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["Fault", "FaultPlan", "corrupt_payload", "truncate_tail"]

FAULT_KINDS = ("kill", "stall", "corrupt", "exit-after-close")

#: Domain-separation constant for the chaos RNG stream (never mixes
#: with traffic seeds, which derive from SourceSpec.seed).
_CHAOS_DOMAIN = 0x5EED


@dataclass(frozen=True)
class Fault:
    """One injected fault, pinned to a (shard, bin, attempt) coordinate.

    Attributes:
        kind: One of ``kill | stall | corrupt | exit-after-close``.
        shard: Target shard id.
        bin: Bin index at whose ship-point the fault fires
            (ignored for ``exit-after-close``, which fires at close).
        secs: Sleep length for ``stall``.
        attempts: Fire while the worker's attempt number is below this
            (1 = first attempt only, so a restart succeeds; larger
            values exhaust retries deterministically).
    """

    kind: str
    shard: int
    bin: int = -1
    secs: float = 0.0
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ValueError("fault shard must be >= 0")
        if self.attempts < 1:
            raise ValueError("fault attempts must be >= 1")
        if self.kind == "stall" and self.secs <= 0:
            raise ValueError("stall fault needs secs > 0")

    def fires(self, shard: int, bin_index: int, attempt: int) -> bool:
        """Whether this fault fires at the given ship coordinate."""
        return (
            self.kind != "exit-after-close"
            and shard == self.shard
            and bin_index == self.bin
            and attempt < self.attempts
        )

    def fires_at_close(self, shard: int, attempt: int) -> bool:
        """Whether this fault fires at the worker's close point."""
        return (
            self.kind == "exit-after-close"
            and shard == self.shard
            and attempt < self.attempts
        )


@dataclass(frozen=True)
class _SeededEntry:
    """A fault whose coordinates are drawn at resolve() time."""

    seed: int
    kind: str = "kill"
    count: int = 1
    attempts: int = 1
    secs: float = 0.5


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults for one cluster run.

    Built from a ``--chaos`` spec string: semicolon-separated entries,
    each ``kind:key=value,key=value``::

        kill:shard=1,bin=9
        stall:shard=0,bin=4,secs=2
        corrupt:shard=2,bin=5,attempts=3
        exit-after-close:shard=1
        seeded:seed=7,kind=kill,count=2

    ``seeded`` entries expand into concrete faults only once the run's
    geometry is known, via :meth:`resolve`.
    """

    faults: tuple[Fault, ...] = ()
    seeded: tuple[_SeededEntry, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--chaos`` spec string into a plan."""
        faults: list[Fault] = []
        seeded: list[_SeededEntry] = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            kind, _, rest = entry.partition(":")
            kind = kind.strip()
            kwargs: dict[str, str] = {}
            if rest.strip():
                for pair in rest.split(","):
                    key, sep, value = pair.partition("=")
                    if not sep:
                        raise ValueError(
                            f"bad chaos entry {entry!r}: expected key=value, "
                            f"got {pair!r}"
                        )
                    kwargs[key.strip()] = value.strip()
            try:
                if kind == "seeded":
                    seeded.append(
                        _SeededEntry(
                            seed=int(kwargs.pop("seed")),
                            kind=kwargs.pop("kind", "kill"),
                            count=int(kwargs.pop("count", 1)),
                            attempts=int(kwargs.pop("attempts", 1)),
                            secs=float(kwargs.pop("secs", 0.5)),
                        )
                    )
                else:
                    faults.append(
                        Fault(
                            kind=kind,
                            shard=int(kwargs.pop("shard")),
                            bin=int(kwargs.pop("bin", -1)),
                            secs=float(kwargs.pop("secs", 0.0)),
                            attempts=int(kwargs.pop("attempts", 1)),
                        )
                    )
            except KeyError as exc:
                raise ValueError(
                    f"chaos entry {entry!r} is missing required key {exc}"
                ) from None
            if kwargs:
                raise ValueError(
                    f"chaos entry {entry!r} has unknown keys {sorted(kwargs)}"
                )
        if not faults and not seeded:
            raise ValueError(f"chaos spec {spec!r} contains no faults")
        return cls(faults=tuple(faults), seeded=tuple(seeded))

    def resolve(self, n_shards: int, n_bins: int) -> "FaultPlan":
        """Expand seeded entries into concrete faults for this geometry.

        The draw uses a dedicated SeedSequence stream so the same spec
        and geometry always produce the same faults, and the traffic
        RNG is untouched.  Bins are drawn from the middle 80% of the
        run so a fault never lands trivially at the very first or very
        last bin.
        """
        if not self.seeded:
            return self
        faults = list(self.faults)
        for entry in self.seeded:
            rng = np.random.default_rng(
                np.random.SeedSequence([_CHAOS_DOMAIN, entry.seed])
            )
            lo = max(1, n_bins // 10)
            hi = max(lo + 1, n_bins - n_bins // 10)
            for _ in range(entry.count):
                faults.append(
                    Fault(
                        kind=entry.kind,
                        shard=int(rng.integers(0, n_shards)),
                        bin=int(rng.integers(lo, hi)),
                        secs=entry.secs if entry.kind == "stall" else 0.0,
                        attempts=entry.attempts,
                    )
                )
        return replace(self, faults=tuple(faults), seeded=())

    def fault_for(self, shard: int, bin_index: int, attempt: int) -> Fault | None:
        """First fault firing at this ship coordinate, if any."""
        for fault in self.faults:
            if fault.fires(shard, bin_index, attempt):
                return fault
        return None

    def close_fault(self, shard: int, attempt: int) -> Fault | None:
        """Fault firing at this shard's close point, if any."""
        for fault in self.faults:
            if fault.fires_at_close(shard, attempt):
                return fault
        return None


def corrupt_payload(payload: bytes) -> bytes:
    """Flip one bit in the middle of a wire payload.

    The midpoint of any ShardBinSummary payload is well inside the
    CRC-covered region (past both the v2 frame and the v1 header), so
    the coordinator's checksum is guaranteed to catch the damage.
    """
    if not payload:
        return payload
    out = bytearray(payload)
    out[len(out) // 2] ^= 0x40
    return bytes(out)


def truncate_tail(path: str, n_bytes: int) -> int:
    """Chop ``n_bytes`` off the end of a file; returns the new size.

    The trace-store fault: simulates a capture cut off mid-write, for
    exercising ``TraceReader(allow_partial=True)`` recovery.
    """
    import os

    size = os.path.getsize(path)
    new_size = max(0, size - int(n_bytes))
    os.truncate(path, new_size)
    return new_size
