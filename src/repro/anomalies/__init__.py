"""Anomaly zoo: Table-1 anomaly types, thinning, splitting, injection."""

from repro.anomalies.base import AnomalyTrace, FeatureContribution, OutageEvent
from repro.anomalies.builders import (
    BUILDERS,
    alpha_flow,
    ddos,
    dos_single,
    flash_crowd,
    known_traces,
    network_scan,
    point_multipoint,
    port_scan,
    worm_scan,
)
from repro.anomalies.injector import (
    InjectionScorer,
    combined_counts,
    inject_outage,
    inject_trace,
    injected_bin_state,
    outage_bin_state,
)

__all__ = [
    "AnomalyTrace",
    "FeatureContribution",
    "OutageEvent",
    "BUILDERS",
    "alpha_flow",
    "ddos",
    "dos_single",
    "flash_crowd",
    "known_traces",
    "network_scan",
    "point_multipoint",
    "port_scan",
    "worm_scan",
    "InjectionScorer",
    "combined_counts",
    "inject_outage",
    "inject_trace",
    "injected_bin_state",
    "outage_bin_state",
]
