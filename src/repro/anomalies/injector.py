"""Superimposing anomalies onto synthetic traffic cubes.

The injector combines an :class:`AnomalyTrace` with the *exact*
background histogram of a target (OD flow, bin) — regenerated
deterministically by the traffic generator — and recomputes the bin's
entropies and volume counters.  Outages apply their multiplicative dip
instead.

Two usage patterns:

* :func:`inject_trace` / :func:`inject_outage` — modify a cube copy in
  place for one event; used when building labeled datasets.
* :class:`InjectionScorer` — the fast path for the paper's injection
  sweeps (Figures 5 and 6): fit detectors once on the clean cube, then
  score thousands of hypothetical injections by recomputing only the
  target row.  See DESIGN.md for the fixed-subspace note.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomalies.base import AnomalyTrace, OutageEvent
from repro.core.entropy import sample_entropy
from repro.core.multiway import MultiwaySubspaceDetector
from repro.core.subspace import SubspaceDetector
from repro.flows.features import N_FEATURES
from repro.flows.odflows import TrafficCube
from repro.traffic.generator import TrafficGenerator

__all__ = [
    "combined_counts",
    "injected_bin_state",
    "outage_bin_state",
    "inject_trace",
    "inject_outage",
    "InjectionScorer",
]


def combined_counts(background: np.ndarray, contribution) -> np.ndarray:
    """Background histogram + one feature's anomaly contribution.

    Background ranks beyond the histogram's length are treated as novel
    values (the background sample happened not to contain them).
    """
    out = np.asarray(background, dtype=np.int64).copy()
    overflow = []
    for rank, count in contribution.on_background.items():
        if rank < len(out):
            out[rank] += count
        else:
            overflow.append(count)
    parts = [out, contribution.novel]
    if overflow:
        parts.append(np.array(overflow, dtype=np.int64))
    return np.concatenate(parts)


def injected_bin_state(
    background_histograms: tuple[np.ndarray, ...],
    background_packets: float,
    background_bytes: float,
    trace: AnomalyTrace,
) -> tuple[np.ndarray, float, float]:
    """Entropy 4-vector and volumes of a bin after injecting ``trace``."""
    entropy = np.empty(N_FEATURES)
    for k in range(N_FEATURES):
        counts = combined_counts(background_histograms[k], trace.contributions[k])
        entropy[k] = sample_entropy(counts)
    return (
        entropy,
        background_packets + trace.packets,
        background_bytes + trace.bytes,
    )


def outage_bin_state(
    background_histograms: tuple[np.ndarray, ...],
    background_bytes: float,
    outage,
    background_packets: float | None = None,
) -> tuple[np.ndarray, float, float]:
    """Entropy 4-vector and volumes of a bin under a multiplicative event.

    ``outage`` is any object with ``apply_to_counts`` —
    :class:`repro.anomalies.base.OutageEvent` (traffic dip) or
    :class:`repro.anomalies.base.TrafficSurge` (uniform scale-up).

    The histograms live on the *sampled* packet scale while the cube's
    volume counters are pre-sampling, so the multiplicative factor is
    measured on the histograms (scale-invariant) and applied to the
    supplied volumes.  When ``background_packets`` is omitted the
    sampled histogram mass itself is scaled (legacy behaviour for
    histogram-only callers).
    """
    entropy = np.empty(N_FEATURES)
    new_mass = 0.0
    old_mass = 0.0
    for k in range(N_FEATURES):
        counts = outage.apply_to_counts(background_histograms[k])
        entropy[k] = sample_entropy(counts)
        new_mass += counts.sum()
        old_mass += background_histograms[k].sum()
    factor = new_mass / old_mass if old_mass else 0.0
    if background_packets is None:
        background_packets = old_mass / N_FEATURES
    return entropy, background_packets * factor, background_bytes * factor


def inject_trace(
    cube: TrafficCube,
    generator: TrafficGenerator,
    od: int,
    b: int,
    trace: AnomalyTrace,
    sampled: bool = True,
) -> None:
    """Inject one trace into ``cube`` (modified in place) at (od, bin).

    Args:
        sampled: When True (default), the anomaly is real traffic: its
            packets pass through the network's flow sampling before
            reaching the histograms (thinned by the generator's
            sampling factor), while volume counters grow by the full
            packet count.  ``sampled=False`` reproduces the paper's
            injection protocol — unsampled attack packets superimposed
            directly on the sampled background histograms.
    """
    stream = generator.od_stream(od)
    hists = tuple(h[b] for h in stream.histograms)
    sampling = generator.histogram_sampling
    hist_trace = trace
    if sampled and sampling > 1:
        hist_trace = trace.thin(sampling, seed=b)
    entropy, _, _ = injected_bin_state(hists, 0.0, 0.0, hist_trace)
    cube.entropy[b, od, :] = entropy
    cube.packets[b, od] += trace.packets
    cube.bytes[b, od] += trace.bytes


def inject_outage(
    cube: TrafficCube,
    generator: TrafficGenerator,
    ods: list[int],
    b: int,
    outage: OutageEvent,
) -> None:
    """Apply an outage to several OD flows at bin ``b`` (in place).

    Real outages hit all OD flows sharing the failed equipment, so the
    natural argument is ``router.link_load_ods(link)``.
    """
    for od in ods:
        stream = generator.od_stream(od)
        hists = tuple(h[b] for h in stream.histograms)
        entropy, packets, byte_count = outage_bin_state(
            hists, cube.bytes[b, od], outage, background_packets=cube.packets[b, od]
        )
        cube.entropy[b, od, :] = entropy
        cube.packets[b, od] = packets
        cube.bytes[b, od] = byte_count


@dataclass
class ScoreOutcome:
    """Detection outcome for one hypothetical injection."""

    detected_volume: bool
    detected_entropy: bool
    spe_entropy: float
    spe_bytes: float
    spe_packets: float

    @property
    def detected_any(self) -> bool:
        """Detected by volume or entropy (the paper's combined curve)."""
        return self.detected_volume or self.detected_entropy


class InjectionScorer:
    """Fast scoring of injections against detectors fit on clean traffic.

    Fits three detectors on the clean cube — multiway entropy, bytes
    subspace, packets subspace — then evaluates hypothetical injections
    by recomputing a single bin's state and projecting the modified
    observation onto the frozen residual subspaces.  This keeps the
    cost of one scored injection at O(p·m) instead of a full refit.

    Injection follows the *paper's protocol*: anomaly packets extracted
    from unsampled traces are superimposed directly onto the sampled
    background histograms (Section 6.3.1 — traces are thinned to vary
    intensity, not sampled).  Real in-network anomalies are handled by
    :func:`inject_trace` / the dataset scheduler, which sample the
    anomaly like any other traffic.
    """

    def __init__(
        self,
        cube: TrafficCube,
        generator: TrafficGenerator,
        n_components: int | None = 10,
        alphas: tuple[float, ...] = (0.999, 0.995),
    ) -> None:
        self.cube = cube
        self.generator = generator
        self.alphas = alphas
        self.entropy_detector = MultiwaySubspaceDetector(
            n_components=n_components, identify=False
        ).fit(cube.entropy)
        self.bytes_detector = SubspaceDetector(n_components=n_components).fit(cube.bytes)
        self.packets_detector = SubspaceDetector(n_components=n_components).fit(
            cube.packets
        )
        self._thresholds = {
            alpha: (
                self.entropy_detector.model.threshold(alpha),
                self.bytes_detector.model.threshold(alpha),
                self.packets_detector.model.threshold(alpha),
            )
            for alpha in alphas
        }
        # Histogram rows for (od, bin) pairs already visited: sweeps
        # revisit the same bin for every OD and thinning factor, and a
        # cached row avoids regenerating the OD's full stream each time.
        self._hist_cache: dict[tuple[int, int], tuple[np.ndarray, ...]] = {}

    def _hists(self, od: int, b: int) -> tuple[np.ndarray, ...]:
        key = (od, b)
        hists = self._hist_cache.get(key)
        if hists is None:
            stream = self.generator.od_stream(od)
            hists = tuple(h[b].copy() for h in stream.histograms)
            self._hist_cache[key] = hists
        return hists

    def _bin_states(
        self, b: int, injections: list[tuple[int, AnomalyTrace]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Modified (entropy row, packets row, bytes row) for bin ``b``."""
        entropy_row = self.cube.entropy[b].copy()
        packets_row = self.cube.packets[b].copy()
        bytes_row = self.cube.bytes[b].copy()
        for od, trace in injections:
            hists = self._hists(od, b)
            entropy, packets, byte_count = injected_bin_state(
                hists, packets_row[od], bytes_row[od], trace
            )
            entropy_row[od] = entropy
            packets_row[od] = packets
            bytes_row[od] = byte_count
        return entropy_row, packets_row, bytes_row

    def score(
        self,
        b: int,
        injections: list[tuple[int, AnomalyTrace]],
        alpha: float = 0.999,
    ) -> ScoreOutcome:
        """Score a set of simultaneous injections at bin ``b``.

        Args:
            b: Target bin.
            injections: ``[(od, trace), ...]`` — one entry for single-OD
                experiments, k entries for the multi-OD DDOS sweeps.
            alpha: Detection confidence level (must be one of the
                configured ``alphas``).
        """
        if alpha not in self._thresholds:
            raise ValueError(f"alpha {alpha} not configured")
        thr_entropy, thr_bytes, thr_packets = self._thresholds[alpha]
        entropy_row, packets_row, bytes_row = self._bin_states(b, injections)
        spe_entropy = float(
            self.entropy_detector.score(entropy_row[None, :, :]).spe[0]
        )
        spe_bytes = float(self.bytes_detector.model.spe(bytes_row[None, :])[0])
        spe_packets = float(self.packets_detector.model.spe(packets_row[None, :])[0])
        return ScoreOutcome(
            detected_volume=(spe_bytes > thr_bytes) or (spe_packets > thr_packets),
            detected_entropy=spe_entropy > thr_entropy,
            spe_entropy=spe_entropy,
            spe_bytes=spe_bytes,
            spe_packets=spe_packets,
        )

    def entropy_vector(
        self, b: int, od: int, trace: AnomalyTrace
    ) -> np.ndarray:
        """Residual-entropy displacement of one injection (for Fig. 7).

        Returns the injected bin's normalised residual restricted to the
        target OD flow's four coordinates — the anomaly's position in
        entropy space.
        """
        entropy_row, _, _ = self._bin_states(b, [(od, trace)])
        det = self.entropy_detector
        Hn = det._normalize(entropy_row[None, :, :])
        residual = det.model.residual(Hn)[0]
        p = det.n_od_flows
        return residual[[od + p * k for k in range(N_FEATURES)]]
