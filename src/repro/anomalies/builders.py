"""Parametric builders for every anomaly type in the paper's Table 1.

Each builder returns an :class:`repro.anomalies.base.AnomalyTrace`
whose feature structure matches the paper's description of the type
(Table 1 qualitative effects, Table 6 entropy-space locations, Section
7.3.2 prose).  Intensities are given in packets/second over a 300 s bin
so the paper's Table-4 trace intensities can be replayed exactly
(:func:`known_traces`).

Feature structure summary (C = concentrated, D = dispersed, - = typical):

    type              srcIP  srcPort  dstIP  dstPort
    alpha             C      C        C      C
    alpha (NAT)       C      D        C      D
    dos (single src)  C      D        C      C
    ddos              D      D        C      C
    flash crowd       D(real)D        C      C(web)
    port scan v1      C      D        C      D(big)
    port scan v2      C      C        C      D(big)
    network scan      C      D(incr)  D(big) C
    worm              C      D(incr)  D(big) C (special case of net scan)
    point->multipoint C      C        D      D
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import AnomalyTrace, FeatureContribution
from repro.flows.binning import BIN_SECONDS
from repro.traffic.distributions import zipf_pmf

__all__ = [
    "alpha_flow",
    "dos_single",
    "ddos",
    "flash_crowd",
    "port_scan",
    "network_scan",
    "worm_scan",
    "point_multipoint",
    "known_traces",
    "BUILDERS",
]


def _packets(pps: float, duration: float) -> int:
    total = int(round(pps * duration))
    if total < 1:
        raise ValueError("anomaly must contain at least one packet")
    return total


def _spread(
    total: int, n_values: int, rng: np.random.Generator, alpha: float = 0.0
) -> np.ndarray:
    """Distribute ``total`` packets over ``n_values`` novel values."""
    if n_values < 1:
        raise ValueError("n_values must be >= 1")
    n_values = min(n_values, total) or 1
    pmf = zipf_pmf(n_values, alpha)
    return rng.multinomial(total, pmf).astype(np.int64)


def _single(total: int) -> FeatureContribution:
    """All packets on one novel value."""
    return FeatureContribution(novel=np.array([total], dtype=np.int64))


def _on_bg(total: int, rank: int) -> FeatureContribution:
    """All packets on one existing background value (e.g. a victim)."""
    return FeatureContribution(on_background={rank: total})


def _trace(label, src_ip, src_port, dst_ip, dst_port, packets, avg_bytes, meta):
    return AnomalyTrace(
        label=label,
        contributions=(src_ip, src_port, dst_ip, dst_port),
        packets=packets,
        bytes=int(round(packets * avg_bytes)),
        meta=meta,
    )


def alpha_flow(
    rng: np.random.Generator,
    pps: float = 20_000.0,
    duration: float = BIN_SECONDS,
    nat: bool = False,
    n_nat_ports: int = 64,
    packet_size: float = 1200.0,
) -> AnomalyTrace:
    """Unusually large point-to-point flow (e.g. bandwidth tests).

    ``nat=True`` produces the paper's cluster-7 variant discovered via
    clustering: a NAT box on the path stripes the flow across many
    ports, dispersing both port features while addresses stay
    concentrated.
    """
    total = _packets(pps, duration)
    if nat:
        src_port = FeatureContribution(novel=_spread(total, n_nat_ports, rng, 0.2))
        dst_port = FeatureContribution(novel=_spread(total, n_nat_ports, rng, 0.2))
        variant = "nat"
    else:
        src_port = _single(total)
        dst_port = _single(total)
        variant = "plain"
    return _trace(
        "alpha",
        _single(total),
        src_port,
        _single(total),
        dst_port,
        total,
        packet_size,
        {"pps": pps, "variant": variant},
    )


def dos_single(
    rng: np.random.Generator,
    pps: float = 3.47e5,
    duration: float = BIN_SECONDS,
    victim_rank: int = 2,
    n_src_ports: int = 128,
    target_port_rank: int = 1,
    packet_size: float = 60.0,
) -> AnomalyTrace:
    """Single-source bandwidth DOS (paper's Los Nettos trace, 3.47e5 pps).

    One attacking host floods one existing victim; source ports are
    random per packet (typical of flooding tools), the destination port
    is a single existing service port.
    """
    total = _packets(pps, duration)
    return _trace(
        "dos",
        _single(total),
        FeatureContribution(novel=_spread(total, n_src_ports, rng)),
        _on_bg(total, victim_rank),
        _on_bg(total, target_port_rank),
        total,
        packet_size,
        {"pps": pps, "victim_rank": victim_rank},
    )


def ddos(
    rng: np.random.Generator,
    pps: float = 2.75e4,
    duration: float = BIN_SECONDS,
    n_sources: int = 500,
    victim_rank: int = 2,
    n_src_ports: int = 256,
    target_port_rank: int = 1,
    packet_size: float = 60.0,
) -> AnomalyTrace:
    """Multi-source (distributed) DOS (paper's trace, 2.75e4 pps).

    Many spoofed/zombie sources converge on one victim: source address
    entropy rises, destination address entropy collapses.
    """
    total = _packets(pps, duration)
    return _trace(
        "ddos",
        FeatureContribution(novel=_spread(total, n_sources, rng, 0.3)),
        FeatureContribution(novel=_spread(total, n_src_ports, rng)),
        _on_bg(total, victim_rank),
        _on_bg(total, target_port_rank),
        total,
        packet_size,
        {"pps": pps, "n_sources": n_sources, "victim_rank": victim_rank},
    )


def flash_crowd(
    rng: np.random.Generator,
    pps: float = 5_000.0,
    duration: float = BIN_SECONDS,
    n_sources: int = 300,
    victim_rank: int = 1,
    web_port_rank: int = 0,
    packet_size: float = 700.0,
) -> AnomalyTrace:
    """Flash crowd: a legitimate burst to one destination service.

    Sources follow a "typical" (Zipf-ish, non-spoofed) popularity
    profile; traffic converges on an existing destination at a
    well-known port (rank 0 = the heaviest service port, e.g. 80).
    """
    total = _packets(pps, duration)
    return _trace(
        "flash_crowd",
        FeatureContribution(novel=_spread(total, n_sources, rng, 1.0)),
        FeatureContribution(novel=_spread(total, max(n_sources // 2, 8), rng, 0.2)),
        _on_bg(total, victim_rank),
        _on_bg(total, web_port_rank),
        total,
        packet_size,
        {"pps": pps, "n_sources": n_sources},
    )


def port_scan(
    rng: np.random.Generator,
    pps: float = 150.0,
    duration: float = BIN_SECONDS,
    n_ports: int = 1500,
    victim_rank: int = 4,
    dispersed_src_ports: bool = True,
    packet_size: float = 40.0,
) -> AnomalyTrace:
    """Port scan: probe many destination ports on one host.

    Two styles, both found by the paper's clustering (clusters 3 & 4):
    ``dispersed_src_ports=True`` listens on many source ports (stealth),
    ``False`` uses one source port.
    """
    total = _packets(pps, duration)
    if dispersed_src_ports:
        src_port = FeatureContribution(novel=_spread(total, total, rng))
        variant = "dispersed_src_ports"
    else:
        src_port = _single(total)
        variant = "single_src_port"
    return _trace(
        "port_scan",
        _single(total),
        src_port,
        _on_bg(total, victim_rank),
        FeatureContribution(novel=_spread(total, n_ports, rng)),
        total,
        packet_size,
        {"pps": pps, "n_ports": n_ports, "variant": variant},
    )


def network_scan(
    rng: np.random.Generator,
    pps: float = 150.0,
    duration: float = BIN_SECONDS,
    n_targets: int = 2000,
    service_port_rank: int = 11,
    packet_size: float = 40.0,
    label: str = "network_scan",
) -> AnomalyTrace:
    """Network scan: probe one port across many destination hosts.

    Source ports increment per probe (the paper observes exactly this),
    so source-port entropy disperses strongly; the destination port is
    a single service (rank 11 = port 1433 / MS-SQL in the default port
    table — the Snake-worm target the paper identified).
    """
    total = _packets(pps, duration)
    return _trace(
        label,
        _single(total),
        FeatureContribution(novel=_spread(total, total, rng)),  # incrementing
        FeatureContribution(novel=_spread(total, n_targets, rng)),
        _on_bg(total, service_port_rank),
        total,
        packet_size,
        {"pps": pps, "n_targets": n_targets, "port_rank": service_port_rank},
    )


def worm_scan(
    rng: np.random.Generator,
    pps: float = 141.0,
    duration: float = BIN_SECONDS,
    n_targets: int = 3000,
    service_port_rank: int = 11,
    packet_size: float = 404.0,
) -> AnomalyTrace:
    """Worm scanning for vulnerable hosts (paper's Utah trace, 141 pps).

    A special case of a network scan (Table 1); kept as a distinct
    label because the paper injects and clusters it separately.
    """
    return network_scan(
        rng,
        pps=pps,
        duration=duration,
        n_targets=n_targets,
        service_port_rank=service_port_rank,
        packet_size=packet_size,
        label="worm",
    )


def point_multipoint(
    rng: np.random.Generator,
    pps: float = 800.0,
    duration: float = BIN_SECONDS,
    n_destinations: int = 400,
    n_ports: int = 300,
    packet_size: float = 900.0,
) -> AnomalyTrace:
    """Point-to-multipoint: one source distributing to many receivers.

    Content distribution / peer-to-peer / trojan activity: concentrated
    source, widely dispersed destination addresses *and* ports.
    """
    total = _packets(pps, duration)
    return _trace(
        "point_multipoint",
        _single(total),
        _single(total),
        FeatureContribution(novel=_spread(total, n_destinations, rng, 0.2)),
        FeatureContribution(novel=_spread(total, n_ports, rng, 0.2)),
        total,
        packet_size,
        {"pps": pps, "n_destinations": n_destinations},
    )


#: Builder registry by label (used by the dataset scheduler).
BUILDERS = {
    "alpha": alpha_flow,
    "dos": dos_single,
    "ddos": ddos,
    "flash_crowd": flash_crowd,
    "port_scan": port_scan,
    "network_scan": network_scan,
    "worm": worm_scan,
    "point_multipoint": point_multipoint,
}


def known_traces(seed: int = 0) -> dict[str, AnomalyTrace]:
    """The paper's Table-4 injected traces at their documented intensities.

    Returns:
        ``{"dos": 3.47e5 pps single-source DOS,
           "ddos": 2.75e4 pps multi-source DDOS,
           "worm": 141 pps worm scan}``.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 99]))
    return {
        "dos": dos_single(rng, pps=3.47e5),
        "ddos": ddos(rng, pps=2.75e4),
        "worm": worm_scan(rng, pps=141.0),
    }
