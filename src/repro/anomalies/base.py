"""Anomaly traces: the objects the injector superimposes on traffic.

An :class:`AnomalyTrace` describes the packets an anomaly adds to one
(OD flow, bin): for each of the four traffic features it records how
the anomaly's packets distribute over feature values.  Values come in
two kinds:

* **background ranks** — the anomaly touches a value that already
  exists in the target OD flow's traffic (e.g. a DOS victim is an
  existing host).  Stored as ``{rank: packet_count}``.
* **novel values** — values the background does not contain (spoofed
  sources, scanned ports...).  Stored as a count array; the injector
  appends them to the background histogram.

This mirrors the paper's injection methodology: attack packets from the
Los Nettos / Utah traces were remapped onto addresses and ports seen in
the Abilene data (background ranks) or onto fresh values, then
superimposed.  Thinning (``thin``) reproduces the paper's 1-in-N packet
selection, and ``split_by_sources`` reproduces the k-way DDOS split
across origin PoPs used in the multi-OD-flow experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.entropy import sample_entropy
from repro.flows.features import FEATURES, N_FEATURES
from repro.flows.sampling import thin_counts

__all__ = ["FeatureContribution", "AnomalyTrace", "OutageEvent", "TrafficSurge"]


@dataclass
class FeatureContribution:
    """How an anomaly's packets distribute over one feature.

    Attributes:
        on_background: ``{background_rank: packets}`` for values shared
            with the target OD flow.
        novel: Packet counts over values absent from the background.
    """

    on_background: dict[int, int] = field(default_factory=dict)
    novel: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def __post_init__(self) -> None:
        self.novel = np.asarray(self.novel, dtype=np.int64)
        if np.any(self.novel < 0):
            raise ValueError("novel counts must be non-negative")
        for rank, count in self.on_background.items():
            if rank < 0 or count < 0:
                raise ValueError("background contributions must be non-negative")

    @property
    def total(self) -> int:
        """Total packets this feature view accounts for."""
        return int(sum(self.on_background.values()) + self.novel.sum())

    @property
    def n_values(self) -> int:
        """Distinct feature values touched (nonzero entries)."""
        return len([c for c in self.on_background.values() if c > 0]) + int(
            (self.novel > 0).sum()
        )

    def thin(self, factor: int, rng: np.random.Generator) -> "FeatureContribution":
        """Thin to ~1/factor of the packets (paper's trace thinning)."""
        novel = thin_counts(self.novel, factor, rng)
        on_bg = {}
        for rank, count in self.on_background.items():
            thinned = int(thin_counts(np.array([count]), factor, rng)[0])
            if thinned:
                on_bg[rank] = thinned
        return FeatureContribution(on_background=on_bg, novel=novel)

    def scale_to(self, new_total: int, rng: np.random.Generator) -> "FeatureContribution":
        """Resample the contribution to a different total packet count.

        Used when splitting a trace: a sub-trace carrying a share of the
        packets keeps the *shape* of the other features' distributions.
        """
        old_total = self.total
        if new_total < 0:
            raise ValueError("new_total must be non-negative")
        if old_total == 0 or new_total == 0:
            return FeatureContribution()
        bg_items = list(self.on_background.items())
        weights = np.array(
            [c for _, c in bg_items] + list(self.novel), dtype=np.float64
        )
        drawn = rng.multinomial(new_total, weights / weights.sum())
        on_bg = {
            rank: int(n)
            for (rank, _), n in zip(bg_items, drawn[: len(bg_items)])
            if n > 0
        }
        novel = drawn[len(bg_items):].astype(np.int64)
        return FeatureContribution(on_background=on_bg, novel=novel)

    def standalone_entropy(self) -> float:
        """Entropy of the anomaly's own packets (ignoring background)."""
        counts = np.concatenate(
            [np.array(list(self.on_background.values()), dtype=np.int64), self.novel]
        )
        return sample_entropy(counts)


@dataclass
class AnomalyTrace:
    """A complete anomaly: per-feature contributions + volume.

    Attributes:
        label: Anomaly type (one of
            :data:`repro.core.classify.ANOMALY_LABELS`).
        contributions: One :class:`FeatureContribution` per feature in
            :data:`repro.flows.features.FEATURES` order.
        packets: Total anomaly packets in the bin.
        bytes: Total anomaly bytes.
        meta: Free-form details (variant, victim rank, pps, ...).
    """

    label: str
    contributions: tuple[FeatureContribution, ...]
    packets: int
    bytes: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.contributions) != N_FEATURES:
            raise ValueError(f"need {N_FEATURES} feature contributions")
        if self.packets < 0 or self.bytes < 0:
            raise ValueError("volume must be non-negative")

    def contribution(self, feature: int | str) -> FeatureContribution:
        """Contribution for a feature by index or name."""
        if isinstance(feature, str):
            feature = FEATURES.index(feature)
        return self.contributions[feature]

    @property
    def pps(self) -> float:
        """Packets per second assuming a 300 s bin."""
        return self.packets / 300.0

    def thin(self, factor: int, seed: int = 0) -> "AnomalyTrace":
        """Thinned copy: keep ~1/factor of the packets everywhere.

        Deterministic for a given ``(trace, factor, seed)``.
        """
        if factor == 1:
            return self
        rng = np.random.default_rng(np.random.SeedSequence([seed, factor]))
        contribs = tuple(c.thin(factor, rng) for c in self.contributions)
        packets = int(thin_counts(np.array([self.packets]), factor, rng)[0])
        with np.errstate(invalid="ignore"):
            ratio = packets / self.packets if self.packets else 0.0
        return AnomalyTrace(
            label=self.label,
            contributions=contribs,
            packets=packets,
            bytes=int(round(self.bytes * ratio)),
            meta={**self.meta, "thinning": factor},
        )

    def split_by_sources(self, k: int, seed: int = 0) -> list["AnomalyTrace"]:
        """Split into ``k`` sub-traces partitioning the novel sources.

        Reproduces the paper's multi-OD-flow DDOS construction: source
        IPs are uniquely mapped onto k origin PoPs "so that each of the
        k groups has roughly the same amount of traffic".  Other
        features are resampled proportionally to each group's share.
        """
        src = self.contribution("src_ip")
        n_sources = len(src.novel)
        if k < 1 or k > max(n_sources, 1):
            raise ValueError(f"cannot split {n_sources} sources into {k} groups")
        if k == 1:
            return [self]
        rng = np.random.default_rng(np.random.SeedSequence([seed, k, 7]))
        order = np.argsort(src.novel)[::-1]  # heaviest first
        group_of = np.zeros(n_sources, dtype=np.int64)
        loads = np.zeros(k)
        for idx in order:  # greedy balanced partition
            g = int(np.argmin(loads))
            group_of[idx] = g
            loads[g] += src.novel[idx]
        traces = []
        for g in range(k):
            member_mask = group_of == g
            novel = np.where(member_mask, src.novel, 0)
            group_packets = int(novel.sum())
            share = group_packets / max(self.packets, 1)
            src_contrib = FeatureContribution(
                on_background=dict(src.on_background) if g == 0 else {},
                novel=novel[member_mask],
            )
            group_total = src_contrib.total
            contribs = []
            for f, contrib in enumerate(self.contributions):
                if FEATURES[f] == "src_ip":
                    contribs.append(src_contrib)
                else:
                    contribs.append(contrib.scale_to(group_total, rng))
            traces.append(
                AnomalyTrace(
                    label=self.label,
                    contributions=tuple(contribs),
                    packets=group_total,
                    bytes=int(round(self.bytes * share)),
                    meta={**self.meta, "split": k, "group": g},
                )
            )
        return traces


@dataclass(frozen=True)
class OutageEvent:
    """A traffic dip: equipment failure or maintenance.

    Unlike additive anomalies, an outage *removes* traffic.  The model:
    the heaviest ``head_ranks`` feature values (the big flows that were
    rerouted or lost) keep only ``head_survival`` of their packets,
    while the tail keeps ``tail_survival``.  Killing the head disperses
    the remaining distribution — reproducing the paper's observation
    that outages show *unusually dispersed* addresses (Table 6) — and
    the total volume dips sharply.
    """

    head_ranks: int = 10
    head_survival: float = 0.02
    tail_survival: float = 0.6
    label: str = "outage"

    def __post_init__(self) -> None:
        if not 0 <= self.head_survival <= 1 or not 0 <= self.tail_survival <= 1:
            raise ValueError("survival fractions must be in [0, 1]")
        if self.head_ranks < 0:
            raise ValueError("head_ranks must be non-negative")

    def apply_to_counts(self, counts: np.ndarray) -> np.ndarray:
        """Apply the dip to one feature histogram (rank-ordered)."""
        out = counts.astype(np.float64).copy()
        h = min(self.head_ranks, len(out))
        out[:h] *= self.head_survival
        out[h:] *= self.tail_survival
        return np.round(out).astype(np.int64)


@dataclass(frozen=True)
class TrafficSurge:
    """A uniform volume surge: the whole OD flow scales up.

    Models high-rate events that do *not* disturb feature distributions
    — e.g. a bandwidth-measurement burst riding the flow's existing
    host/port structure, or a demand spike.  Because sample entropy is
    scale-invariant, a surge is invisible to the entropy detector and
    shows up only in volume metrics; this is the population behind the
    paper's large volume-only detection counts (Table 2) and the
    volume-detected alpha flows of Table 3.
    """

    factor: float = 3.0
    label: str = "alpha"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def apply_to_counts(self, counts: np.ndarray) -> np.ndarray:
        """Scale one feature histogram uniformly."""
        return np.round(counts.astype(np.float64) * self.factor).astype(np.int64)
