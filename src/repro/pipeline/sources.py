"""RecordSource adapters: every way records enter the pipeline.

A :class:`RecordSource` abstracts where flow records come from so the
same :class:`repro.pipeline.DetectionPipeline` (and every deployment
mode behind it) can consume any of them:

* :class:`SyntheticSource` — inline synthesis from a
  :class:`repro.traffic.generator.TrafficGenerator` (the deterministic
  per-(OD, bin) ``record_rng`` streams);
* :class:`TraceSource` — zero-copy mmap replay of a recorded columnar
  trace (:mod:`repro.io.trace`);
* :class:`ScenarioSource` — a registered end-to-end workload from
  :mod:`repro.scenarios`: synthetic background with the scenario's
  anomaly events materialised as records and merged in.

Every source reduces to a picklable :class:`SourceSpec` description, so
cluster workers rebuild *their* view of the same source in another
process (:func:`build_source`) and — because every record draw is
seeded per (OD flow, bin), independent of the partition — see records
bit-identical to an unsharded sweep of the same source.  That is the
contract that keeps exact-mode detections identical across batch,
stream, and cluster modes at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.flows.binning import BIN_SECONDS, TimeBins
from repro.flows.records import FlowRecordBatch
from repro.net.topology import Topology, abilene, geant
from repro.stream.chunks import (
    DEFAULT_CHUNK_RECORDS,
    iter_record_chunks,
    synthetic_record_stream,
)

__all__ = [
    "RecordSource",
    "ScenarioSource",
    "SourceSpec",
    "SyntheticSource",
    "TraceSource",
    "build_source",
    "shard_mask",
    "shard_ods",
]

_NETWORKS = ("abilene", "geant")


def _build_topology(network: str) -> Topology:
    if network not in _NETWORKS:
        raise ValueError(
            f"unknown network {network!r}; expected one of {_NETWORKS}"
        )
    return abilene() if network == "abilene" else geant()


def shard_ods(n_od_flows: int, n_shards: int, shard_id: int) -> list[int]:
    """Round-robin OD-flow partition: shard ``s`` owns ``od % n_shards == s``.

    Round-robin (rather than contiguous ranges) balances load because
    the gravity model makes OD-flow rates heavy-tailed in OD index.
    The single definition of the partition — :func:`shard_mask` is its
    vectorised membership test, and every source's ``shard_batches``
    uses one of the two; exact-mode cluster correctness rests on all
    shards agreeing on ownership.
    """
    if not 0 <= shard_id < n_shards:
        raise ValueError("shard_id must be in [0, n_shards)")
    return list(range(shard_id, n_od_flows, n_shards))


def shard_mask(ods: np.ndarray, n_shards: int, shard_id: int) -> np.ndarray:
    """Membership mask of :func:`shard_ods` over a resolved-OD array."""
    if not 0 <= shard_id < n_shards:
        raise ValueError("shard_id must be in [0, n_shards)")
    return ods % n_shards == shard_id


@dataclass(frozen=True)
class SourceSpec:
    """Picklable description of a record source.

    Rebuilding a source from its spec (:func:`build_source`) in any
    process yields the same records — the cluster runner ships specs to
    workers instead of sources.

    Attributes:
        kind: ``"synthetic"``, ``"trace"``, ``"scenario"``, or
            ``"fuzzed"``.
        network: Topology name ("abilene"/"geant").
        n_bins: Bins the source covers (for traces: bins to replay).
        seed: Generator + record-draw seed (unused for traces).
        max_records_per_od: Record cap per (OD flow, bin) (synthesis).
        trace_path: The trace file (``kind="trace"`` only).
        scenario: Registered scenario name (``kind="scenario"``) or the
            fuzzed scenario's derived name (``kind="fuzzed"``).
        bin_width / bin_start: The bin grid (traces carry their own).
        fuzz: The :class:`repro.quality.fuzzer.FuzzSpec` a fuzzed
            scenario rebuilds from (``kind="fuzzed"`` only).
    """

    kind: str
    network: str = "abilene"
    n_bins: int = 72
    seed: int = 0
    max_records_per_od: int = 400
    trace_path: str | None = None
    scenario: str | None = None
    bin_width: float = BIN_SECONDS
    bin_start: float = 0.0
    fuzz: object = None


class RecordSource:
    """Base class: a described, re-buildable stream of record chunks."""

    def __init__(self, spec: SourceSpec) -> None:
        self.spec = spec
        self._topology: Topology | None = None

    @property
    def topology(self) -> Topology:
        """The backbone this source's records belong to (built lazily)."""
        if self._topology is None:
            self._topology = _build_topology(self.spec.network)
        return self._topology

    @property
    def bins(self) -> TimeBins:
        """The bin grid the records are binned on."""
        return TimeBins(
            n_bins=self.spec.n_bins,
            width=self.spec.bin_width,
            start=self.spec.bin_start,
        )

    @property
    def provenance(self) -> dict:
        """Report-ready provenance: source kind plus its identifiers."""
        out = {"source": self.spec.kind, "network": self.spec.network}
        if self.spec.trace_path:
            out["trace_path"] = self.spec.trace_path
        if self.spec.scenario:
            out["scenario"] = self.spec.scenario
        return out

    def batches(
        self, chunk_records: int | None = None
    ) -> Iterator[FlowRecordBatch]:
        """The full record stream, in time order.

        Args:
            chunk_records: Optional re-chunking bound (memory envelope);
                None yields the source's natural batches.
        """
        raise NotImplementedError

    def shard_batches(
        self,
        shard_id: int,
        n_shards: int,
        router,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        stripe: bool = False,
    ) -> Iterator[tuple[FlowRecordBatch, np.ndarray | None]]:
        """One shard's ``(chunk, ods)`` pairs.

        By default the split is the round-robin OD partition
        (``od % n_shards``).  ``stripe=True`` permits the source to use
        *any* record partition instead — valid only for exact-mode
        consumers, whose per-bin merge is canonical under arbitrary
        partitions; sketch consumers must keep the OD split so each
        OD's records meet a single conservative-update sketch.  Trace
        sources honor it with contiguous per-bin row stripes (each
        shard touches 1/N of every column instead of scanning
        everything and masking); generative sources ignore it, since
        materialising only the owned ODs *is* their cheap path.

        ``ods`` is the per-record OD attribution when the source
        already resolved it (trace replay, where attribution doubles
        as the shard filter), else None and the consumer's stage
        resolves.
        """
        raise NotImplementedError

    def _rechunk(self, stream, chunk_records):
        if chunk_records is None:
            return stream
        return iter_record_chunks(stream, chunk_records)


class SyntheticSource(RecordSource):
    """Inline synthesis from the deterministic traffic generator."""

    def __init__(
        self,
        network: str = "abilene",
        n_bins: int = 72,
        seed: int = 0,
        max_records_per_od: int = 400,
        bin_width: float = BIN_SECONDS,
        bin_start: float = 0.0,
    ) -> None:
        super().__init__(
            SourceSpec(
                kind="synthetic",
                network=network,
                n_bins=int(n_bins),
                seed=int(seed),
                max_records_per_od=int(max_records_per_od),
                bin_width=float(bin_width),
                bin_start=float(bin_start),
            )
        )

    def _generator(self):
        from repro.traffic.generator import TrafficGenerator

        return TrafficGenerator(self.topology, self.bins, seed=self.spec.seed)

    def _stream(self, ods=None):
        return synthetic_record_stream(
            self._generator(),
            range(self.spec.n_bins),
            ods=ods,
            max_records_per_od=self.spec.max_records_per_od,
            seed=self.spec.seed,
        )

    def batches(self, chunk_records=None):
        return self._rechunk(self._stream(), chunk_records)

    def shard_batches(self, shard_id, n_shards, router,
                      chunk_records=DEFAULT_CHUNK_RECORDS, stripe=False):
        ods = shard_ods(self.topology.n_od_flows, n_shards, shard_id)
        for chunk in iter_record_chunks(self._stream(ods=ods), chunk_records):
            yield chunk, None


class TraceSource(RecordSource):
    """Zero-copy replay of a recorded columnar trace file.

    The trace's own bin grid and network win: ``network``/``n_bins``
    arguments are validated against the header
    (:meth:`repro.io.trace.TraceInfo.ensure_compatible`), never used to
    re-bin.
    """

    def __init__(
        self,
        path: str | Path,
        network: str | None = None,
        n_bins: int | None = None,
    ) -> None:
        from repro.io.trace import trace_info

        info = trace_info(path)
        recorded = info.network.lower() if info.network else None
        if network is not None:
            info.ensure_compatible(network=network)
        network = network or recorded
        if network not in _NETWORKS:
            raise ValueError(
                f"trace {path} records network {info.network!r}, which is "
                f"not a known topology; pass network= explicitly"
            )
        if n_bins is None:
            n_bins = info.n_bins
        info.ensure_compatible(min_bins=n_bins)
        self.info = info
        super().__init__(
            SourceSpec(
                kind="trace",
                network=network,
                n_bins=int(n_bins),
                trace_path=str(path),
                bin_width=info.bins.width,
                bin_start=info.bins.start,
            )
        )

    def batches(self, chunk_records=None):
        from repro.stream.chunks import trace_record_stream

        return trace_record_stream(
            self.spec.trace_path,
            bins=range(self.spec.n_bins),
            chunk_records=chunk_records or DEFAULT_CHUNK_RECORDS,
        )

    def shard_batches(self, shard_id, n_shards, router,
                      chunk_records=DEFAULT_CHUNK_RECORDS, stripe=False):
        from repro.io.trace import TraceReader

        reader = TraceReader(self.spec.trace_path)
        # A version-2 trace already stores the resolved OD per record;
        # bins replay contiguously and in record order, so a running
        # offset maps every yielded chunk onto the stored column and
        # the whole LPM attribution pass disappears.
        stored = reader.derived_column("od") if reader.has_derived else None
        if stripe and n_shards > 1:
            # Row striping (exact-mode consumers): shard s takes the
            # s-th contiguous slice of every bin's row range, so each
            # worker touches 1/N of every column — zero-copy views, no
            # full-trace scan, no mask/gather — and attribution (stored
            # or LPM) runs only over the stripe's rows.  Exact per-bin
            # merge is canonical under any record partition, so the
            # merged result is byte-identical to the OD split.
            for b in range(self.spec.n_bins):
                lo, hi = reader.bin_range(b)
                n = hi - lo
                begin = lo + (n * shard_id) // n_shards
                end = lo + (n * (shard_id + 1)) // n_shards
                for row in range(begin, end, chunk_records):
                    stop = min(end, row + chunk_records)
                    chunk = reader.read_rows(row, stop)
                    if stored is not None:
                        ods = np.asarray(stored[row:stop], dtype=np.int64)
                    else:
                        ods = router.resolve_ods_mixed(
                            chunk.ingress_pop, chunk.dst_ip
                        )
                    if len(chunk):
                        yield chunk, ods
            return
        offset = reader.bin_range(0)[0] if self.spec.n_bins else 0
        for chunk in reader.iter_chunks(
            chunk_records=chunk_records, bins=range(self.spec.n_bins)
        ):
            # Attribution doubles as the shard filter: resolved once,
            # fed to the monitor so the stage skips its own LPM pass.
            if stored is not None:
                ods = np.asarray(stored[offset:offset + len(chunk)],
                                 dtype=np.int64)
                offset += len(chunk)
            else:
                ods = router.resolve_ods_mixed(chunk.ingress_pop, chunk.dst_ip)
            if n_shards > 1:
                mask = shard_mask(ods, n_shards, shard_id)
                if not mask.any():
                    continue
                chunk = chunk.select(mask)
                ods = ods[mask]
            yield chunk, ods


class ScenarioSource(RecordSource):
    """A registered end-to-end workload: background + anomaly records.

    The scenario's schedule is rebuilt deterministically from
    ``(scenario name, topology, n_bins, seed)`` in whichever process
    consumes the source, and each event's records are drawn from a
    per-(OD, bin) seeded stream — so shards regenerate exactly the
    events their OD slice owns, and the union over shards equals the
    unsharded stream.
    """

    def __init__(
        self,
        scenario,
        network: str | None = None,
        n_bins: int | None = None,
        seed: int = 0,
        max_records_per_od: int | None = None,
    ) -> None:
        from repro.scenarios import get_scenario

        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        self.scenario = scenario
        super().__init__(
            SourceSpec(
                kind="scenario",
                network=network or scenario.network,
                n_bins=int(n_bins or scenario.n_bins),
                seed=int(seed),
                max_records_per_od=int(
                    max_records_per_od or scenario.max_records_per_od
                ),
                scenario=scenario.name,
            )
        )
        self._events = None

    @property
    def events(self):
        """The scenario's ground-truth events on this source's grid."""
        if self._events is None:
            self._events = self.scenario.events_for(
                self.topology, n_bins=self.spec.n_bins, seed=self.spec.seed
            )
        return self._events

    def labels_by_bin(self) -> dict[int, str]:
        """Ground-truth labels keyed by bin (for scored reports)."""
        return {e.bin: e.label for e in self.events}

    def _stream(self, ods=None):
        from repro.scenarios import scenario_record_batches
        from repro.traffic.generator import TrafficGenerator

        generator = TrafficGenerator(self.topology, self.bins, seed=self.spec.seed)
        return scenario_record_batches(
            generator,
            self.events,
            range(self.spec.n_bins),
            ods=ods,
            max_records_per_od=self.spec.max_records_per_od,
            seed=self.spec.seed,
        )

    def batches(self, chunk_records=None):
        return self._rechunk(self._stream(), chunk_records)

    def shard_batches(self, shard_id, n_shards, router,
                      chunk_records=DEFAULT_CHUNK_RECORDS, stripe=False):
        ods = shard_ods(self.topology.n_od_flows, n_shards, shard_id)
        for chunk in iter_record_chunks(self._stream(ods=ods), chunk_records):
            yield chunk, None

    def write_trace(self, path: str | Path):
        """Record this scenario's full stream to a columnar trace file.

        The written trace replays bit-identical to :meth:`batches`, so
        any mode fed from it sees exactly the inline records; the
        scenario name lands in the trace header's provenance.

        Returns:
            The written trace's :class:`repro.io.trace.TraceInfo`.
        """
        from repro.io.trace import TraceWriter

        spec = self.spec
        with TraceWriter(
            path,
            n_bins=spec.n_bins,
            bin_width=spec.bin_width,
            start=spec.bin_start,
            network=self.topology.name,
            meta={
                "scenario": spec.scenario,
                "seed": spec.seed,
                "max_records_per_od": spec.max_records_per_od,
            },
        ) as writer:
            for b, batch in zip(range(spec.n_bins), self._stream()):
                writer.append(b, batch)
        return writer.info


def build_source(spec: SourceSpec) -> RecordSource:
    """Rebuild a source from its picklable description."""
    if spec.kind == "synthetic":
        return SyntheticSource(
            network=spec.network,
            n_bins=spec.n_bins,
            seed=spec.seed,
            max_records_per_od=spec.max_records_per_od,
            bin_width=spec.bin_width,
            bin_start=spec.bin_start,
        )
    if spec.kind == "trace":
        if spec.trace_path is None:
            raise ValueError("trace source spec needs trace_path")
        return TraceSource(
            spec.trace_path, network=spec.network, n_bins=spec.n_bins
        )
    if spec.kind == "scenario":
        if spec.scenario is None:
            raise ValueError("scenario source spec needs a scenario name")
        return ScenarioSource(
            spec.scenario,
            network=spec.network,
            n_bins=spec.n_bins,
            seed=spec.seed,
            max_records_per_od=spec.max_records_per_od,
        )
    if spec.kind == "fuzzed":
        if spec.fuzz is None:
            raise ValueError("fuzzed source spec needs its FuzzSpec")
        from repro.quality.fuzzer import FuzzedScenarioSource

        return FuzzedScenarioSource(spec.fuzz)
    raise ValueError(f"unknown source kind {spec.kind!r}")
