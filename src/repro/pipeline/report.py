"""Per-bin verdicts and run reports shared by every deployment mode.

:class:`StreamDetection` is the verdict one scored bin produces and
:class:`StreamingReport` the accumulated outcome of a run — whichever
mode (batch, stream, cluster) produced it.  Both historically lived in
:mod:`repro.stream.engine`; they moved here when the scoring core was
extracted into :class:`repro.pipeline.bank.DetectorBank` so that the
cluster coordinator and the batch driver could share them without
importing the streaming engine.  ``repro.stream.engine`` re-exports
them, so existing imports keep working.

Reports carry free-form provenance ``meta`` (scenario name, source
kind, trace path, deployment mode) end-to-end:
:meth:`StreamingReport.to_diagnosis_report` copies it onto the batch
:class:`repro.core.detector.DiagnosisReport`, so exported reports from
different modes are distinguishable and comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import summarize_clusters
from repro.core.clustering import ClusteringResult
from repro.core.detector import DiagnosedAnomaly, DiagnosisReport
from repro.core.identification import IdentifiedFlow
from repro.core.online import OnlineClassifier
from repro.flows.features import N_FEATURES

__all__ = ["StreamDetection", "StreamingReport"]


@dataclass
class StreamDetection:
    """Verdict for one scored (post-warm-up) bin.

    Attributes:
        bin: Global bin index.
        spe_entropy: Multiway SPE of the bin (0 for clean bins; the
            online detector only reports SPE on detections).
        threshold: Q threshold the SPE was compared against.
        detected_by_entropy: Multiway SPE exceeded the threshold.
        detected_by_volume: Packet or byte row exceeded its threshold.
        flows: Identified OD flows (entropy detections only).
        entropy_vector: ``(4,)`` displacement of the primary flow.
        unit_vector: Unit-normalised version (zero when unidentified).
        cluster: Online-classifier cluster (-1 when not classified).
        n_records: Records aggregated into the bin.
    """

    bin: int
    spe_entropy: float
    threshold: float
    detected_by_entropy: bool
    detected_by_volume: bool
    flows: list[IdentifiedFlow] = field(default_factory=list)
    entropy_vector: np.ndarray = field(default_factory=lambda: np.zeros(N_FEATURES))
    unit_vector: np.ndarray = field(default_factory=lambda: np.zeros(N_FEATURES))
    cluster: int = -1
    n_records: int = 0

    @property
    def detected(self) -> bool:
        """Flagged by either method."""
        return self.detected_by_entropy or self.detected_by_volume

    @property
    def primary_od(self) -> int | None:
        """OD flow of the strongest identified component."""
        return self.flows[0].od if self.flows else None


@dataclass
class StreamingReport:
    """Accumulated outcome of a detection run (any mode).

    ``meta`` is free-form provenance — scenario name, source kind,
    trace path, deployment mode — set by whoever drove the run and
    propagated into :meth:`to_diagnosis_report`.
    """

    detections: list[StreamDetection]
    n_bins_scored: int
    n_bins_warmup: int
    n_records: int
    late_records: int
    classifier: OnlineClassifier | None = None
    meta: dict = field(default_factory=dict)

    @property
    def entropy_bins(self) -> np.ndarray:
        """Bins flagged by the multiway entropy method."""
        return np.array(
            sorted(d.bin for d in self.detections if d.detected_by_entropy),
            dtype=np.int64,
        )

    @property
    def volume_bins(self) -> np.ndarray:
        """Bins flagged by the volume baseline."""
        return np.array(
            sorted(d.bin for d in self.detections if d.detected_by_volume),
            dtype=np.int64,
        )

    def counts(self) -> dict[str, int]:
        """Table-2 style counts over the scored stream."""
        volume = set(self.volume_bins.tolist())
        entropy = set(self.entropy_bins.tolist())
        return {
            "volume_only": len(volume - entropy),
            "entropy_only": len(entropy - volume),
            "both": len(volume & entropy),
            "total": len(volume | entropy),
        }

    def to_diagnosis_report(
        self, labels_by_bin: dict[int, str] | None = None
    ) -> DiagnosisReport:
        """Render the run as a batch-compatible :class:`DiagnosisReport`.

        Entropy detections come first (with vectors and online cluster
        assignments), then volume-only bins as vectorless events —
        mirroring :meth:`repro.core.detector.AnomalyDiagnosis.diagnose`.
        Provenance ``meta`` carries over.
        """
        volume_set = set(self.volume_bins.tolist())
        anomalies: list[DiagnosedAnomaly] = []
        clustered: list[DiagnosedAnomaly] = []
        for det in self.detections:
            if not det.detected:
                continue
            label = labels_by_bin.get(det.bin, "unknown") if labels_by_bin else ""
            anom = DiagnosedAnomaly(
                bin=det.bin,
                od=det.primary_od if det.primary_od is not None else -1,
                detected_by_volume=det.bin in volume_set,
                detected_by_entropy=det.detected_by_entropy,
                entropy_vector=det.entropy_vector,
                unit_vector=det.unit_vector,
                spe_entropy=det.spe_entropy if det.detected_by_entropy else 0.0,
                cluster=det.cluster,
                label=label,
            )
            anomalies.append(anom)
            if det.detected_by_entropy and det.cluster >= 0:
                clustered.append(anom)
        report = DiagnosisReport(
            anomalies=anomalies,
            volume_bins=self.volume_bins,
            entropy_bins=self.entropy_bins,
            meta=dict(self.meta),
        )
        if self.classifier is not None and len(clustered) >= 1 and self.classifier.n_clusters:
            points = np.vstack([a.unit_vector for a in clustered])
            labels = np.array([a.cluster for a in clustered], dtype=np.int64)
            centers = self.classifier.centroids
            inertia = float(((points - centers[labels]) ** 2).sum())
            clustering = ClusteringResult(
                labels=labels,
                centers=centers,
                k=self.classifier.n_clusters,
                inertia=inertia,
                algorithm="online-nearest-centroid",
            )
            member_labels = (
                [a.label or "unknown" for a in clustered]
                if labels_by_bin is not None
                else None
            )
            report.clustering = clustering
            report.clusters = summarize_clusters(
                points, clustering, labels=member_labels
            )
        return report
