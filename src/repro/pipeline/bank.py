"""DetectorBank: the pluggable per-bin scoring core of every mode.

The paper's method scores each closed time bin twice — the multiway
entropy subspace (Section 4.2) and the volume baseline (Lakhina 2004) —
and classifies entropy detections in entropy space.  That scoring logic
used to live inside :class:`repro.stream.engine.StreamingDetectionEngine`;
it is extracted here so the batch driver, the streaming engine and the
cluster coordinator all configure *one* bank rather than re-implementing
the loop.

Detectors are pluggable: each is registered under a name
(:func:`register_detector`) and declares a ``channel`` — ``"entropy"``
detectors contribute the SPE/threshold/identified flows of a verdict,
``"volume"`` detectors OR into the volume flag — so a bank can run
entropy-only, volume-only, both (the default), or a custom detector,
while every consumer keeps receiving the same
:class:`repro.pipeline.report.StreamDetection` shape.

The bank also owns warm-up: until ``config.warmup_bins`` summaries have
been observed (or :meth:`DetectorBank.warm_up_cube` seeded it from a
historical cube), bins are buffered silently; afterwards every observed
:class:`repro.stream.window.BinSummary` yields one verdict.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry as tel
from repro.core.online import (
    OnlineClassifier,
    OnlineMultiwayDetector,
    OnlineVolumeDetector,
)
from repro.pipeline.report import StreamDetection, StreamingReport

__all__ = [
    "BinDetector",
    "DetectorBank",
    "DetectorVerdict",
    "detector_names",
    "register_detector",
]

#: name -> detector class; the bank builds its detectors from here.
_DETECTOR_REGISTRY: dict[str, type] = {}

DEFAULT_DETECTORS = ("entropy", "volume")


def register_detector(name: str):
    """Class decorator registering a :class:`BinDetector` under ``name``."""

    def decorate(cls):
        if name in _DETECTOR_REGISTRY:
            raise ValueError(f"detector {name!r} is already registered")
        _DETECTOR_REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorate


def detector_names() -> tuple[str, ...]:
    """Registered detector names, sorted."""
    return tuple(sorted(_DETECTOR_REGISTRY))


class DetectorVerdict:
    """One detector's contribution to a bin verdict."""

    __slots__ = ("hit", "spe", "threshold", "flows")

    def __init__(self, hit=False, spe=0.0, threshold=0.0, flows=None):
        self.hit = bool(hit)
        self.spe = float(spe)
        self.threshold = float(threshold)
        self.flows = flows if flows is not None else []


class BinDetector:
    """Interface of one pluggable per-bin detector.

    Attributes:
        channel: ``"entropy"`` (contributes SPE/threshold/flows and the
            entropy flag) or ``"volume"`` (contributes the volume flag).
    """

    channel = "volume"
    name = ""

    def warm_up(self, entropy: np.ndarray, packets: np.ndarray,
                bytes_: np.ndarray) -> None:
        """Fit on a warm-up window: ``(t, p, 4)`` entropy tensor plus
        ``(t, p)`` packet/byte matrices."""
        raise NotImplementedError

    @property
    def is_warm(self) -> bool:
        raise NotImplementedError

    def observe(self, summary) -> DetectorVerdict:
        """Score one closed :class:`~repro.stream.window.BinSummary`."""
        raise NotImplementedError


@register_detector("entropy")
class EntropyMultiwayDetector(BinDetector):
    """The multiway entropy subspace method, online form.

    Wraps :class:`repro.core.online.OnlineMultiwayDetector`: frozen
    multiway subspace with a sliding refit buffer, Q-statistic
    threshold, and greedy multi-attribute identification.
    """

    channel = "entropy"

    def __init__(self, config) -> None:
        cfg = config
        self.detector = OnlineMultiwayDetector(
            window=cfg.window or cfg.warmup_bins,
            refit_every=cfg.refit_every,
            n_components=cfg.n_components,
            alpha=cfg.alpha,
            normalization=cfg.normalization,
            identify=cfg.identify,
            drift_reset_after=cfg.drift_reset_after,
            calibration_margin=cfg.calibration_margin,
        )

    def warm_up(self, entropy, packets, bytes_) -> None:
        self.detector.warm_up(entropy)

    @property
    def is_warm(self) -> bool:
        return self.detector.is_warm

    def observe(self, summary) -> DetectorVerdict:
        threshold = self.detector.threshold
        hit = self.detector.observe(summary.entropy)
        return DetectorVerdict(
            hit=hit is not None,
            spe=hit.spe if hit is not None else 0.0,
            threshold=threshold,
            flows=hit.flows if hit is not None else [],
        )


@register_detector("volume")
class VolumeBaselineDetector(BinDetector):
    """The volume baseline: one online subspace model per metric.

    A bin is volume-detected when either the packet or the byte row
    exceeds its model's threshold, exactly like the batch baseline.
    """

    channel = "volume"

    def __init__(self, config) -> None:
        cfg = config
        self._metrics = {
            name: OnlineVolumeDetector(
                window=cfg.window or cfg.warmup_bins,
                refit_every=cfg.refit_every,
                n_components=cfg.n_components,
                alpha=cfg.alpha,
                drift_reset_after=cfg.drift_reset_after,
                transform=cfg.volume_transform,
                detrend=cfg.volume_detrend,
                calibration_margin=cfg.volume_calibration_margin,
            )
            for name in ("packets", "bytes")
        }

    def warm_up(self, entropy, packets, bytes_) -> None:
        self._metrics["packets"].warm_up(packets)
        self._metrics["bytes"].warm_up(bytes_)

    @property
    def is_warm(self) -> bool:
        return all(m.is_warm for m in self._metrics.values())

    def observe(self, summary) -> DetectorVerdict:
        packet_hit, _ = self._metrics["packets"].observe(summary.packets)
        byte_hit, _ = self._metrics["bytes"].observe(summary.bytes)
        return DetectorVerdict(hit=packet_hit or byte_hit)


class DetectorBank:
    """A configured set of per-bin detectors plus the online classifier.

    Usage (the whole scoring loop of every mode)::

        bank = DetectorBank(config)                  # entropy + volume
        for summary in closed_bins:
            verdict = bank.observe(summary)          # None during warm-up
        report = bank.finish(n_records=..., late_records=...)

    Args:
        config: A :class:`repro.stream.engine.StreamConfig`.
        detectors: Names from the registry, in scoring order.  Defaults
            to ``("entropy", "volume")`` — the paper's two methods.
    """

    def __init__(self, config, detectors: tuple[str, ...] = DEFAULT_DETECTORS) -> None:
        names = tuple(detectors)
        if not names:
            raise ValueError("detector bank needs at least one detector")
        unknown = [n for n in names if n not in _DETECTOR_REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown detector(s) {unknown}; registered: {detector_names()}"
            )
        if len(set(names)) != len(names):
            raise ValueError("detector names must be unique")
        self.config = config
        self.names = names
        self.detectors = {name: _DETECTOR_REGISTRY[name](config) for name in names}
        self.classifier = OnlineClassifier(spawn_distance=config.spawn_distance)
        self.detections: list[StreamDetection] = []
        self._warmup_summaries: list = []
        self.n_bins_scored = 0
        self.n_bins_warmup = 0

    # -- warm-up ---------------------------------------------------------

    @property
    def is_warm(self) -> bool:
        """Whether every detector's model is fitted."""
        return all(d.is_warm for d in self.detectors.values())

    def warm_up_cube(self, cube) -> None:
        """Fit every detector on a historical :class:`TrafficCube`."""
        self._warm_up(cube.entropy, cube.packets, cube.bytes)
        self.n_bins_warmup = cube.n_bins

    def seed_classifier(self, centroids: np.ndarray) -> None:
        """Seed the online classifier with offline cluster centroids."""
        self.classifier = OnlineClassifier(
            centroids, spawn_distance=self.config.spawn_distance
        )

    def _warm_up(self, entropy, packets, bytes_) -> None:
        for detector in self.detectors.values():
            detector.warm_up(entropy, packets, bytes_)

    def _warm_up_from_buffer(self) -> None:
        tensor = np.stack([s.entropy for s in self._warmup_summaries])
        packets = np.vstack([s.packets for s in self._warmup_summaries])
        bytes_ = np.vstack([s.bytes for s in self._warmup_summaries])
        self._warm_up(tensor, packets, bytes_)
        self.n_bins_warmup = len(self._warmup_summaries)
        self._warmup_summaries.clear()

    # -- scoring ---------------------------------------------------------

    def observe(self, summary) -> StreamDetection | None:
        """Score one closed bin summary; None while still warming up."""
        # One counter tick per observed bin in every mode — the bank is
        # the funnel batch, stream and cluster all converge on, which
        # is what lets `--progress` work everywhere.
        tel.count("pipeline.bins_closed")
        tel.count("pipeline.records", int(summary.n_records))
        if not self.is_warm:
            self._warmup_summaries.append(summary)
            if len(self._warmup_summaries) >= self.config.warmup_bins:
                with tel.span("stage.score"):
                    self._warm_up_from_buffer()
            return None
        self.n_bins_scored += 1
        with tel.span("stage.score"):
            return self._score(summary)

    def _score(self, summary) -> StreamDetection:
        entropy_verdict = DetectorVerdict()
        volume_hit = False
        for name in self.names:
            verdict = self.detectors[name].observe(summary)
            if self.detectors[name].channel == "entropy":
                entropy_verdict = verdict
            else:
                volume_hit = volume_hit or verdict.hit
        detection = StreamDetection(
            bin=summary.bin,
            spe_entropy=entropy_verdict.spe,
            threshold=entropy_verdict.threshold,
            detected_by_entropy=entropy_verdict.hit,
            detected_by_volume=volume_hit,
            flows=entropy_verdict.flows,
            n_records=summary.n_records,
        )
        if entropy_verdict.hit and entropy_verdict.flows:
            vec = entropy_verdict.flows[0].displacement
            norm = float(np.linalg.norm(vec))
            detection.entropy_vector = vec
            if norm > 0:
                detection.unit_vector = vec / norm
                detection.cluster = self.classifier.assign(detection.unit_vector)
        self.detections.append(detection)
        return detection

    # -- reporting -------------------------------------------------------

    def finish(
        self,
        n_records: int = 0,
        late_records: int = 0,
        meta: dict | None = None,
    ) -> StreamingReport:
        """Bundle the accumulated verdicts into a report."""
        return StreamingReport(
            detections=list(self.detections),
            n_bins_scored=self.n_bins_scored,
            n_bins_warmup=self.n_bins_warmup,
            n_records=n_records,
            late_records=late_records,
            classifier=self.classifier,
            meta=dict(meta or {}),
        )
