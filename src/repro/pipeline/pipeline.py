"""DetectionPipeline: one composable engine behind every deployment mode.

The paper's method is a single pipeline — records → binned feature
distributions → entropy → (multiway) subspace detection → diagnosis —
and this module is its one execution engine::

    RecordSource  →  BinReducer  →  DetectorBank  →  report
    (synthetic,      (StreamFeature-  (entropy multiway,
     trace replay,    Stage / ODFlow-  volume baseline,
     scenario,        Aggregator /     online classifier)
     cluster ingest)  ShardMonitor)

:meth:`DetectionPipeline.run` drives the same stages in three modes:

* ``"stream"`` — the online deployment: chunks roll through a
  :class:`repro.stream.window.StreamFeatureStage`, every closed bin is
  scored immediately (bounded memory, zero detection latency);
* ``"batch"`` — the paper's offline deployment: the whole stream is
  reduced into a :class:`repro.flows.odflows.TrafficCube` first (one
  kernel pass over composite ``bin*p+od`` keys), then the *same*
  detector bank scores the bins in order;
* ``"cluster"`` — the sharded deployment: worker processes reduce
  OD-flow slices into mergeable summaries, the coordinator merges and
  scores them with the same bank
  (:func:`repro.cluster.runner.run_cluster_source`).

Because every mode reduces the same records with the same kernels and
scores them with the same bank, exact-histogram detections are
identical across all three — the parity contract
``tests/test_pipeline.py`` pins for every registered scenario.

The pre-existing entry points — ``StreamingDetectionEngine``,
``AnomalyDiagnosis``, ``run_cluster`` — remain as thin configurations
of these same stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro import telemetry as tel
from repro.pipeline.bank import DEFAULT_DETECTORS
from repro.pipeline.report import StreamDetection, StreamingReport
from repro.pipeline.sources import RecordSource, SourceSpec, TraceSource, build_source
from repro.stream.window import BinSummary

__all__ = ["DetectionPipeline", "PipelineResult", "MODES"]

MODES = ("batch", "stream", "cluster")


@dataclass
class PipelineResult:
    """Outcome of one :meth:`DetectionPipeline.run`.

    Attributes:
        report: The accumulated :class:`StreamingReport` (same shape in
            every mode; ``to_diagnosis_report()`` applies).
        mode: The deployment mode that produced it.
        n_records: Records ingested end-to-end.
        elapsed: Wall-clock seconds for the whole run.
        shard_records: Per-shard record counts (cluster mode only).
    """

    report: StreamingReport
    mode: str
    n_records: int
    elapsed: float
    shard_records: dict[int, int] = field(default_factory=dict)
    degraded: bool = False
    restarts: int = 0

    @property
    def records_per_sec(self) -> float:
        """End-to-end ingest throughput."""
        return self.n_records / self.elapsed if self.elapsed > 0 else float("inf")

    @property
    def meta(self) -> dict:
        """The report's provenance metadata."""
        return self.report.meta


class _CountingChunks:
    """Pass-through iterator counting records and per-bin occupancy."""

    def __init__(self, chunks, bins):
        self._chunks = chunks
        self._bins = bins
        self.n_records = 0
        self.bin_counts = np.zeros(bins.n_bins, dtype=np.int64)

    def __iter__(self):
        for chunk in self._chunks:
            self.n_records += len(chunk)
            idx = self._bins.indices(chunk.timestamp)
            idx = idx[idx >= 0]
            if idx.size:
                self.bin_counts += np.bincount(idx, minlength=self._bins.n_bins)
            yield chunk


class DetectionPipeline:
    """A configured detector bank runnable over any source in any mode.

    Usage::

        pipeline = DetectionPipeline(StreamConfig(warmup_bins=48))
        result = pipeline.run(ScenarioSource("ddos-burst"), mode="stream")
        result = pipeline.run("abilene.trace", mode="batch")
        result = pipeline.run(trace_source, mode="cluster", n_shards=4)

    Args:
        config: A :class:`repro.stream.engine.StreamConfig` (all knobs:
            warm-up, subspace dimensions, sketch geometry, chunking).
        detectors: Detector-bank selection from the registry
            (:mod:`repro.pipeline.bank`); default entropy + volume.
    """

    def __init__(
        self,
        config=None,
        detectors: tuple[str, ...] = DEFAULT_DETECTORS,
    ) -> None:
        from repro.stream.engine import StreamConfig

        self.config = config or StreamConfig()
        self.detectors = tuple(detectors)

    # -- engine assembly -------------------------------------------------

    def _engine(self, source: RecordSource, mode: str, meta: dict | None):
        from repro.stream.engine import StreamingDetectionEngine

        engine = StreamingDetectionEngine(
            source.topology,
            self.config,
            bin_width=source.spec.bin_width,
            start=source.spec.bin_start,
            detectors=self.detectors,
        )
        engine.meta.update(source.provenance)
        engine.meta["mode"] = mode
        engine.meta.update(meta or {})
        return engine

    @staticmethod
    def _normalize(source) -> RecordSource:
        if isinstance(source, RecordSource):
            return source
        if isinstance(source, SourceSpec):
            return build_source(source)
        if isinstance(source, (str, Path)):
            return TraceSource(source)
        raise ValueError(
            f"cannot interpret {type(source).__name__} as a record source; "
            "pass a RecordSource, a SourceSpec, or a trace path"
        )

    # -- modes -----------------------------------------------------------

    def run(
        self,
        source,
        mode: str = "stream",
        n_shards: int = 2,
        queue_depth: int = 16,
        on_detection: Callable[[StreamDetection], None] | None = None,
        meta: dict | None = None,
        resilience=None,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        chaos=None,
        transport: str = "pipe",
        listen=None,
        tiers=None,
        worker_threads: int | None = None,
    ) -> PipelineResult:
        """Run the full pipeline over a source in the chosen mode.

        Args:
            source: A :class:`RecordSource`, a :class:`SourceSpec`, or
                a trace-file path.
            mode: ``"batch"``, ``"stream"``, or ``"cluster"``.
            n_shards: Worker processes (cluster mode).
            queue_depth: Summary-queue bound (cluster mode).
            on_detection: Callback invoked with each verdict as bins
                are scored (all modes).
            meta: Extra provenance merged into the report metadata.
            resilience: A :class:`repro.resilience.ResiliencePolicy`
                governing restarts, deadlines, and degraded completion
                (cluster mode only).
            checkpoint: Path the coordinator spills closed bins to
                (cluster mode only).
            resume: Replay ``checkpoint`` before spawning workers
                (cluster mode only).
            chaos: A :class:`repro.resilience.FaultPlan` or spec string
                injecting deterministic worker faults (cluster mode
                only; testing aid).
            transport: ``"pipe"`` or ``"tcp"`` worker links (cluster
                mode only; see :mod:`repro.cluster.transport`).
            listen: ``HOST:PORT`` to await external ``repro worker``
                processes (cluster mode, TCP only).
            tiers: Aggregator tier layout ``"AxB"`` (cluster mode
                only; overrides ``n_shards``).
            worker_threads: Kernel threads per worker (cluster mode
                only; None auto-sizes to cpus // shards).

        Returns:
            A :class:`PipelineResult`; exact-histogram detections are
            identical whichever mode ran.
        """
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        if mode != "cluster":
            cluster_only = {
                "resilience": resilience,
                "checkpoint": checkpoint,
                "chaos": chaos,
                "resume": resume or None,
                "listen": listen,
                "tiers": tiers,
                "worker_threads": worker_threads,
                "transport": None if transport == "pipe" else transport,
            }
            given = [k for k, v in cluster_only.items() if v is not None]
            if given:
                raise ValueError(
                    f"{', '.join(given)} only apply to cluster mode "
                    f"(mode={mode!r} runs in-process; there are no workers "
                    "to supervise)"
                )
        source = self._normalize(source)
        if mode == "cluster":
            return self._run_cluster(
                source,
                n_shards,
                queue_depth,
                on_detection,
                meta,
                resilience=resilience,
                checkpoint=checkpoint,
                resume=resume,
                chaos=chaos,
                transport=transport,
                listen=listen,
                tiers=tiers,
                worker_threads=worker_threads,
            )
        if mode == "batch":
            return self._run_batch(source, on_detection, meta)
        return self._run_stream(source, on_detection, meta)

    def _run_stream(self, source, on_detection, meta) -> PipelineResult:
        engine = self._engine(source, "stream", meta)
        start = time.perf_counter()
        chunks = tel.timed_iter(source.batches(), "stage.source")
        for verdict in engine.events(chunks):
            if on_detection is not None:
                on_detection(verdict)
        with tel.span("stage.report"):
            report = engine.finish()
        elapsed = time.perf_counter() - start
        return PipelineResult(
            report=report,
            mode="stream",
            n_records=report.n_records,
            elapsed=elapsed,
        )

    def _run_batch(self, source, on_detection, meta) -> PipelineResult:
        from repro.flows.odflows import ODFlowAggregator

        engine = self._engine(source, "batch", meta)
        start = time.perf_counter()
        bins = source.bins
        counted = _CountingChunks(
            source.batches(chunk_records=self.config.chunk_records), bins
        )
        # stage.source nests inside stage.reduce here (the aggregator
        # pulls chunks); span child-credits keep the stats additive.
        chunks = tel.timed_iter(counted, "stage.source")
        with tel.span("stage.reduce"):
            cube = ODFlowAggregator(source.topology).aggregate_stream(chunks, bins)
        # Same summaries the feature stage would emit, scored by the
        # same bank — only the reduction order differed.
        for b in range(cube.n_bins):
            summary = BinSummary(
                bin=b,
                entropy=cube.entropy[b],
                packets=cube.packets[b],
                bytes=cube.bytes[b],
                n_records=int(counted.bin_counts[b]),
            )
            verdict = engine.observe_summary(summary)
            if verdict is not None and on_detection is not None:
                on_detection(verdict)
        with tel.span("stage.report"):
            report = engine.finish()
        report.n_records = counted.n_records
        elapsed = time.perf_counter() - start
        return PipelineResult(
            report=report,
            mode="batch",
            n_records=counted.n_records,
            elapsed=elapsed,
        )

    def _run_cluster(
        self,
        source,
        n_shards,
        queue_depth,
        on_detection,
        meta,
        resilience=None,
        checkpoint=None,
        resume=False,
        chaos=None,
        transport="pipe",
        listen=None,
        tiers=None,
        worker_threads=None,
    ) -> PipelineResult:
        from repro.cluster.runner import run_cluster_source

        result = run_cluster_source(
            source,
            n_shards=n_shards,
            config=self.config,
            queue_depth=queue_depth,
            on_detection=on_detection,
            detectors=self.detectors,
            meta=meta,
            resilience=resilience,
            checkpoint=checkpoint,
            resume=resume,
            chaos=chaos,
            transport=transport,
            listen=listen,
            tiers=tiers,
            worker_threads=worker_threads,
        )
        return PipelineResult(
            report=result.report,
            mode="cluster",
            n_records=result.n_records,
            elapsed=result.elapsed,
            shard_records=result.shard_records,
            degraded=result.degraded,
            restarts=result.restarts,
        )
