"""Composable detection pipeline: one engine behind batch/stream/cluster.

``RecordSource → BinReducer → DetectorBank → report``: the paper's
method as four swappable stages.  :class:`DetectionPipeline` drives
them in any deployment mode over any source; the stage adapters live in
:mod:`repro.pipeline.sources` (where records come from),
:mod:`repro.pipeline.bank` (the pluggable per-bin detector registry),
and :mod:`repro.pipeline.report` (verdicts and reports with end-to-end
provenance).  Registered end-to-end workloads runnable through the
pipeline live in :mod:`repro.scenarios`.
"""

from repro.pipeline.bank import (
    BinDetector,
    DetectorBank,
    DetectorVerdict,
    detector_names,
    register_detector,
)
from repro.pipeline.pipeline import MODES, DetectionPipeline, PipelineResult
from repro.pipeline.report import StreamDetection, StreamingReport
from repro.pipeline.sources import (
    RecordSource,
    ScenarioSource,
    SourceSpec,
    SyntheticSource,
    TraceSource,
    build_source,
)

__all__ = [
    "BinDetector",
    "DetectionPipeline",
    "DetectorBank",
    "DetectorVerdict",
    "MODES",
    "PipelineResult",
    "RecordSource",
    "ScenarioSource",
    "SourceSpec",
    "StreamDetection",
    "StreamingReport",
    "SyntheticSource",
    "TraceSource",
    "build_source",
    "detector_names",
    "register_detector",
]
