"""repro — reproduction of "Mining Anomalies Using Traffic Feature Distributions".

Lakhina, Crovella & Diot, SIGCOMM 2005 (BUCS-TR-2005-002).

The package implements the paper's full pipeline plus every substrate
it depends on:

* :mod:`repro.net` — backbone topologies (Abilene, Geant), addressing,
  longest-prefix routing and egress resolution.
* :mod:`repro.flows` — flow records, 5-minute binning, packet sampling,
  feature histograms, OD-flow aggregation into traffic cubes.
* :mod:`repro.traffic` — synthetic network-wide traffic generation
  (diurnal cycles, gravity OD matrix, Zipf feature distributions).
* :mod:`repro.anomalies` — the Table-1 anomaly zoo, trace thinning,
  k-way DDOS splitting, and injection machinery.
* :mod:`repro.core` — sample entropy, the (multiway) subspace method,
  multi-attribute identification, clustering, and unsupervised
  classification; plus online extensions.
* :mod:`repro.datasets` — labeled Abilene/Geant-like datasets with
  ground-truth schedules.
* :mod:`repro.stream` — the online pipeline (paper Section 8): chunked
  record ingestion, sketch-backed per-bin features, streaming multiway
  detection and incremental classification.
* :mod:`repro.cluster` — the sharded deployment (paper Section 8):
  per-shard monitors reduce records into mergeable per-bin summaries;
  a central coordinator merges them and drives the streaming engine
  across worker processes.
* :mod:`repro.experiments` — one module per paper table and figure.

Quickstart::

    from repro import abilene_dataset, AnomalyDiagnosis

    data = abilene_dataset(weeks=1)
    report = AnomalyDiagnosis().diagnose(data.cube, labels_by_bin=data.labels_by_bin)
    print(report.counts())
"""

from repro.cluster import (
    ClusterCoordinator,
    ShardBinSummary,
    ShardMonitor,
    run_cluster,
)
from repro.core import (
    AnomalyDiagnosis,
    DiagnosisReport,
    MultiwaySubspaceDetector,
    SubspaceDetector,
    hierarchical,
    kmeans,
    sample_entropy,
)
from repro.datasets import abilene_dataset, geant_dataset, make_labeled_dataset
from repro.flows import FEATURES, TimeBins, TrafficCube
from repro.io import TraceReader, TraceWriter, trace_info, write_trace
from repro.net import Topology, abilene, geant
from repro.pipeline import (
    DetectionPipeline,
    PipelineResult,
    ScenarioSource,
    SyntheticSource,
    TraceSource,
)
from repro.scenarios import Scenario, get_scenario, scenario_names
from repro.stream import StreamConfig, StreamingDetectionEngine, StreamingReport
from repro.traffic import GeneratorConfig, TrafficGenerator

__version__ = "1.0.0"

__all__ = [
    "AnomalyDiagnosis",
    "DiagnosisReport",
    "MultiwaySubspaceDetector",
    "SubspaceDetector",
    "hierarchical",
    "kmeans",
    "sample_entropy",
    "abilene_dataset",
    "geant_dataset",
    "make_labeled_dataset",
    "FEATURES",
    "TimeBins",
    "TrafficCube",
    "Topology",
    "abilene",
    "geant",
    "DetectionPipeline",
    "PipelineResult",
    "Scenario",
    "ScenarioSource",
    "SyntheticSource",
    "TraceSource",
    "get_scenario",
    "scenario_names",
    "StreamConfig",
    "StreamingDetectionEngine",
    "StreamingReport",
    "ClusterCoordinator",
    "ShardBinSummary",
    "ShardMonitor",
    "run_cluster",
    "GeneratorConfig",
    "TrafficGenerator",
    "__version__",
]
