"""Network substrate: addressing, backbone topologies, and routing."""

from repro.net.addressing import (
    ANONYMIZATION_BITS,
    AddressPool,
    Prefix,
    anonymize,
    anonymize_array,
    format_ip,
    make_ip,
    mask_low_bits,
    parse_ip,
    well_known_ports,
)
from repro.net.routing import PrefixTable, Router
from repro.net.topology import PoP, Topology, abilene, geant

__all__ = [
    "ANONYMIZATION_BITS",
    "AddressPool",
    "Prefix",
    "anonymize",
    "anonymize_array",
    "format_ip",
    "make_ip",
    "mask_low_bits",
    "parse_ip",
    "well_known_ports",
    "PrefixTable",
    "Router",
    "PoP",
    "Topology",
    "abilene",
    "geant",
]
