"""Routing substrate: longest-prefix match and egress-PoP resolution.

The paper aggregates sampled IP flows into Origin-Destination (OD) flows
by resolving, for every flow record sampled at an ingress PoP, the
egress PoP it will leave the network at — using BGP and ISIS tables
(Feldmann et al. [10]).  We reproduce that function with:

* :class:`PrefixTable` — a longest-prefix-match table from CIDR prefixes
  to arbitrary values (here: PoP indices), implemented as per-length
  hash maps probed from longest to shortest, and
* :class:`Router` — egress resolution plus intra-domain shortest paths
  over the backbone graph, with a default route for off-net prefixes.
"""

from __future__ import annotations

from typing import Generic, Iterable, TypeVar

import numpy as np

from repro.net.addressing import IPV4_BITS, Prefix, mask_low_bits
from repro.net.topology import Topology

__all__ = ["PrefixTable", "Router"]

V = TypeVar("V")


class PrefixTable(Generic[V]):
    """Longest-prefix-match table.

    Entries are stored in one dict per prefix length; lookup masks the
    address at each populated length from /32 downwards and returns the
    first hit.  This is O(number of distinct lengths) per lookup, which
    for our per-PoP /16 allocation is effectively O(1).
    """

    def __init__(self) -> None:
        self._tables: dict[int, dict[int, V]] = {}
        self._lengths: list[int] = []  # sorted descending
        self._arrays: dict[int, tuple[np.ndarray, list[V]]] | None = None

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def add(self, prefix: Prefix, value: V) -> None:
        """Insert (or replace) a route for ``prefix``."""
        table = self._tables.get(prefix.length)
        if table is None:
            table = self._tables[prefix.length] = {}
            self._lengths = sorted(self._tables, reverse=True)
        table[prefix.network] = value
        self._arrays = None

    def remove(self, prefix: Prefix) -> None:
        """Remove the route for ``prefix`` (KeyError if absent)."""
        table = self._tables[prefix.length]
        del table[prefix.network]
        if not table:
            del self._tables[prefix.length]
            self._lengths = sorted(self._tables, reverse=True)
        self._arrays = None

    def lookup(self, ip: int) -> V | None:
        """Longest-prefix match; None when no route covers ``ip``."""
        for length in self._lengths:
            key = mask_low_bits(ip, IPV4_BITS - length)
            table = self._tables[length]
            if key in table:
                return table[key]
        return None

    def _length_arrays(self) -> dict[int, tuple[np.ndarray, list[V]]]:
        """Per-length (sorted networks, values) lookup tables, cached.

        Rebuilt lazily after any :meth:`add`/:meth:`remove`; backs the
        vectorised lookups below.
        """
        if self._arrays is None:
            self._arrays = {}
            for length, table in self._tables.items():
                networks = np.fromiter(table, dtype=np.int64, count=len(table))
                order = np.argsort(networks)
                networks = networks[order]
                values = [table[int(n)] for n in networks]
                self._arrays[length] = (networks, values)
        return self._arrays

    def lookup_indices(self, ips: np.ndarray) -> tuple[np.ndarray, list[V]]:
        """Vectorised longest-prefix match over an address array.

        Returns ``(indices, values)``: ``values[indices[i]]`` is the
        matched route for ``ips[i]``, with index -1 for unrouted
        addresses.  Each populated prefix length costs one masked
        ``searchsorted`` over that length's sorted networks — no
        per-address Python dispatch.
        """
        arr = np.asarray(ips, dtype=np.int64)
        indices = np.full(len(arr), -1, dtype=np.int64)
        arrays = self._length_arrays()
        flat_values: list[V] = []
        offset = 0
        unresolved = np.ones(len(arr), dtype=bool)
        for length in self._lengths:
            if not unresolved.any():
                break
            networks, values = arrays[length]
            shift = IPV4_BITS - length
            candidates = np.flatnonzero(unresolved)
            masked = mask_low_bits(arr[candidates], shift)
            pos = np.searchsorted(networks, masked)
            pos[pos == len(networks)] = 0  # any in-range slot; hit check below
            hit = networks[pos] == masked
            matched = candidates[hit]
            indices[matched] = offset + pos[hit]
            unresolved[matched] = False
            flat_values.extend(values)
            offset += len(values)
        return indices, flat_values

    def lookup_int_many(self, ips: np.ndarray, default: int) -> np.ndarray:
        """Vectorised lookup when the table's values are integers.

        Returns an int64 array with ``default`` for unrouted addresses
        — the hot path behind :meth:`Router.egress_pops`.
        """
        indices, values = self.lookup_indices(ips)
        table = np.asarray([default] + [int(v) for v in values], dtype=np.int64)
        return table[indices + 1]

    def lookup_array(self, ips: np.ndarray, default: V) -> list[V]:
        """Vectorised lookup for an array of addresses (list of values)."""
        indices, values = self.lookup_indices(ips)
        return [values[i] if i >= 0 else default for i in indices]

    def items(self) -> Iterable[tuple[Prefix, V]]:
        """Iterate all (prefix, value) routes."""
        for length, table in self._tables.items():
            for network, value in table.items():
                yield Prefix(network, length), value


class Router:
    """Egress resolution and intra-domain paths for a backbone topology.

    Builds a :class:`PrefixTable` from each PoP's originated prefix.
    Destinations that match no PoP prefix (off-net traffic) fall back to
    ``default_egress`` — mirroring how real transit traffic exits at a
    peering PoP.
    """

    def __init__(self, topology: Topology, default_egress: int = 0) -> None:
        self.topology = topology
        self.default_egress = default_egress
        self.table: PrefixTable[int] = PrefixTable()
        for pop in topology.pops:
            self.table.add(pop.prefix, pop.index)

    def egress_pop(self, dst_ip: int) -> int:
        """Egress PoP index for a destination address."""
        hit = self.table.lookup(dst_ip)
        return self.default_egress if hit is None else hit

    def egress_pops(self, dst_ips: np.ndarray) -> np.ndarray:
        """Vectorised egress resolution.

        One masked ``searchsorted`` per populated prefix length (for the
        per-PoP /16 allocation: exactly one) instead of per-address
        Python dispatch or a mask pass per PoP.
        """
        return self.table.lookup_int_many(dst_ips, self.default_egress)

    def resolve_od(self, ingress_pop: int, dst_ip: int) -> int:
        """OD-flow index for a record sampled at ``ingress_pop``."""
        return self.topology.od_index(ingress_pop, self.egress_pop(dst_ip))

    def resolve_ods(self, ingress_pop: int, dst_ips: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`resolve_od`."""
        return ingress_pop * self.topology.n_pops + self.egress_pops(dst_ips)

    def resolve_ods_mixed(
        self, ingress_pops: np.ndarray, dst_ips: np.ndarray
    ) -> np.ndarray:
        """Vectorised OD attribution over mixed ingress PoPs.

        ``od = ingress * n_pops + egress`` — the same rule as
        :meth:`resolve_od`, applied to whole record batches; shared by
        the batch aggregator and the streaming feature stage.
        """
        return (
            np.asarray(ingress_pops, dtype=np.int64) * self.topology.n_pops
            + self.egress_pops(dst_ips)
        )

    def path(self, od: int) -> list[str]:
        """Backbone path (PoP codes) taken by an OD flow."""
        origin, destination = self.topology.od_pair(od)
        return self.topology.shortest_path(origin.code, destination.code)

    def link_load_ods(self, link: tuple[str, str]) -> list[int]:
        """All OD flows whose shortest path traverses ``link``.

        Used by outage modelling: when a link fails, the traffic of the
        OD flows routed over it shifts or disappears.
        """
        a, b = link
        ods = []
        for od in range(self.topology.n_od_flows):
            path = self.path(od)
            for u, v in zip(path, path[1:]):
                if (u, v) == (a, b) or (u, v) == (b, a):
                    ods.append(od)
                    break
        return ods
