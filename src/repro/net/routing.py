"""Routing substrate: longest-prefix match and egress-PoP resolution.

The paper aggregates sampled IP flows into Origin-Destination (OD) flows
by resolving, for every flow record sampled at an ingress PoP, the
egress PoP it will leave the network at — using BGP and ISIS tables
(Feldmann et al. [10]).  We reproduce that function with:

* :class:`PrefixTable` — a longest-prefix-match table from CIDR prefixes
  to arbitrary values (here: PoP indices), implemented as per-length
  hash maps probed from longest to shortest, and
* :class:`Router` — egress resolution plus intra-domain shortest paths
  over the backbone graph, with a default route for off-net prefixes.
"""

from __future__ import annotations

from typing import Generic, Iterable, TypeVar

import numpy as np

from repro.net.addressing import IPV4_BITS, Prefix, mask_low_bits
from repro.net.topology import Topology

__all__ = ["PrefixTable", "Router"]

V = TypeVar("V")


class PrefixTable(Generic[V]):
    """Longest-prefix-match table.

    Entries are stored in one dict per prefix length; lookup masks the
    address at each populated length from /32 downwards and returns the
    first hit.  This is O(number of distinct lengths) per lookup, which
    for our per-PoP /16 allocation is effectively O(1).
    """

    def __init__(self) -> None:
        self._tables: dict[int, dict[int, V]] = {}
        self._lengths: list[int] = []  # sorted descending

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def add(self, prefix: Prefix, value: V) -> None:
        """Insert (or replace) a route for ``prefix``."""
        table = self._tables.get(prefix.length)
        if table is None:
            table = self._tables[prefix.length] = {}
            self._lengths = sorted(self._tables, reverse=True)
        table[prefix.network] = value

    def remove(self, prefix: Prefix) -> None:
        """Remove the route for ``prefix`` (KeyError if absent)."""
        table = self._tables[prefix.length]
        del table[prefix.network]
        if not table:
            del self._tables[prefix.length]
            self._lengths = sorted(self._tables, reverse=True)

    def lookup(self, ip: int) -> V | None:
        """Longest-prefix match; None when no route covers ``ip``."""
        for length in self._lengths:
            key = mask_low_bits(ip, IPV4_BITS - length)
            table = self._tables[length]
            if key in table:
                return table[key]
        return None

    def lookup_array(self, ips: np.ndarray, default: V) -> list[V]:
        """Vectorised-ish lookup for an array of addresses."""
        return [self._fallback(self.lookup(int(ip)), default) for ip in ips]

    @staticmethod
    def _fallback(value: V | None, default: V) -> V:
        return default if value is None else value

    def items(self) -> Iterable[tuple[Prefix, V]]:
        """Iterate all (prefix, value) routes."""
        for length, table in self._tables.items():
            for network, value in table.items():
                yield Prefix(network, length), value


class Router:
    """Egress resolution and intra-domain paths for a backbone topology.

    Builds a :class:`PrefixTable` from each PoP's originated prefix.
    Destinations that match no PoP prefix (off-net traffic) fall back to
    ``default_egress`` — mirroring how real transit traffic exits at a
    peering PoP.
    """

    def __init__(self, topology: Topology, default_egress: int = 0) -> None:
        self.topology = topology
        self.default_egress = default_egress
        self.table: PrefixTable[int] = PrefixTable()
        for pop in topology.pops:
            self.table.add(pop.prefix, pop.index)

    def egress_pop(self, dst_ip: int) -> int:
        """Egress PoP index for a destination address."""
        hit = self.table.lookup(dst_ip)
        return self.default_egress if hit is None else hit

    def egress_pops(self, dst_ips: np.ndarray) -> np.ndarray:
        """Vectorised egress resolution.

        Exploits the regular /16-per-PoP allocation with a fast path:
        addresses are first matched against each PoP prefix in bulk.
        """
        result = np.full(len(dst_ips), self.default_egress, dtype=np.int64)
        arr = np.asarray(dst_ips, dtype=np.int64)
        for pop in self.topology.pops:
            result[pop.prefix.contains_array(arr)] = pop.index
        return result

    def resolve_od(self, ingress_pop: int, dst_ip: int) -> int:
        """OD-flow index for a record sampled at ``ingress_pop``."""
        return self.topology.od_index(ingress_pop, self.egress_pop(dst_ip))

    def resolve_ods(self, ingress_pop: int, dst_ips: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`resolve_od`."""
        return ingress_pop * self.topology.n_pops + self.egress_pops(dst_ips)

    def path(self, od: int) -> list[str]:
        """Backbone path (PoP codes) taken by an OD flow."""
        origin, destination = self.topology.od_pair(od)
        return self.topology.shortest_path(origin.code, destination.code)

    def link_load_ods(self, link: tuple[str, str]) -> list[int]:
        """All OD flows whose shortest path traverses ``link``.

        Used by outage modelling: when a link fails, the traffic of the
        OD flows routed over it shifts or disappears.
        """
        a, b = link
        ods = []
        for od in range(self.topology.n_od_flows):
            path = self.path(od)
            for u, v in zip(path, path[1:]):
                if (u, v) == (a, b) or (u, v) == (b, a):
                    ods.append(od)
                    break
        return ods
