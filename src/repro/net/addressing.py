"""IPv4 addressing utilities for the synthetic backbone substrate.

Addresses are represented as plain Python ints (host byte order) so that
large address populations can live in numpy arrays.  The module provides:

* parsing/formatting between dotted-quad strings and ints,
* prefix arithmetic (``Prefix``), used by the routing table and by the
  per-PoP address allocator,
* the Abilene-style anonymisation (zeroing the low 11 bits, i.e.
  truncating every address to its /21 prefix), and
* deterministic random address/port pools used by the traffic generator
  and by the anomaly-trace remapping step (the paper maps attack-trace
  addresses onto addresses seen in Abilene; we map abstract trace
  features onto pool members the same way).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "IPV4_BITS",
    "ANONYMIZATION_BITS",
    "parse_ip",
    "format_ip",
    "make_ip",
    "mask_low_bits",
    "anonymize",
    "anonymize_array",
    "Prefix",
    "AddressPool",
    "well_known_ports",
    "EPHEMERAL_PORT_START",
]

IPV4_BITS = 32

#: Abilene anonymises flow records by masking out the last 11 bits of both
#: addresses, leaving a /21 prefix (paper, Section 5).
ANONYMIZATION_BITS = 11

#: First port of the ephemeral (dynamic) range used by client stacks.
EPHEMERAL_PORT_START = 1024

_MAX_IP = (1 << IPV4_BITS) - 1


def parse_ip(text: str) -> int:
    """Parse a dotted-quad IPv4 string into an int.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format an int as a dotted-quad IPv4 string.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= _MAX_IP:
        raise ValueError(f"not a 32-bit address: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def make_ip(a: int, b: int, c: int, d: int) -> int:
    """Build an address int from four octets."""
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError("octet out of range")
    return (a << 24) | (b << 16) | (c << 8) | d


def mask_low_bits(value: int, bits: int) -> int:
    """Zero the low ``bits`` bits of ``value``."""
    if bits < 0 or bits > IPV4_BITS:
        raise ValueError("bits must be in [0, 32]")
    mask = _MAX_IP ^ ((1 << bits) - 1)
    return value & mask


def anonymize(ip: int, bits: int = ANONYMIZATION_BITS) -> int:
    """Apply Abilene-style anonymisation to a single address."""
    return mask_low_bits(ip, bits)


def anonymize_array(ips: np.ndarray, bits: int = ANONYMIZATION_BITS) -> np.ndarray:
    """Vectorised :func:`anonymize` over a numpy integer array."""
    mask = np.uint64(_MAX_IP ^ ((1 << bits) - 1))
    return (ips.astype(np.uint64) & mask).astype(ips.dtype)


@dataclass(frozen=True)
class Prefix:
    """A CIDR prefix (network address + length).

    The network address is stored already masked, so equal prefixes
    compare equal regardless of how they were constructed.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= IPV4_BITS:
            raise ValueError("prefix length out of range")
        masked = mask_low_bits(self.network, IPV4_BITS - self.length)
        object.__setattr__(self, "network", masked)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        addr, _, length = text.partition("/")
        if not length:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(parse_ip(addr), int(length))

    @property
    def size(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (IPV4_BITS - self.length)

    def contains(self, ip: int) -> bool:
        """True when ``ip`` falls inside this prefix."""
        return mask_low_bits(ip, IPV4_BITS - self.length) == self.network

    def contains_array(self, ips: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains`."""
        return anonymize_array(ips, IPV4_BITS - self.length) == self.network

    def nth(self, offset: int) -> int:
        """The ``offset``-th address inside this prefix."""
        if not 0 <= offset < self.size:
            raise ValueError("offset outside prefix")
        return self.network + offset

    def subnets(self, new_length: int) -> list["Prefix"]:
        """Split into equal subnets of ``new_length``."""
        if new_length < self.length:
            raise ValueError("cannot widen a prefix")
        step = 1 << (IPV4_BITS - new_length)
        count = 1 << (new_length - self.length)
        return [Prefix(self.network + i * step, new_length) for i in range(count)]

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"


class AddressPool:
    """A deterministic pool of host addresses drawn from a prefix.

    The traffic generator assigns each PoP a prefix and materialises a
    pool of "active hosts" from it.  Pools are deterministic given the
    seed so that a regenerated histogram for any (OD flow, bin) matches
    the one used to build the original cube.
    """

    def __init__(self, prefix: Prefix, n_hosts: int, seed: int) -> None:
        if n_hosts <= 0:
            raise ValueError("n_hosts must be positive")
        if n_hosts > prefix.size:
            raise ValueError(
                f"pool of {n_hosts} hosts does not fit in {prefix} ({prefix.size} addrs)"
            )
        self.prefix = prefix
        self.n_hosts = n_hosts
        rng = np.random.default_rng(seed)
        offsets = rng.choice(prefix.size, size=n_hosts, replace=False)
        self._addresses = (prefix.network + offsets).astype(np.int64)

    @property
    def addresses(self) -> np.ndarray:
        """All pool addresses as an int64 array (stable order)."""
        return self._addresses

    def __len__(self) -> int:
        return self.n_hosts

    def __getitem__(self, index) -> int | np.ndarray:
        return self._addresses[index]

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Uniformly sample (with replacement) ``size`` pool addresses."""
        return rng.choice(self._addresses, size=size, replace=True)


#: Port numbers of common services, used to give the synthetic port
#: distribution a realistic heavy head.  Values chosen from IANA
#: well-known assignments plus the services the paper calls out
#: (1433 = MS-SQL, targeted by the Snake/Slammer worms; 6667 = IRC and
#: 443 = HTTPS as frequent DOS targets).
_WELL_KNOWN_PORTS = (
    80, 443, 25, 53, 22, 110, 143, 123, 21, 445, 139, 1433, 3306, 6667,
    8080, 119, 179, 161, 389, 993,
)


def well_known_ports() -> np.ndarray:
    """Return the well-known service ports used by the traffic model."""
    return np.array(_WELL_KNOWN_PORTS, dtype=np.int64)
