"""Backbone topologies: Abilene and Geant.

The paper evaluates on two research backbones:

* **Abilene** — the Internet2 backbone, 11 Points of Presence (PoPs)
  across the continental US, 121 OD flows, flow export sampled 1/100,
  addresses anonymised to /21.
* **Geant** — the European research network, 22 PoPs in major European
  capitals, 484 OD flows, flow export sampled 1/1000, unanonymised.

We model each network as a graph of :class:`PoP` nodes with backbone
links (used for shortest-path routing of OD traffic) and a per-PoP
address prefix (used for egress resolution and host pools).  Link
structure follows the published Abilene map; the Geant map is a faithful
ring-and-chords approximation of the 2004 topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.net.addressing import Prefix, make_ip

__all__ = ["PoP", "Topology", "abilene", "geant", "topology_by_name"]


@dataclass(frozen=True)
class PoP:
    """A Point of Presence: one node of the backbone.

    Attributes:
        index: Dense index in ``[0, n_pops)``; OD-flow indices derive
            from PoP indices.
        code: Short router code (e.g. ``"IPLS"``).
        name: Human-readable city name.
        prefix: Address block originated behind this PoP.  All synthetic
            hosts "at" a PoP live inside its prefix, and the routing
            table resolves egress PoPs by longest-prefix match on these.
    """

    index: int
    code: str
    name: str
    prefix: Prefix


@dataclass
class Topology:
    """A backbone network: PoPs, links, and derived OD-flow indexing.

    OD flows are indexed densely as ``od = origin.index * n_pops +
    destination.index`` including the self pair (traffic entering and
    leaving at the same PoP), matching the paper's counts: 11 PoPs ->
    121 OD flows, 22 PoPs -> 484 OD flows.
    """

    name: str
    pops: list[PoP]
    links: list[tuple[str, str]]
    sampling_rate: int = 100
    anonymization_bits: int = 0
    graph: nx.Graph = field(init=False, repr=False)

    def __post_init__(self) -> None:
        codes = [pop.code for pop in self.pops]
        if len(set(codes)) != len(codes):
            raise ValueError("duplicate PoP codes")
        for i, pop in enumerate(self.pops):
            if pop.index != i:
                raise ValueError("PoP indices must be dense and ordered")
        self.graph = nx.Graph()
        self.graph.add_nodes_from(codes)
        for a, b in self.links:
            if a not in self.graph or b not in self.graph:
                raise ValueError(f"link references unknown PoP: {(a, b)}")
            self.graph.add_edge(a, b)
        if self.links and not nx.is_connected(self.graph):
            raise ValueError(f"{self.name} topology is not connected")
        self._by_code = {pop.code: pop for pop in self.pops}

    @property
    def n_pops(self) -> int:
        """Number of PoPs."""
        return len(self.pops)

    @property
    def n_od_flows(self) -> int:
        """Number of OD flows (``n_pops ** 2``, self pairs included)."""
        return self.n_pops * self.n_pops

    def pop_by_code(self, code: str) -> PoP:
        """Look a PoP up by its router code."""
        return self._by_code[code]

    def od_index(self, origin: int | str, destination: int | str) -> int:
        """Dense OD-flow index for an (origin, destination) PoP pair."""
        o = self._pop_index(origin)
        d = self._pop_index(destination)
        return o * self.n_pops + d

    def od_pair(self, od: int) -> tuple[PoP, PoP]:
        """Inverse of :meth:`od_index`."""
        if not 0 <= od < self.n_od_flows:
            raise ValueError(f"OD index out of range: {od}")
        return self.pops[od // self.n_pops], self.pops[od % self.n_pops]

    def od_pairs(self) -> list[tuple[PoP, PoP]]:
        """All OD pairs in dense index order."""
        return [(o, d) for o in self.pops for d in self.pops]

    def od_name(self, od: int) -> str:
        """Readable ``"ORIG->DEST"`` name for an OD flow."""
        origin, destination = self.od_pair(od)
        return f"{origin.code}->{destination.code}"

    def ods_with_destination(self, destination: int | str) -> list[int]:
        """All OD-flow indices terminating at ``destination``."""
        d = self._pop_index(destination)
        return [o * self.n_pops + d for o in range(self.n_pops)]

    def ods_with_origin(self, origin: int | str) -> list[int]:
        """All OD-flow indices originating at ``origin``."""
        o = self._pop_index(origin)
        return [o * self.n_pops + d for d in range(self.n_pops)]

    def shortest_path(self, origin: str, destination: str) -> list[str]:
        """Hop-count shortest path between two PoP codes."""
        return nx.shortest_path(self.graph, origin, destination)

    def _pop_index(self, pop: int | str) -> int:
        if isinstance(pop, str):
            return self._by_code[pop].index
        if not 0 <= pop < self.n_pops:
            raise ValueError(f"PoP index out of range: {pop}")
        return int(pop)


def _build(name, spec, links, sampling_rate, anonymization_bits, base_octet) -> Topology:
    pops = []
    for i, (code, city) in enumerate(spec):
        # One /16 per PoP keeps prefixes disjoint and leaves plenty of
        # room for host pools even after /21 anonymisation.
        prefix = Prefix(make_ip(base_octet, i + 1, 0, 0), 16)
        pops.append(PoP(index=i, code=code, name=city, prefix=prefix))
    return Topology(
        name=name,
        pops=pops,
        links=links,
        sampling_rate=sampling_rate,
        anonymization_bits=anonymization_bits,
    )


#: Abilene PoPs as of the paper's December 2003 measurement period.
_ABILENE_POPS = [
    ("STTL", "Seattle"),
    ("SNVA", "Sunnyvale"),
    ("LOSA", "Los Angeles"),
    ("DNVR", "Denver"),
    ("KSCY", "Kansas City"),
    ("HSTN", "Houston"),
    ("IPLS", "Indianapolis"),
    ("CHIN", "Chicago"),
    ("ATLA", "Atlanta"),
    ("WASH", "Washington"),
    ("NYCM", "New York"),
]

#: Published Abilene backbone links (OC-192 core), circa 2003.
_ABILENE_LINKS = [
    ("STTL", "SNVA"),
    ("STTL", "DNVR"),
    ("SNVA", "LOSA"),
    ("SNVA", "DNVR"),
    ("LOSA", "HSTN"),
    ("DNVR", "KSCY"),
    ("KSCY", "HSTN"),
    ("KSCY", "IPLS"),
    ("HSTN", "ATLA"),
    ("IPLS", "CHIN"),
    ("IPLS", "ATLA"),
    ("CHIN", "NYCM"),
    ("ATLA", "WASH"),
    ("WASH", "NYCM"),
]


def abilene() -> Topology:
    """The Abilene backbone: 11 PoPs, 121 OD flows, 1/100 sampling, /21 anonymisation."""
    return _build(
        "Abilene",
        _ABILENE_POPS,
        _ABILENE_LINKS,
        sampling_rate=100,
        anonymization_bits=11,
        base_octet=10,
    )


#: Geant PoPs (22 European capitals) for the November 2004 period.
_GEANT_POPS = [
    ("AT", "Vienna"),
    ("BE", "Brussels"),
    ("CH", "Geneva"),
    ("CZ", "Prague"),
    ("DE", "Frankfurt"),
    ("ES", "Madrid"),
    ("FR", "Paris"),
    ("GR", "Athens"),
    ("HR", "Zagreb"),
    ("HU", "Budapest"),
    ("IE", "Dublin"),
    ("IL", "Tel Aviv"),
    ("IT", "Milan"),
    ("LU", "Luxembourg"),
    ("NL", "Amsterdam"),
    ("PL", "Poznan"),
    ("PT", "Lisbon"),
    ("SE", "Stockholm"),
    ("SI", "Ljubljana"),
    ("SK", "Bratislava"),
    ("UK", "London"),
    ("DK", "Copenhagen"),
]

#: Approximation of the 2004 Geant core: a dense western core
#: (DE/FR/UK/NL/CH/IT) with national rings hanging off it.
_GEANT_LINKS = [
    ("UK", "FR"), ("UK", "NL"), ("UK", "IE"), ("UK", "SE"),
    ("FR", "DE"), ("FR", "ES"), ("FR", "CH"), ("FR", "LU"),
    ("DE", "NL"), ("DE", "CH"), ("DE", "AT"), ("DE", "DK"),
    ("DE", "PL"), ("DE", "CZ"), ("DE", "HU"), ("DE", "IT"),
    ("NL", "BE"), ("BE", "LU"),
    ("CH", "IT"), ("IT", "GR"), ("IT", "IL"),
    ("AT", "HU"), ("AT", "SI"), ("AT", "CZ"), ("AT", "SK"),
    ("HU", "HR"), ("SI", "HR"), ("CZ", "SK"),
    ("ES", "PT"), ("SE", "DK"), ("PL", "CZ"),
]


def geant() -> Topology:
    """The Geant backbone: 22 PoPs, 484 OD flows, 1/1000 sampling, unanonymised."""
    return _build(
        "Geant",
        _GEANT_POPS,
        _GEANT_LINKS,
        sampling_rate=1000,
        anonymization_bits=0,
        base_octet=62,
    )


def topology_by_name(name: str) -> Topology:
    """Build a registered backbone by its (case-insensitive) name.

    The lookup every consumer of a recorded artifact shares: trace
    replay, derived-column backfill, and the CLI all resolve a trace
    header's ``network`` field through here.
    """
    key = str(name).lower()
    if key == "abilene":
        return abilene()
    if key == "geant":
        return geant()
    raise ValueError(
        f"{name!r} is not a known topology (expected 'abilene' or 'geant')"
    )
