"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows a network operator (or a reader of the
paper) actually runs:

* ``generate`` — synthesise a (labeled) traffic cube and save it;
* ``detect``   — diagnose a saved or freshly generated cube, print the
  summary, optionally export CSV/JSON;
* ``inject``   — inject a chosen anomaly into a clean cube and report
  whether volume/entropy detectors catch it;
* ``stream``   — run the online pipeline (paper Section 8) over a
  synthetic flow-record trace (inline synthesis or ``--trace`` replay):
  chunked ingestion, sketch-backed per-bin entropy, streaming multiway
  detection; reports throughput;
* ``cluster``  — the sharded deployment: worker processes reduce their
  OD-flow slice into mergeable per-bin summaries, a central
  coordinator merges them and runs the same streaming diagnosis; with
  ``--trace`` every worker memory-maps the same recorded trace;
* ``run``      — run a registered end-to-end scenario
  (``repro.scenarios``) through the composable detection pipeline in
  any deployment mode (``--mode batch|stream|cluster``), inline or
  from a recorded trace;
* ``scenarios`` — inspect the scenario registry (``list``);
* ``trace``    — record and replay columnar flow-record traces:
  ``write`` materialises a synthetic trace into a single binary file,
  ``info`` prints its header, ``replay`` streams it zero-copy through
  the detection engine;
* ``quality``  — the detection-quality harness (``repro.quality``):
  ``run`` scores every registered scenario plus a fuzzed fleet against
  ground truth (precision/recall/F1/latency per detection channel,
  optionally the intensity × sketch × sampling grid), ``fuzz``
  generates seeded random workloads and cross-checks that every
  deployment mode produces identical detections on them;
* ``experiment`` — run one of the paper's experiments by name
  (``fig1``..``fig10``, ``table2``..``table8``, ``ablations``,
  ``anonymization``) and print the paper-style report.

Every command exits 0 on success; invalid input (bad arguments, missing
files, malformed cubes) exits 2 with a one-line error on stderr.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _version() -> str:
    """Package version.

    The package's own ``__version__`` wins: the documented run mode is
    uninstalled (``PYTHONPATH=src``), and installed-distribution
    metadata can belong to a bare/legacy install (or an unrelated
    distribution that happens to be named ``repro``).  Metadata is the
    fallback only if the attribute ever disappears.
    """
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - __version__ is defined
        from importlib.metadata import version

        return version("repro")

_EXPERIMENTS = {
    "fig1": "fig1_histograms",
    "fig2": "fig2_timeseries",
    "fig4": "fig4_volume_vs_entropy",
    "fig5": "fig5_detection_rate",
    "fig6": "fig6_multiflow",
    "fig7": "fig7_known_clusters",
    "fig8": "fig8_abilene_space",
    "fig9": "fig9_geant_space",
    "fig10": "fig10_cluster_selection",
    "table2": "table2_detections",
    "table3": "table3_breakdown",
    "table4": "table4_traces",
    "table5": "table5_thinning",
    "table6": "table6_label_space",
    "table7": "table7_abilene_clusters",
    "table8": "table8_geant_clusters",
    "anonymization": "anonymization_check",
}


def _parent(*adders) -> argparse.ArgumentParser:
    """A help-less parser composed of shared argument groups."""
    parser = argparse.ArgumentParser(add_help=False)
    for add in adders:
        add(parser)
    return parser


def _add_network(parser) -> None:
    parser.add_argument("--network", choices=("abilene", "geant"),
                        default="abilene")


def _add_generation(parser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-records", type=int, default=400,
                        help="records materialised per (OD flow, bin)")


def _add_warmup(parser) -> None:
    parser.add_argument("--warmup-bins", type=int, default=48,
                        help="bins accumulated from the stream before fitting")


def _add_window(parser) -> None:
    parser.add_argument("--live-bins", type=int, default=24,
                        help="bins scored after warm-up")


def _add_engine(parser) -> None:
    parser.add_argument("--chunk-records", type=int, default=8192,
                        help="ingestion chunk size (memory bound)")
    parser.add_argument("--sketch-width", type=int, default=2048)
    parser.add_argument("--exact", action="store_true",
                        help="exact histograms instead of Count-Min sketches")
    parser.add_argument("--refit-every", type=int, default=12,
                        help="clean bins between model refits (0 freezes)")
    parser.add_argument("--threads", type=int, default=None,
                        help="grouped-reduction kernel threads (any value is "
                        "bit-identical to the single-threaded reference; "
                        "default 1, except cluster workers which auto-size "
                        "to cpus // shards)")
    parser.add_argument("--alpha", type=float, default=0.999)
    parser.add_argument("--components", type=int, default=10)
    parser.add_argument("--json", help="export the diagnosis-report JSON here")


def _add_cluster_knobs(parser) -> None:
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes (each owns an OD-flow slice "
                        "or, on a shared trace, a row stripe)")
    parser.add_argument("--queue-depth", type=int, default=16,
                        help="in-flight summaries bound (back-pressure)")
    parser.add_argument("--transport", choices=("pipe", "tcp"),
                        default="pipe",
                        help="worker links: local multiprocessing pipes "
                        "(default) or framed TCP sockets")
    parser.add_argument("--listen", metavar="HOST:PORT",
                        help="with --transport tcp: bind here and wait for "
                        "external `repro worker --connect` processes "
                        "instead of spawning local ones")
    parser.add_argument("--tiers", metavar="AxB",
                        help="aggregator tier layout: A aggregators each "
                        "tree-merging B workers (A*B shards total; "
                        "overrides --shards)")


def _add_resilience(parser) -> None:
    group = parser.add_argument_group(
        "resilience", "worker supervision, checkpointing, fault injection "
        "(cluster mode)"
    )
    group.add_argument("--max-retries", type=int, default=None,
                       help="restarts allowed per shard before giving up "
                       "(default 2)")
    group.add_argument("--backoff", type=float, default=None, metavar="SECS",
                       help="initial restart backoff, doubled per retry "
                       "(default 0.1)")
    group.add_argument("--bin-deadline", type=float, default=None,
                       metavar="SECS",
                       help="per-shard progress deadline; a shard silent this "
                       "long is treated as failed")
    group.add_argument("--run-deadline", type=float, default=None,
                       metavar="SECS",
                       help="wall-clock deadline for the whole run")
    group.add_argument("--on-fault", choices=("strict", "degrade"),
                       default=None,
                       help="after retries are exhausted: abort the run "
                       "(strict, default) or complete with the dead shard's "
                       "bins as gaps and the report flagged degraded")
    group.add_argument("--checkpoint", metavar="PATH",
                       help="spill every merged bin to this file as it closes")
    group.add_argument("--resume", action="store_true",
                       help="replay --checkpoint before spawning workers")
    group.add_argument("--chaos", metavar="SPEC",
                       help="deterministic fault injection, e.g. "
                       "'kill:shard=1,bin=9' or 'seeded:seed=7,count=2' "
                       "(kinds: kill, stall, corrupt, exit-after-close)")


def _add_telemetry(parser) -> None:
    parser.add_argument("--telemetry", metavar="PATH",
                        help="record per-stage spans/counters/resources and "
                        "export them as JSONL here (see `repro stats`)")
    parser.add_argument("--progress", action="store_true",
                        help="bins/s + ETA line on stderr (stdout untouched)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing).

    The network/bin-grid/seed/sketch flags shared by the record-level
    commands (``stream``, ``cluster``, ``trace``, ``run``) are defined
    once in parent parsers rather than copied per subcommand.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Mining Anomalies Using Traffic Feature Distributions'",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    net_parent = _parent(_add_network)
    engine_parent = _parent(_add_engine)
    stream_parent = _parent(_add_network, _add_generation, _add_warmup,
                            _add_window, _add_engine, _add_telemetry)

    gen = sub.add_parser("generate", help="synthesise a traffic cube",
                         parents=[net_parent])
    gen.add_argument("--weeks", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--clean", action="store_true", help="no anomaly schedule")
    gen.add_argument("--output", required=True, help="output .npz path")

    det = sub.add_parser("detect", help="diagnose a cube", parents=[net_parent])
    det.add_argument("--cube", help=".npz cube (omit to generate a labeled one)")
    det.add_argument("--weeks", type=float, default=1.0)
    det.add_argument("--seed", type=int, default=0)
    det.add_argument("--alpha", type=float, default=0.999)
    det.add_argument("--clusters", type=int, default=10)
    det.add_argument("--csv", help="export per-anomaly CSV here")
    det.add_argument("--json", help="export JSON summary here")

    inj = sub.add_parser("inject", help="inject one anomaly and score it")
    inj.add_argument(
        "--type",
        choices=("alpha", "dos", "ddos", "flash_crowd", "port_scan", "network_scan",
                 "worm", "point_multipoint"),
        default="worm",
    )
    inj.add_argument("--pps", type=float, default=141.0)
    inj.add_argument("--od", type=int, default=5)
    inj.add_argument("--bin", type=int, default=400, dest="target_bin")
    inj.add_argument("--thin", type=int, default=1)
    inj.add_argument("--days", type=float, default=3.0)
    inj.add_argument("--seed", type=int, default=7)
    inj.add_argument("--alpha", type=float, default=0.999)

    stream = sub.add_parser(
        "stream", help="run the streaming engine on a synthetic trace",
        parents=[stream_parent],
    )
    stream.add_argument("--trace", help="replay a recorded trace file instead of "
                        "generating records inline")

    cluster = sub.add_parser(
        "cluster", help="run the sharded multi-process engine on a synthetic trace",
        parents=[stream_parent],
    )
    cluster.add_argument("--trace", help="shared trace file all workers memory-map "
                         "(instead of per-worker record generation)")
    _add_cluster_knobs(cluster)
    _add_resilience(cluster)

    worker = sub.add_parser(
        "worker",
        help="serve shard work to a remote `repro cluster --listen` coordinator",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address announced by "
                        "`repro cluster --transport tcp --listen`")
    worker.add_argument("--once", action="store_true",
                        help="exit after serving one shard assignment "
                        "(default: reconnect and serve until the "
                        "coordinator goes away)")

    run = sub.add_parser(
        "run", help="run a registered scenario in any deployment mode",
        parents=[engine_parent, _parent(_add_telemetry)],
    )
    run.add_argument("scenario", help="registered scenario name "
                     "(see `repro scenarios list`)")
    run.add_argument("--mode", choices=("batch", "stream", "cluster"),
                     default="stream", help="deployment mode (default: stream)")
    run.add_argument("--trace", help="replay the scenario from this recorded "
                     "trace instead of generating records inline")
    run.add_argument("--save-trace", help="record the scenario's stream to this "
                     "trace file and run from it")
    run.add_argument("--network", choices=("abilene", "geant"), default=None,
                     help="override the scenario's network")
    run.add_argument("--bins", type=int, default=None,
                     help="override the scenario's total bin count")
    run.add_argument("--warmup-bins", type=int, default=None,
                     help="override the scenario's warm-up split")
    run.add_argument("--max-records", type=int, default=None,
                     help="override the scenario's per-(OD, bin) record cap")
    run.add_argument("--seed", type=int, default=0)
    _add_cluster_knobs(run)
    _add_resilience(run)

    scen = sub.add_parser("scenarios", help="inspect the scenario registry")
    scen_sub = scen.add_subparsers(dest="scenarios_command", required=True)
    scen_list = scen_sub.add_parser("list", help="list registered scenarios")
    scen_list.add_argument("--names", action="store_true",
                           help="print bare names only (for scripting)")

    trace = sub.add_parser(
        "trace", help="record and replay columnar flow-record traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    tw = trace_sub.add_parser(
        "write", help="materialise a synthetic trace into a columnar file",
        parents=[_parent(_add_network, _add_generation)],
    )
    tw.add_argument("--bins", type=int, default=72, help="bins to materialise")
    tw.add_argument("--bin-group", type=int, default=64,
                    help="bins materialised per generation pass (memory bound)")
    tw.add_argument("--output", required=True, help="output trace path")
    tw.add_argument("--derive", action="store_true",
                    help="also store the derived detection columns (resolved "
                    "OD + per-feature run ids) for precomputed replay")

    ti = trace_sub.add_parser("info", help="print a trace file's header")
    ti.add_argument("path")
    ti.add_argument("--verify", action="store_true",
                    help="recompute per-column checksums against the header "
                    "(nonzero exit on mismatch)")
    ti.add_argument("--allow-partial", action="store_true",
                    help="recover the complete leading bins of a truncated "
                    "trace instead of failing")

    tu = trace_sub.add_parser(
        "upgrade", help="backfill the derived detection columns into a trace"
    )
    tu.add_argument("path")
    tu.add_argument("--output", help="write the upgraded trace here instead "
                    "of replacing the input atomically in place")

    tr = trace_sub.add_parser(
        "replay", help="replay a trace zero-copy through the streaming engine",
        parents=[_parent(_add_warmup, _add_engine, _add_telemetry)],
    )
    tr.add_argument("path")
    tr.add_argument("--allow-partial", action="store_true",
                    help="replay the complete leading bins of a truncated "
                    "trace instead of failing")
    tr.add_argument("--precomputed", action="store_true",
                    help="exact detection straight from the trace's derived "
                    "columns (implies --exact; derives on the fly for "
                    "version-1 traces)")
    tr.add_argument("--readahead", action="store_true",
                    help="advise the kernel to page the trace in ahead of the "
                    "replay (cold-cache variance)")

    quality = sub.add_parser(
        "quality", help="detection-quality harness: labeled scoring and fuzzing"
    )
    quality_sub = quality.add_subparsers(dest="quality_command", required=True)

    qr = quality_sub.add_parser(
        "run", help="score registered + fuzzed scenarios against ground truth"
    )
    qr.add_argument("--seed", type=int, default=7,
                    help="quality seed (default matches the committed baseline)")
    qr.add_argument("--fuzz", type=int, default=10,
                    help="fuzzed workloads scored alongside the registered set")
    qr.add_argument("--mode", choices=("batch", "stream", "cluster"),
                    default="stream", help="deployment mode (default: stream)")
    qr.add_argument("--tolerance", type=int, default=1,
                    help="bin slack of the detection-to-event matching window")
    qr.add_argument("--grid", action="store_true",
                    help="also sweep the intensity x sketch x sampling grid")
    qr.add_argument("--json", help="export the quality payload JSON here")

    qf = quality_sub.add_parser(
        "fuzz", help="fuzz seeded workloads and cross-check mode parity"
    )
    qf.add_argument("--n", type=int, default=10, help="workloads to fuzz")
    qf.add_argument("--seed", type=int, default=0)
    qf.add_argument("--modes", default="batch,stream,cluster",
                    help="comma-separated deployment modes to cross-check")
    qf.add_argument("--intensity", type=float, default=1.0,
                    help="intensity multiplier on every fuzzed event")
    qf.add_argument("--sampling", type=int, default=1,
                    help="1-in-N trace thinning applied to fuzzed events")
    qf.add_argument("--shards", type=int, default=2,
                    help="cluster-mode worker count")
    qf.add_argument("--json", help="export per-workload scores + parity here")

    stats = sub.add_parser(
        "stats", help="render a telemetry JSONL export as per-stage tables"
    )
    stats.add_argument("path", help="JSONL file written by --telemetry")
    stats.add_argument("--prometheus", action="store_true",
                       help="print a Prometheus text exposition instead")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS) + ["ablations"])
    return parser


def _cmd_generate(args) -> int:
    from repro.datasets.labeled import abilene_dataset, geant_dataset
    from repro.flows.binning import TimeBins
    from repro.io import save_cube
    from repro.net.topology import abilene, geant
    from repro.traffic.generator import TrafficGenerator

    if args.clean:
        topo = abilene() if args.network == "abilene" else geant()
        cube = TrafficGenerator(
            topo, TimeBins.for_weeks(args.weeks), seed=args.seed
        ).generate()
    else:
        maker = abilene_dataset if args.network == "abilene" else geant_dataset
        cube = maker(weeks=args.weeks, seed=args.seed).cube
    path = save_cube(cube, args.output)
    print(f"saved {cube.network} cube ({cube.n_bins} bins x {cube.n_od_flows} ODs) to {path}")
    return 0


def _cmd_detect(args) -> int:
    from repro.core.detector import AnomalyDiagnosis
    from repro.io import load_cube, write_report_csv, write_report_json

    labels = None
    if args.cube:
        cube = load_cube(args.cube)
    else:
        from repro.datasets.labeled import abilene_dataset, geant_dataset

        maker = abilene_dataset if args.network == "abilene" else geant_dataset
        data = maker(weeks=args.weeks, seed=args.seed)
        cube = data.cube
        labels = data.labels_by_bin
    diag = AnomalyDiagnosis(alpha=args.alpha, n_clusters=args.clusters)
    report = diag.diagnose(cube, labels_by_bin=labels)
    counts = report.counts()
    print(
        f"detections: total={counts['total']} volume_only={counts['volume_only']} "
        f"entropy_only={counts['entropy_only']} both={counts['both']}"
    )
    for summary in report.clusters:
        line = f"cluster size={summary.size:<5} signature={''.join(summary.signature)}"
        if summary.plurality_label:
            line += f" plurality={summary.plurality_label}"
        print(line)
    if args.csv:
        print(f"wrote {write_report_csv(report, args.csv)}")
    if args.json:
        print(f"wrote {write_report_json(report, args.json)}")
    return 0


def _cmd_inject(args) -> int:
    from repro.anomalies.builders import BUILDERS
    from repro.anomalies.injector import InjectionScorer
    from repro.flows.binning import TimeBins
    from repro.net.topology import abilene
    from repro.traffic.generator import TrafficGenerator

    generator = TrafficGenerator(
        abilene(), TimeBins.for_days(args.days), seed=args.seed
    )
    cube = generator.generate()
    scorer = InjectionScorer(cube, generator, alphas=(args.alpha,))
    trace = BUILDERS[args.type](np.random.default_rng(args.seed), pps=args.pps)
    if args.thin > 1:
        trace = trace.thin(args.thin)
    target_bin = min(args.target_bin, cube.n_bins - 1)
    out = scorer.score(target_bin, [(args.od, trace)], alpha=args.alpha)
    share = 100 * trace.pps / (trace.pps + cube.mean_od_pps())
    print(
        f"{args.type} at {trace.pps:.4g} pps ({share:.3g}% of the mean OD flow) "
        f"into OD {args.od}, bin {target_bin}:"
    )
    print(f"  volume detection:  {out.detected_volume}")
    print(f"  entropy detection: {out.detected_entropy}")
    return 0


def _print_verdict(topo, verdict) -> None:
    """One detection line, shared by the stream and cluster commands."""
    if not verdict.detected:
        return
    kind = "+".join(
        k for k, hit in (
            ("entropy", verdict.detected_by_entropy),
            ("volume", verdict.detected_by_volume),
        ) if hit
    )
    od = verdict.primary_od
    where = topo.od_name(od) if od is not None else "unidentified"
    print(
        f"  bin {verdict.bin}: {kind} detection "
        f"(spe={verdict.spe_entropy:.3g}) flow={where} "
        f"cluster={verdict.cluster}"
    )


def _print_cluster_health(result) -> None:
    """Supervision outcome of a cluster run (silent on a clean run)."""
    if not (result.degraded or result.restarts):
        return
    meta = result.report.meta
    state = "DEGRADED" if result.degraded else "recovered"
    print(f"resilience: {state} ({result.restarts} restart(s))")
    for shard, health in sorted(meta.get("shard_health", {}).items()):
        line = f"  shard {shard}: {health['status']}"
        if health.get("restarts"):
            line += f", {health['restarts']} restart(s)"
        if health.get("gap_bins"):
            runs = ", ".join(
                f"{lo}-{hi}" if lo != hi else str(lo)
                for lo, hi in health["gap_bins"]
            )
            line += f", gap bins {runs}"
        if health.get("faults"):
            line += f" ({health['faults'][-1]})"
        print(line)


def _print_detection_counts(report) -> None:
    """Table-2 style summary line of a streaming/cluster report."""
    counts = report.counts()
    print(
        f"detections: total={counts['total']} volume_only={counts['volume_only']} "
        f"entropy_only={counts['entropy_only']} both={counts['both']} "
        f"clusters={report.classifier.n_clusters}"
    )


def _stream_config(args):
    """The StreamConfig shared by the stream/cluster/replay commands."""
    from repro.stream import StreamConfig

    return StreamConfig(
        warmup_bins=args.warmup_bins,
        refit_every=args.refit_every,
        n_components=args.components,
        alpha=args.alpha,
        sketch_width=args.sketch_width,
        exact_histograms=args.exact,
        chunk_records=args.chunk_records,
        threads=args.threads or 1,
    )


def _resilience_policy(args):
    """A ResiliencePolicy when any supervision flag was given, else None.

    ``None`` lets the runner use its defaults and lets the pipeline
    reject cluster-only flags in in-process modes with a clear error.
    """
    knobs = {
        "max_retries": args.max_retries,
        "backoff_s": args.backoff,
        "bin_deadline_s": args.bin_deadline,
        "run_deadline_s": args.run_deadline,
        "on_exhaustion": args.on_fault,
    }
    given = {k: v for k, v in knobs.items() if v is not None}
    if not given:
        return None
    from repro.resilience import ResiliencePolicy

    return ResiliencePolicy(**given)


def _telemetry_begin(args, total_bins=None):
    """Session + progress meter when ``--telemetry``/``--progress`` ask.

    Returns ``(session, meter)`` — both None when telemetry is off, so
    callers pay nothing on the default path.
    """
    wants = bool(getattr(args, "telemetry", None)) or getattr(args, "progress", False)
    if not wants:
        return None, None
    from repro import telemetry
    from repro.telemetry.progress import ProgressMeter

    session = telemetry.enable()
    meter = None
    if getattr(args, "progress", False):
        meter = ProgressMeter(total_bins=total_bins).start()
    return session, meter


def _telemetry_end(args, session, meter, run_info=None) -> None:
    """Export (when ``--telemetry PATH``) and tear the session down."""
    if meter is not None:
        meter.close()
    if session is None:
        return
    from repro import telemetry
    from repro.telemetry.export import write_jsonl

    try:
        if getattr(args, "telemetry", None):
            path = write_jsonl(args.telemetry, session.snapshot(), run_info)
            print(f"wrote {path}")
    finally:
        telemetry.disable()


def _drive_engine(topo, engine, source, json_path, verb="processed"):
    """Run a streaming engine over a source, printing verdicts + summary.

    The shared tail of the ``stream`` and ``trace replay`` commands:
    events() re-chunks, ingests, and flushes the final bin, so the
    per-detection lines cover every scored bin.  Returns
    ``(report, elapsed)`` so callers can stamp telemetry exports.
    """
    import time

    from repro import telemetry as tel

    start = time.perf_counter()
    for verdict in engine.events(tel.timed_iter(source, "stage.source")):
        _print_verdict(topo, verdict)
    with tel.span("stage.report"):
        report = engine.finish()
    elapsed = time.perf_counter() - start
    rate = report.n_records / elapsed if elapsed > 0 else float("inf")
    print(
        f"{verb} {report.n_records} records -> {report.n_bins_scored} scored bins "
        f"in {elapsed:.2f}s ({rate:,.0f} records/s)"
    )
    _print_detection_counts(report)
    if json_path:
        from repro.io import write_report_json

        print(f"wrote {write_report_json(report.to_diagnosis_report(), json_path)}")
    return report, elapsed


def _cmd_stream(args) -> int:
    from repro.net.topology import abilene, geant
    from repro.stream import StreamingDetectionEngine, synthetic_record_stream

    topo = abilene() if args.network == "abilene" else geant()
    n_bins = args.warmup_bins + args.live_bins
    engine = StreamingDetectionEngine(topo, _stream_config(args))
    mode = "exact histograms" if args.exact else f"CM sketches (w={args.sketch_width})"
    origin = f"trace {args.trace}" if args.trace else "inline synthesis"
    print(
        f"streaming {topo.name}: {n_bins} bins x {topo.n_od_flows} OD flows, "
        f"{mode}, warm-up {args.warmup_bins} bins, source: {origin}"
    )
    if args.trace:
        from repro.io.trace import TraceReader

        reader = TraceReader(args.trace)
        reader.info.ensure_compatible(
            network=topo.name,
            min_bins=n_bins,
            bin_width=engine.stage.bin_width,
            start=engine.stage.start,
        )
        source = reader.iter_chunks(
            chunk_records=args.chunk_records, bins=range(n_bins)
        )
    else:
        from repro.flows.binning import TimeBins
        from repro.traffic.generator import TrafficGenerator

        generator = TrafficGenerator(topo, TimeBins(n_bins=n_bins), seed=args.seed)
        source = synthetic_record_stream(
            generator,
            range(n_bins),
            max_records_per_od=args.max_records,
            seed=args.seed,
        )
    session, meter = _telemetry_begin(args, total_bins=n_bins)
    run_info = {"command": "stream", "mode": "stream", "network": args.network}
    try:
        report, elapsed = _drive_engine(topo, engine, source, args.json)
        run_info.update({"n_records": report.n_records, "elapsed_s": elapsed})
        return 0
    finally:
        _telemetry_end(args, session, meter, run_info)


def _cmd_cluster(args) -> int:
    from repro.cluster import run_cluster
    from repro.net.topology import abilene, geant

    if args.shards < 1:
        raise ValueError("--shards must be >= 1")
    topo = abilene() if args.network == "abilene" else geant()
    n_bins = args.warmup_bins + args.live_bins
    config = _stream_config(args)
    n_workers = args.shards
    layout = "flat"
    if args.tiers:
        from repro.cluster import parse_tiers

        n_aggs, fan_in = parse_tiers(args.tiers)
        n_workers = n_aggs * fan_in
        layout = f"{n_aggs} aggregators x {fan_in} workers"
    mode = "exact histograms" if args.exact else f"CM sketches (w={args.sketch_width})"
    origin = f"shared trace {args.trace}" if args.trace else "per-worker synthesis"
    print(
        f"clustering {topo.name}: {n_workers} shards ({layout}, "
        f"{args.transport} transport), {n_bins} bins, {mode}, "
        f"warm-up {args.warmup_bins} bins, source: {origin}"
    )
    if args.listen:
        print(f"awaiting workers on {args.listen} "
              f"(start them with: repro worker --connect HOST:PORT)")

    session, meter = _telemetry_begin(args, total_bins=n_bins)
    run_info = {"command": "cluster", "mode": "cluster", "network": args.network,
                "n_shards": n_workers}
    try:
        result = run_cluster(
            network=args.network,
            n_bins=n_bins,
            seed=args.seed,
            n_shards=args.shards,
            config=config,
            max_records_per_od=args.max_records,
            queue_depth=args.queue_depth,
            on_detection=lambda verdict: _print_verdict(topo, verdict),
            trace_path=args.trace,
            resilience=_resilience_policy(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
            chaos=args.chaos,
            transport=args.transport,
            listen=args.listen,
            tiers=args.tiers,
            worker_threads=args.threads,
        )
        run_info.update({"n_records": result.n_records,
                         "elapsed_s": result.elapsed})
    finally:
        _telemetry_end(args, session, meter, run_info)
    report = result.report
    balance = ", ".join(
        f"shard {s}: {n}" for s, n in sorted(result.shard_records.items())
    )
    print(
        f"processed {result.n_records} records -> {report.n_bins_scored} scored bins "
        f"in {result.elapsed:.2f}s ({result.records_per_sec:,.0f} records/s)"
    )
    print(f"shard load: {balance}")
    _print_cluster_health(result)
    _print_detection_counts(report)
    if args.json:
        from repro.io import write_report_json

        print(f"wrote {write_report_json(report.to_diagnosis_report(), args.json)}")
    return 0


def _cmd_worker(args) -> int:
    from repro.cluster.transport import parse_hostport, serve

    host, port = parse_hostport(args.connect)
    print(f"connecting to coordinator at {host}:{port}"
          + (" (single shard)" if args.once else ""))
    served = serve((host, port), once=args.once)
    print(f"served {served} shard assignment(s)")
    return 0


def _cmd_run(args) -> int:
    from repro.pipeline import DetectionPipeline, ScenarioSource, TraceSource
    from repro.scenarios import get_scenario

    scenario = get_scenario(args.scenario)
    if args.trace and args.save_trace:
        raise ValueError("--trace and --save-trace are mutually exclusive")
    if args.shards < 1:
        raise ValueError("--shards must be >= 1")

    labels_by_bin = None
    if args.trace:
        source = TraceSource(args.trace, network=args.network, n_bins=args.bins)
        recorded = source.info.meta.get("scenario")
        if recorded is not None and recorded != scenario.name:
            raise ValueError(
                f"trace {args.trace} records scenario {recorded!r}, "
                f"not {scenario.name!r}"
            )
        if recorded is not None and "seed" in source.info.meta:
            # The header carries everything the schedule is a function
            # of, so replayed reports keep their ground-truth labels.
            events = scenario.events_for(
                source.topology,
                n_bins=source.info.n_bins,
                seed=int(source.info.meta["seed"]),
            )
            labels_by_bin = {e.bin: e.label for e in events}
    else:
        source = ScenarioSource(
            scenario,
            network=args.network,
            n_bins=args.bins,
            seed=args.seed,
            max_records_per_od=args.max_records,
        )
        labels_by_bin = source.labels_by_bin()
        if args.save_trace:
            info = source.write_trace(args.save_trace)
            size_mb = info.path.stat().st_size / 1e6
            print(f"recorded {info.n_records} records ({size_mb:.1f} MB) "
                  f"to {info.path}")
            source = TraceSource(args.save_trace)

    n_bins = source.spec.n_bins
    warmup = args.warmup_bins
    if warmup is None:
        # Same proportional rule the schedule builder applies, so the
        # scenario's events always land in the scored window.
        warmup = scenario.scaled_warmup(n_bins)
    warmup = max(1, min(warmup, n_bins - 1))
    args.warmup_bins = warmup  # _stream_config reads it
    config = _stream_config(args)

    topo = source.topology
    mode_desc = "exact histograms" if args.exact else f"CM sketches (w={args.sketch_width})"
    print(
        f"scenario {scenario.name} [{args.mode}] on {topo.name}: "
        f"{source.spec.n_bins} bins x {topo.n_od_flows} OD flows, "
        f"{mode_desc}, warm-up {warmup} bins, "
        f"source: {source.provenance['source']}"
    )
    session, meter = _telemetry_begin(args, total_bins=n_bins)
    run_info = {"command": "run", "scenario": scenario.name, "mode": args.mode,
                "network": topo.name}
    if args.mode == "cluster":
        run_info["n_shards"] = args.shards
    try:
        result = DetectionPipeline(config).run(
            source,
            mode=args.mode,
            n_shards=args.shards,
            queue_depth=args.queue_depth,
            on_detection=lambda verdict: _print_verdict(topo, verdict),
            meta={"scenario": scenario.name},
            resilience=_resilience_policy(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
            chaos=args.chaos,
            transport=args.transport,
            listen=args.listen,
            tiers=args.tiers,
            # --threads also configures in-process kernels for
            # batch/stream modes; only cluster mode treats it as a
            # per-worker override.
            worker_threads=args.threads if args.mode == "cluster" else None,
        )
        run_info.update({"n_records": result.n_records,
                         "elapsed_s": result.elapsed})
    finally:
        _telemetry_end(args, session, meter, run_info)
    report = result.report
    print(
        f"processed {result.n_records} records -> {report.n_bins_scored} "
        f"scored bins in {result.elapsed:.2f}s "
        f"({result.records_per_sec:,.0f} records/s)"
    )
    if result.shard_records:
        balance = ", ".join(
            f"shard {s}: {n}" for s, n in sorted(result.shard_records.items())
        )
        print(f"shard load: {balance}")
    _print_cluster_health(result)
    _print_detection_counts(report)
    if args.json:
        from repro.io import write_report_json

        diagnosis = report.to_diagnosis_report(labels_by_bin=labels_by_bin)
        print(f"wrote {write_report_json(diagnosis, args.json)}")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.scenarios import SCENARIOS, scenario_names

    if args.names:
        for name in scenario_names():
            print(name)
        return 0
    width = max(len(name) for name in scenario_names())
    for name in scenario_names():
        scenario = SCENARIOS[name]
        print(
            f"{name:<{width}}  {scenario.network}, {scenario.n_bins} bins "
            f"(warm-up {scenario.warmup_bins}) — {scenario.description}"
        )
    return 0


def _cmd_trace(args) -> int:
    import time

    if args.trace_command == "write":
        from repro.flows.binning import TimeBins
        from repro.io.trace import write_trace
        from repro.net.topology import topology_by_name
        from repro.traffic.generator import TrafficGenerator

        topo = topology_by_name(args.network)
        generator = TrafficGenerator(
            topo, TimeBins(n_bins=args.bins), seed=args.seed
        )
        start = time.perf_counter()
        info = write_trace(
            args.output,
            generator,
            max_records_per_od=args.max_records,
            seed=args.seed,
            bin_group=args.bin_group,
            derive=args.derive,
        )
        elapsed = time.perf_counter() - start
        rate = info.n_records / elapsed if elapsed > 0 else float("inf")
        size_mb = info.path.stat().st_size / 1e6
        columns = " + derived columns" if args.derive else ""
        print(
            f"wrote {info.n_records} records ({info.n_bins} bins x "
            f"{topo.n_od_flows} OD flows, {size_mb:.1f} MB{columns}) to "
            f"{info.path} in {elapsed:.2f}s ({rate:,.0f} records/s)"
        )
        return 0

    if args.trace_command == "upgrade":
        from repro.io.trace import trace_info, upgrade_trace

        before = trace_info(args.path)
        start = time.perf_counter()
        info = upgrade_trace(args.path, output=args.output)
        elapsed = time.perf_counter() - start
        if before.derived is not None:
            print(f"{before.path} already carries the derived columns "
                  f"(version {before.version}); nothing to do")
            return 0
        size_mb = info.path.stat().st_size / 1e6
        print(
            f"upgraded {before.path} -> {info.path} "
            f"(version {before.version} -> {info.version}, "
            f"{info.n_records} records, {size_mb:.1f} MB) in {elapsed:.2f}s"
        )
        return 0

    if args.trace_command == "info":
        from repro.io.trace import trace_info, verify_trace

        info = trace_info(args.path, allow_partial=args.allow_partial)
        size_mb = info.path.stat().st_size / 1e6
        print(f"{info.path}: {size_mb:.1f} MB")
        print(f"  records : {info.n_records}")
        if info.truncated:
            print(f"  TRUNCATED: header declares {info.declared_records} "
                  f"records; {info.dropped_records} dropped, "
                  f"{info.n_bins} complete bins recovered")
        print(f"  bins    : {info.n_bins} x {info.bins.width:.0f}s "
              f"(start {info.bins.start:.0f})")
        print(f"  network : {info.network or 'unknown'}")
        derived = (f" (+{len(info.derived['columns'])} derived detection "
                   f"columns)" if info.derived else "")
        print(f"  version : {info.version}{derived}")
        counts = info.bin_counts
        print(f"  per bin : min {int(counts.min())}, "
              f"median {int(np.median(counts))}, max {int(counts.max())}")
        for key in sorted(info.meta):
            print(f"  meta.{key}: {info.meta[key]}")
        if args.verify:
            results = verify_trace(args.path)
            bad = sorted(k for k, v in results.items() if not v["ok"])
            for name in sorted(results):
                r = results[name]
                status = "ok" if r["ok"] else (
                    f"MISMATCH (stored {r['stored']:#010x}, "
                    f"computed {r['computed']:#010x})"
                )
                print(f"  crc.{name}: {status}")
            if bad:
                print(f"verification FAILED: {', '.join(bad)}")
                return 1
            print("verification passed: all column checksums match")
        return 0

    # replay
    from repro.io.trace import TraceReader
    from repro.net.topology import topology_by_name
    from repro.stream import StreamingDetectionEngine

    if args.precomputed:
        args.exact = True  # the precomputed path is exact by construction
    reader = TraceReader(
        args.path, allow_partial=args.allow_partial, readahead=args.readahead
    )
    topo = topology_by_name(reader.network)
    # Replay adopts the trace's own bin grid (recorded in the header).
    engine = StreamingDetectionEngine(
        topo, _stream_config(args),
        bin_width=reader.bins.width, start=reader.bins.start,
    )
    if args.precomputed:
        mode = ("precomputed columns" if reader.has_derived
                else "precomputed (derived on the fly)")
    elif args.exact:
        mode = "exact histograms"
    else:
        mode = f"CM sketches (w={args.sketch_width})"
    print(
        f"replaying {reader.path} ({reader.n_records} records, "
        f"{reader.n_bins} bins, {topo.name}): {mode}, "
        f"warm-up {args.warmup_bins} bins"
    )
    if reader.info.truncated:
        print(
            f"  trace is truncated: replaying {reader.n_bins} complete bins "
            f"({reader.info.dropped_records} trailing records dropped)"
        )
    session, meter = _telemetry_begin(args, total_bins=reader.n_bins)
    run_info = {"command": "trace replay", "mode": "stream",
                "network": topo.name, "trace": str(reader.path)}
    try:
        if args.precomputed:
            start = time.perf_counter()
            report = engine.process_precomputed(reader)
            elapsed = time.perf_counter() - start
            for verdict in report.detections:
                _print_verdict(topo, verdict)
            rate = report.n_records / elapsed if elapsed > 0 else float("inf")
            print(
                f"replayed {report.n_records} records -> "
                f"{report.n_bins_scored} scored bins in {elapsed:.2f}s "
                f"({rate:,.0f} records/s)"
            )
            _print_detection_counts(report)
            if args.json:
                from repro.io import write_report_json

                print(f"wrote "
                      f"{write_report_json(report.to_diagnosis_report(), args.json)}")
        else:
            report, elapsed = _drive_engine(
                topo, engine, reader.iter_chunks(args.chunk_records),
                args.json, verb="replayed",
            )
        run_info.update(n_records=report.n_records, elapsed_s=elapsed)
    finally:
        _telemetry_end(args, session, meter, run_info)
    return 0


def _cmd_quality(args) -> int:
    import json

    if args.quality_command == "run":
        from repro.quality import quality_payload

        if args.fuzz < 0:
            raise ValueError("--fuzz must be non-negative")
        payload = quality_payload(
            seed=args.seed,
            n_fuzzed=args.fuzz,
            mode=args.mode,
            tolerance_bins=args.tolerance,
            with_grid=args.grid,
        )
        shape = payload["shape"]
        print(
            f"quality [{args.mode}] seed {args.seed}: "
            f"{len(payload['scenarios'])} scenarios on {shape['n_bins']} bins "
            f"(warm-up {shape['warmup_bins']}, ±{args.tolerance} bin matching)"
        )
        for name, entry in payload["scenarios"].items():
            ch = entry["channels"]["any"]
            latency = ch["latency_bins"]
            print(
                f"  {name:<18} {entry['events']} events: "
                f"P {ch['precision']:.2f} R {ch['recall']:.2f} "
                f"F1 {ch['f1']:.2f} "
                f"latency {'-' if latency is None else f'{latency:.1f}'} "
                f"(entropy R {entry['channels']['entropy']['recall']:.2f})"
            )
        for cell in payload.get("grid", []):
            ch = cell["channels"]["any"]
            print(
                f"  grid x{cell['intensity_scale']:<4} "
                f"w={cell['sketch_width']:<5} 1/{cell['sampling_rate']:<4} "
                f"P {ch['precision']:.2f} R {ch['recall']:.2f}"
            )
        if args.json:
            from pathlib import Path

            path = Path(args.json)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            print(f"wrote {path}")
        return 0

    # fuzz: cross-check that every mode sees identical detections on
    # workloads nobody hand-tuned.  Exit 1 on divergence — that is a
    # broken parity contract, not a usage error.
    from repro.pipeline import DetectionPipeline
    from repro.quality import fuzz_sources, quality_config, score_report
    from repro.quality.score import CHANNELS

    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    for mode in modes:
        if mode not in ("batch", "stream", "cluster"):
            raise ValueError(f"unknown mode {mode!r} in --modes")
    if not modes:
        raise ValueError("--modes must name at least one mode")
    if args.shards < 1:
        raise ValueError("--shards must be >= 1")

    sources = fuzz_sources(
        args.n,
        seed=args.seed,
        intensity_scale=args.intensity,
        sampling_rate=args.sampling,
    )
    diverged = 0
    workloads = []
    for source in sources:
        signatures = {}
        scores = None
        for mode in modes:
            result = DetectionPipeline(quality_config()).run(
                source, mode=mode, n_shards=args.shards
            )
            signatures[mode] = [
                (d.bin, round(d.spe_entropy, 9), d.detected_by_entropy,
                 d.detected_by_volume, d.primary_od)
                for d in result.report.detections if d.detected
            ]
            if scores is None:
                scores = score_report(source.events, result.report)
        reference = signatures[modes[0]]
        parity = all(sig == reference for sig in signatures.values())
        diverged += 0 if parity else 1
        ch = scores["any"]
        verdict = "parity ok" if parity else "MODES DIVERGED"
        print(
            f"  {source.scenario.name:<14} {len(source.events)} events, "
            f"{len(reference)} detections: P {ch.precision:.2f} "
            f"R {ch.recall:.2f} [{verdict}]"
        )
        if not parity:
            for mode, sig in signatures.items():
                print(f"    {mode}: {sig}")
        workloads.append(
            {
                "name": source.scenario.name,
                "events": len(source.events),
                "parity": parity,
                "channels": {c: scores[c].to_dict() for c in CHANNELS},
            }
        )
    print(
        f"fuzzed {len(sources)} workloads across {'/'.join(modes)}: "
        f"{len(sources) - diverged} parity-clean, {diverged} diverged"
    )
    if args.json:
        from pathlib import Path

        path = Path(args.json)
        payload = {
            "seed": args.seed,
            "modes": list(modes),
            "intensity_scale": args.intensity,
            "sampling_rate": args.sampling,
            "workloads": workloads,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 1 if diverged else 0


def _cmd_stats(args) -> int:
    from repro.telemetry.export import prometheus_text, read_events
    from repro.telemetry.stats import format_stats, snapshot_from_events

    events = read_events(args.path)  # ValueError on schema drift -> exit 2
    if args.prometheus:
        print(prometheus_text(snapshot_from_events(events)), end="")
    else:
        print(format_stats(events), end="")
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    if args.name == "ablations":
        from repro.experiments import ablations

        print(
            ablations.format_report(
                ablations.run_normalization(),
                ablations.run_subspace_dim(),
                ablations.run_clustering(),
            )
        )
        return 0
    module = importlib.import_module(f"repro.experiments.{_EXPERIMENTS[args.name]}")
    print(module.format_report(module.run()))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 2 invalid input (argparse errors also exit
    2, so callers see one consistent code for "bad invocation").
    Set ``REPRO_DEBUG=1`` to get the full traceback alongside the
    one-line error — the escape hatch for telling a genuine bug
    surfacing as ValueError apart from a user mistake.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "detect": _cmd_detect,
        "inject": _cmd_inject,
        "stream": _cmd_stream,
        "cluster": _cmd_cluster,
        "worker": _cmd_worker,
        "run": _cmd_run,
        "scenarios": _cmd_scenarios,
        "trace": _cmd_trace,
        "quality": _cmd_quality,
        "stats": _cmd_stats,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, OSError) as exc:
        import os

        if os.environ.get("REPRO_DEBUG"):
            import traceback

            traceback.print_exc()
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
