"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows a network operator (or a reader of the
paper) actually runs:

* ``generate`` — synthesise a (labeled) traffic cube and save it;
* ``detect``   — diagnose a saved or freshly generated cube, print the
  summary, optionally export CSV/JSON;
* ``inject``   — inject a chosen anomaly into a clean cube and report
  whether volume/entropy detectors catch it;
* ``stream``   — run the online pipeline (paper Section 8) over a
  synthetic flow-record trace: chunked ingestion, sketch-backed per-bin
  entropy, streaming multiway detection; reports throughput;
* ``cluster``  — the sharded deployment: worker processes reduce their
  OD-flow slice into mergeable per-bin summaries, a central
  coordinator merges them and runs the same streaming diagnosis;
* ``experiment`` — run one of the paper's experiments by name
  (``fig1``..``fig10``, ``table2``..``table8``, ``ablations``,
  ``anonymization``) and print the paper-style report.

Every command exits 0 on success; invalid input (bad arguments, missing
files, malformed cubes) exits 2 with a one-line error on stderr.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _version() -> str:
    """Package version.

    The package's own ``__version__`` wins: the documented run mode is
    uninstalled (``PYTHONPATH=src``), and installed-distribution
    metadata can belong to a bare/legacy install (or an unrelated
    distribution that happens to be named ``repro``).  Metadata is the
    fallback only if the attribute ever disappears.
    """
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - __version__ is defined
        from importlib.metadata import version

        return version("repro")

_EXPERIMENTS = {
    "fig1": "fig1_histograms",
    "fig2": "fig2_timeseries",
    "fig4": "fig4_volume_vs_entropy",
    "fig5": "fig5_detection_rate",
    "fig6": "fig6_multiflow",
    "fig7": "fig7_known_clusters",
    "fig8": "fig8_abilene_space",
    "fig9": "fig9_geant_space",
    "fig10": "fig10_cluster_selection",
    "table2": "table2_detections",
    "table3": "table3_breakdown",
    "table4": "table4_traces",
    "table5": "table5_thinning",
    "table6": "table6_label_space",
    "table7": "table7_abilene_clusters",
    "table8": "table8_geant_clusters",
    "anonymization": "anonymization_check",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Mining Anomalies Using Traffic Feature Distributions'",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a traffic cube")
    gen.add_argument("--network", choices=("abilene", "geant"), default="abilene")
    gen.add_argument("--weeks", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--clean", action="store_true", help="no anomaly schedule")
    gen.add_argument("--output", required=True, help="output .npz path")

    det = sub.add_parser("detect", help="diagnose a cube")
    det.add_argument("--cube", help=".npz cube (omit to generate a labeled one)")
    det.add_argument("--network", choices=("abilene", "geant"), default="abilene")
    det.add_argument("--weeks", type=float, default=1.0)
    det.add_argument("--seed", type=int, default=0)
    det.add_argument("--alpha", type=float, default=0.999)
    det.add_argument("--clusters", type=int, default=10)
    det.add_argument("--csv", help="export per-anomaly CSV here")
    det.add_argument("--json", help="export JSON summary here")

    inj = sub.add_parser("inject", help="inject one anomaly and score it")
    inj.add_argument(
        "--type",
        choices=("alpha", "dos", "ddos", "flash_crowd", "port_scan", "network_scan",
                 "worm", "point_multipoint"),
        default="worm",
    )
    inj.add_argument("--pps", type=float, default=141.0)
    inj.add_argument("--od", type=int, default=5)
    inj.add_argument("--bin", type=int, default=400, dest="target_bin")
    inj.add_argument("--thin", type=int, default=1)
    inj.add_argument("--days", type=float, default=3.0)
    inj.add_argument("--seed", type=int, default=7)
    inj.add_argument("--alpha", type=float, default=0.999)

    stream = sub.add_parser("stream", help="run the streaming engine on a synthetic trace")
    stream.add_argument("--network", choices=("abilene", "geant"), default="abilene")
    stream.add_argument("--warmup-bins", type=int, default=48,
                        help="bins accumulated from the stream before fitting")
    stream.add_argument("--live-bins", type=int, default=24,
                        help="bins scored after warm-up")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--max-records", type=int, default=400,
                        help="records materialised per (OD flow, bin)")
    stream.add_argument("--chunk-records", type=int, default=8192,
                        help="ingestion chunk size (memory bound)")
    stream.add_argument("--sketch-width", type=int, default=2048)
    stream.add_argument("--exact", action="store_true",
                        help="exact histograms instead of Count-Min sketches")
    stream.add_argument("--refit-every", type=int, default=12,
                        help="clean bins between model refits (0 freezes)")
    stream.add_argument("--alpha", type=float, default=0.999)
    stream.add_argument("--components", type=int, default=10)
    stream.add_argument("--json", help="export the diagnosis-report JSON here")

    cluster = sub.add_parser(
        "cluster", help="run the sharded multi-process engine on a synthetic trace"
    )
    cluster.add_argument("--network", choices=("abilene", "geant"), default="abilene")
    cluster.add_argument("--shards", type=int, default=2,
                         help="worker processes (each owns an OD-flow slice)")
    cluster.add_argument("--warmup-bins", type=int, default=48,
                         help="bins accumulated from the stream before fitting")
    cluster.add_argument("--live-bins", type=int, default=24,
                         help="bins scored after warm-up")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--max-records", type=int, default=400,
                         help="records materialised per (OD flow, bin)")
    cluster.add_argument("--chunk-records", type=int, default=8192,
                         help="ingestion chunk size per shard (memory bound)")
    cluster.add_argument("--queue-depth", type=int, default=16,
                         help="in-flight summaries bound (back-pressure)")
    cluster.add_argument("--sketch-width", type=int, default=2048)
    cluster.add_argument("--exact", action="store_true",
                         help="exact histograms instead of Count-Min sketches")
    cluster.add_argument("--refit-every", type=int, default=12,
                         help="clean bins between model refits (0 freezes)")
    cluster.add_argument("--alpha", type=float, default=0.999)
    cluster.add_argument("--components", type=int, default=10)
    cluster.add_argument("--json", help="export the diagnosis-report JSON here")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS) + ["ablations"])
    return parser


def _cmd_generate(args) -> int:
    from repro.datasets.labeled import abilene_dataset, geant_dataset
    from repro.flows.binning import TimeBins
    from repro.io import save_cube
    from repro.net.topology import abilene, geant
    from repro.traffic.generator import TrafficGenerator

    if args.clean:
        topo = abilene() if args.network == "abilene" else geant()
        cube = TrafficGenerator(
            topo, TimeBins.for_weeks(args.weeks), seed=args.seed
        ).generate()
    else:
        maker = abilene_dataset if args.network == "abilene" else geant_dataset
        cube = maker(weeks=args.weeks, seed=args.seed).cube
    path = save_cube(cube, args.output)
    print(f"saved {cube.network} cube ({cube.n_bins} bins x {cube.n_od_flows} ODs) to {path}")
    return 0


def _cmd_detect(args) -> int:
    from repro.core.detector import AnomalyDiagnosis
    from repro.io import load_cube, write_report_csv, write_report_json

    labels = None
    if args.cube:
        cube = load_cube(args.cube)
    else:
        from repro.datasets.labeled import abilene_dataset, geant_dataset

        maker = abilene_dataset if args.network == "abilene" else geant_dataset
        data = maker(weeks=args.weeks, seed=args.seed)
        cube = data.cube
        labels = data.labels_by_bin
    diag = AnomalyDiagnosis(alpha=args.alpha, n_clusters=args.clusters)
    report = diag.diagnose(cube, labels_by_bin=labels)
    counts = report.counts()
    print(
        f"detections: total={counts['total']} volume_only={counts['volume_only']} "
        f"entropy_only={counts['entropy_only']} both={counts['both']}"
    )
    for summary in report.clusters:
        line = f"cluster size={summary.size:<5} signature={''.join(summary.signature)}"
        if summary.plurality_label:
            line += f" plurality={summary.plurality_label}"
        print(line)
    if args.csv:
        print(f"wrote {write_report_csv(report, args.csv)}")
    if args.json:
        print(f"wrote {write_report_json(report, args.json)}")
    return 0


def _cmd_inject(args) -> int:
    from repro.anomalies.builders import BUILDERS
    from repro.anomalies.injector import InjectionScorer
    from repro.flows.binning import TimeBins
    from repro.net.topology import abilene
    from repro.traffic.generator import TrafficGenerator

    generator = TrafficGenerator(
        abilene(), TimeBins.for_days(args.days), seed=args.seed
    )
    cube = generator.generate()
    scorer = InjectionScorer(cube, generator, alphas=(args.alpha,))
    trace = BUILDERS[args.type](np.random.default_rng(args.seed), pps=args.pps)
    if args.thin > 1:
        trace = trace.thin(args.thin)
    target_bin = min(args.target_bin, cube.n_bins - 1)
    out = scorer.score(target_bin, [(args.od, trace)], alpha=args.alpha)
    share = 100 * trace.pps / (trace.pps + cube.mean_od_pps())
    print(
        f"{args.type} at {trace.pps:.4g} pps ({share:.3g}% of the mean OD flow) "
        f"into OD {args.od}, bin {target_bin}:"
    )
    print(f"  volume detection:  {out.detected_volume}")
    print(f"  entropy detection: {out.detected_entropy}")
    return 0


def _print_verdict(topo, verdict) -> None:
    """One detection line, shared by the stream and cluster commands."""
    if not verdict.detected:
        return
    kind = "+".join(
        k for k, hit in (
            ("entropy", verdict.detected_by_entropy),
            ("volume", verdict.detected_by_volume),
        ) if hit
    )
    od = verdict.primary_od
    where = topo.od_name(od) if od is not None else "unidentified"
    print(
        f"  bin {verdict.bin}: {kind} detection "
        f"(spe={verdict.spe_entropy:.3g}) flow={where} "
        f"cluster={verdict.cluster}"
    )


def _print_detection_counts(report) -> None:
    """Table-2 style summary line of a streaming/cluster report."""
    counts = report.counts()
    print(
        f"detections: total={counts['total']} volume_only={counts['volume_only']} "
        f"entropy_only={counts['entropy_only']} both={counts['both']} "
        f"clusters={report.classifier.n_clusters}"
    )


def _cmd_stream(args) -> int:
    import time

    from repro.flows.binning import TimeBins
    from repro.net.topology import abilene, geant
    from repro.stream import StreamConfig, StreamingDetectionEngine, synthetic_record_stream
    from repro.traffic.generator import TrafficGenerator

    topo = abilene() if args.network == "abilene" else geant()
    n_bins = args.warmup_bins + args.live_bins
    generator = TrafficGenerator(topo, TimeBins(n_bins=n_bins), seed=args.seed)
    config = StreamConfig(
        warmup_bins=args.warmup_bins,
        refit_every=args.refit_every,
        n_components=args.components,
        alpha=args.alpha,
        sketch_width=args.sketch_width,
        exact_histograms=args.exact,
        chunk_records=args.chunk_records,
    )
    engine = StreamingDetectionEngine(topo, config)
    mode = "exact histograms" if args.exact else f"CM sketches (w={args.sketch_width})"
    print(
        f"streaming {topo.name}: {n_bins} bins x {topo.n_od_flows} OD flows, "
        f"{mode}, warm-up {args.warmup_bins} bins"
    )
    source = synthetic_record_stream(
        generator,
        range(n_bins),
        max_records_per_od=args.max_records,
        seed=args.seed,
    )
    start = time.perf_counter()
    # events() re-chunks, ingests, and flushes the final bin, so the
    # per-detection lines below cover every scored bin.
    for verdict in engine.events(source):
        _print_verdict(topo, verdict)
    report = engine.finish()
    elapsed = time.perf_counter() - start
    rate = report.n_records / elapsed if elapsed > 0 else float("inf")
    print(
        f"processed {report.n_records} records -> {report.n_bins_scored} scored bins "
        f"in {elapsed:.2f}s ({rate:,.0f} records/s)"
    )
    _print_detection_counts(report)
    if args.json:
        from repro.io import write_report_json

        print(f"wrote {write_report_json(report.to_diagnosis_report(), args.json)}")
    return 0


def _cmd_cluster(args) -> int:
    from repro.cluster import run_cluster
    from repro.net.topology import abilene, geant
    from repro.stream import StreamConfig

    if args.shards < 1:
        raise ValueError("--shards must be >= 1")
    topo = abilene() if args.network == "abilene" else geant()
    n_bins = args.warmup_bins + args.live_bins
    config = StreamConfig(
        warmup_bins=args.warmup_bins,
        refit_every=args.refit_every,
        n_components=args.components,
        alpha=args.alpha,
        sketch_width=args.sketch_width,
        exact_histograms=args.exact,
        chunk_records=args.chunk_records,
    )
    mode = "exact histograms" if args.exact else f"CM sketches (w={args.sketch_width})"
    print(
        f"clustering {topo.name}: {args.shards} shards x "
        f"{(topo.n_od_flows + args.shards - 1) // args.shards} OD flows, "
        f"{n_bins} bins, {mode}, warm-up {args.warmup_bins} bins"
    )

    result = run_cluster(
        network=args.network,
        n_bins=n_bins,
        seed=args.seed,
        n_shards=args.shards,
        config=config,
        max_records_per_od=args.max_records,
        queue_depth=args.queue_depth,
        on_detection=lambda verdict: _print_verdict(topo, verdict),
    )
    report = result.report
    balance = ", ".join(
        f"shard {s}: {n}" for s, n in sorted(result.shard_records.items())
    )
    print(
        f"processed {result.n_records} records -> {report.n_bins_scored} scored bins "
        f"in {result.elapsed:.2f}s ({result.records_per_sec:,.0f} records/s)"
    )
    print(f"shard load: {balance}")
    _print_detection_counts(report)
    if args.json:
        from repro.io import write_report_json

        print(f"wrote {write_report_json(report.to_diagnosis_report(), args.json)}")
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    if args.name == "ablations":
        from repro.experiments import ablations

        print(
            ablations.format_report(
                ablations.run_normalization(),
                ablations.run_subspace_dim(),
                ablations.run_clustering(),
            )
        )
        return 0
    module = importlib.import_module(f"repro.experiments.{_EXPERIMENTS[args.name]}")
    print(module.format_report(module.run()))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 2 invalid input (argparse errors also exit
    2, so callers see one consistent code for "bad invocation").
    Set ``REPRO_DEBUG=1`` to get the full traceback alongside the
    one-line error — the escape hatch for telling a genuine bug
    surfacing as ValueError apart from a user mistake.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "detect": _cmd_detect,
        "inject": _cmd_inject,
        "stream": _cmd_stream,
        "cluster": _cmd_cluster,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, OSError) as exc:
        import os

        if os.environ.get("REPRO_DEBUG"):
            import traceback

            traceback.print_exc()
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
