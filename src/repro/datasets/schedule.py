"""Ground-truth anomaly schedules for labeled datasets.

The paper's Abilene labels came from manual inspection of 444
detections.  Our substitute (DESIGN.md §2): datasets are generated with
a *known* schedule of anomalies — which types, when, in which OD flows,
at what intensity — so every detection can be scored against ground
truth and the classification experiments have labels.

Type proportions follow the paper's Table 6 Abilene counts; intensity
ranges are chosen so each type spans its realistic detectability
regime (alpha flows and DOS reach volume-detectable rates; scans and
point-to-multipoint stay low-volume, detectable only via entropy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.anomalies.base import AnomalyTrace, OutageEvent, TrafficSurge
from repro.anomalies.builders import BUILDERS
from repro.flows.binning import TimeBins
from repro.net.routing import Router
from repro.net.topology import Topology

__all__ = ["ScheduledAnomaly", "AnomalySchedule", "DEFAULT_MIX", "make_schedule"]


@dataclass
class ScheduledAnomaly:
    """One ground-truth anomaly event.

    Attributes:
        bin: Time-bin index of the event.
        ods: OD flows involved (one for most types; several for
            outages and split DDOS).
        label: Anomaly type.
        trace: Additive trace (None for outages/surges).
        outage: Outage event (None otherwise).
        surge: Uniform volume surge (None otherwise) — the
            entropy-invisible alpha variant.
        pps: Intensity in packets/second (0 for outages/surges).
    """

    bin: int
    ods: list[int]
    label: str
    trace: AnomalyTrace | None = None
    outage: OutageEvent | None = None
    surge: TrafficSurge | None = None
    pps: float = 0.0


@dataclass
class AnomalySchedule:
    """The full ground truth of a labeled dataset."""

    events: list[ScheduledAnomaly] = field(default_factory=list)

    def labels_by_bin(self) -> dict[int, str]:
        """Bin -> label map (first event wins; bins are unique by construction)."""
        return {e.bin: e.label for e in self.events}

    def events_by_od(self) -> dict[int, list[ScheduledAnomaly]]:
        """OD flow -> events map (outages appear under every affected OD)."""
        by_od: dict[int, list[ScheduledAnomaly]] = {}
        for event in self.events:
            for od in event.ods:
                by_od.setdefault(od, []).append(event)
        return by_od

    def count(self, label: str) -> int:
        """Number of scheduled events with a given label."""
        return sum(1 for e in self.events if e.label == label)

    def __len__(self) -> int:
        return len(self.events)


#: Per-3-weeks event counts, scaled from the paper's Abilene Table 6
#: (alpha 221, dos 27, flash 9, port scan 30, net scan 28, outage 15,
#: point-to-multipoint 7 — unknowns/false alarms arise on their own).
DEFAULT_MIX: dict[str, int] = {
    "alpha": 221,
    "dos": 20,
    "ddos": 7,
    "flash_crowd": 9,
    "port_scan": 30,
    "network_scan": 20,
    "worm": 8,
    "outage": 15,
    "point_multipoint": 7,
}

#: Intensity ranges in pps (log-uniform).  Low-volume types sit well
#: below the ~2068 pps mean OD rate; alpha/DOS span up to rates that
#: volume metrics catch.
_PPS_RANGES: dict[str, tuple[float, float]] = {
    "alpha": (150.0, 3_000.0),
    "dos": (2_000.0, 120_000.0),
    "ddos": (2_000.0, 40_000.0),
    "flash_crowd": (1_500.0, 10_000.0),
    "port_scan": (80.0, 500.0),
    "network_scan": (80.0, 500.0),
    "worm": (80.0, 500.0),
    "point_multipoint": (200.0, 2_000.0),
}

#: Fraction of scheduled alpha flows that are uniform volume surges
#: (entropy-invisible, volume-detectable) rather than additive
#: concentrated flows.  This split reproduces the paper's Table 3:
#: many alphas found in volume, many *additional* ones only in entropy.
SURGE_ALPHA_FRACTION = 0.4


def _scaled_mix(mix: dict[str, int], n_bins: int) -> dict[str, int]:
    """Scale a per-3-weeks mix to the dataset length (>=1 per type)."""
    three_weeks = 3 * 2016
    factor = n_bins / three_weeks
    return {label: max(1, int(round(n * factor))) for label, n in mix.items()}


def make_schedule(
    topology: Topology,
    bins: TimeBins,
    seed: int = 0,
    mix: dict[str, int] | None = None,
    intensity_scale: float = 1.0,
) -> AnomalySchedule:
    """Draw a random ground-truth schedule.

    Each event occupies its own bin (no co-occurrence, so bin labels are
    unambiguous) at a uniformly random OD flow.  Outages affect all OD
    flows routed over a randomly chosen backbone link.

    Args:
        topology: Network to schedule on.
        bins: Time grid; events avoid the first/last 2 bins.
        seed: RNG seed (independent of the traffic generator's).
        mix: Per-3-weeks counts by label; defaults to
            :data:`DEFAULT_MIX`, scaled to the dataset length.
        intensity_scale: Multiplier on all intensity ranges (used by
            sensitivity ablations).
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xABE]))
    counts = _scaled_mix(mix or DEFAULT_MIX, bins.n_bins)
    total_events = sum(counts.values())
    usable = np.arange(2, bins.n_bins - 2)
    if total_events > len(usable):
        raise ValueError(
            f"schedule of {total_events} events does not fit in {bins.n_bins} bins"
        )
    event_bins = rng.choice(usable, size=total_events, replace=False)
    router = Router(topology)
    links = list(topology.graph.edges())

    events: list[ScheduledAnomaly] = []
    cursor = 0
    for label, n in sorted(counts.items()):
        for _ in range(n):
            b = int(event_bins[cursor])
            cursor += 1
            if label == "outage":
                link = links[rng.integers(len(links))]
                ods = router.link_load_ods(link)
                severity = rng.uniform(0.0, 0.15)
                events.append(
                    ScheduledAnomaly(
                        bin=b,
                        ods=ods,
                        label="outage",
                        outage=OutageEvent(
                            head_ranks=int(rng.integers(5, 20)),
                            head_survival=severity,
                            tail_survival=rng.uniform(0.4, 0.8),
                        ),
                    )
                )
                continue
            od = int(rng.integers(topology.n_od_flows))
            if label == "alpha" and rng.random() < SURGE_ALPHA_FRACTION:
                events.append(
                    ScheduledAnomaly(
                        bin=b,
                        ods=[od],
                        label="alpha",
                        surge=TrafficSurge(factor=float(rng.uniform(3.0, 9.0))),
                    )
                )
                continue
            lo, hi = _PPS_RANGES[label]
            pps = float(
                np.exp(rng.uniform(np.log(lo), np.log(hi))) * intensity_scale
            )
            builder = BUILDERS[label]
            trace = builder(rng, pps=pps)
            events.append(
                ScheduledAnomaly(bin=b, ods=[od], label=label, trace=trace, pps=pps)
            )
    events.sort(key=lambda e: e.bin)
    return AnomalySchedule(events=events)
