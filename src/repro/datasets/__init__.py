"""Labeled synthetic datasets standing in for the paper's Abilene/Geant traces."""

from repro.datasets.labeled import (
    LabeledDataset,
    abilene_dataset,
    geant_dataset,
    make_labeled_dataset,
)
from repro.datasets.schedule import (
    DEFAULT_MIX,
    AnomalySchedule,
    ScheduledAnomaly,
    make_schedule,
)

__all__ = [
    "LabeledDataset",
    "abilene_dataset",
    "geant_dataset",
    "make_labeled_dataset",
    "DEFAULT_MIX",
    "AnomalySchedule",
    "ScheduledAnomaly",
    "make_schedule",
]
