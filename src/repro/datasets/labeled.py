"""Labeled datasets: synthetic Abilene/Geant with ground-truth anomalies.

A :class:`LabeledDataset` bundles a generated traffic cube (with the
schedule's anomalies injected) together with the schedule itself, the
clean cube, and the generator — everything the experiments need to
score detections, attribute labels, and re-derive background
histograms.

Injection is done in a single per-OD pass so each OD flow's stream is
regenerated at most once regardless of how many events it hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.schedule import AnomalySchedule, ScheduledAnomaly, make_schedule
from repro.anomalies.injector import injected_bin_state, outage_bin_state
from repro.flows.binning import TimeBins
from repro.flows.odflows import TrafficCube
from repro.net.topology import Topology, abilene, geant
from repro.traffic.generator import GeneratorConfig, TrafficGenerator

__all__ = [
    "LabeledDataset",
    "make_labeled_dataset",
    "abilene_dataset",
    "geant_dataset",
]


@dataclass
class LabeledDataset:
    """A generated network trace with ground truth.

    Attributes:
        topology: The network.
        cube: Traffic cube *with* anomalies injected.
        clean_cube: The cube before injection (for injection sweeps and
            ablations).
        schedule: Ground-truth anomaly schedule.
        generator: The traffic generator (deterministic background
            histogram regeneration).
    """

    topology: Topology
    cube: TrafficCube
    clean_cube: TrafficCube
    schedule: AnomalySchedule
    generator: TrafficGenerator

    @property
    def labels_by_bin(self) -> dict[int, str]:
        """Ground-truth label per anomalous bin."""
        return self.schedule.labels_by_bin()

    def event_at(self, b: int) -> ScheduledAnomaly | None:
        """The scheduled event at bin ``b``, if any."""
        for event in self.schedule.events:
            if event.bin == b:
                return event
        return None


def _inject_schedule(
    cube: TrafficCube, generator: TrafficGenerator, schedule: AnomalySchedule
) -> None:
    """Inject all scheduled events into ``cube`` in place, OD by OD.

    Scheduled anomalies are *real traffic*, so the measurement system
    samples them like everything else: the histogram (entropy) side
    sees the trace thinned by the network's packet-sampling factor,
    while the volume counters grow by the full (pre-sampling) packets.
    This differs deliberately from the paper-protocol injection sweeps
    (:class:`repro.anomalies.injector.InjectionScorer`), which follow
    the paper in superimposing *unsampled* attack packets.
    """
    sampling = generator.histogram_sampling
    by_od = schedule.events_by_od()
    for od in sorted(by_od):
        stream = generator.od_stream(od)
        for event in by_od[od]:
            b = event.bin
            hists = tuple(h[b] for h in stream.histograms)
            if event.outage is not None or event.surge is not None:
                entropy, packets, byte_count = outage_bin_state(
                    hists,
                    cube.bytes[b, od],
                    event.outage or event.surge,
                    background_packets=cube.packets[b, od],
                )
            else:
                sampled = (
                    event.trace.thin(sampling, seed=event.bin)
                    if sampling > 1
                    else event.trace
                )
                entropy, _, _ = injected_bin_state(hists, 0.0, 0.0, sampled)
                packets = cube.packets[b, od] + event.trace.packets
                byte_count = cube.bytes[b, od] + event.trace.bytes
            cube.entropy[b, od, :] = entropy
            cube.packets[b, od] = packets
            cube.bytes[b, od] = byte_count
        # Free the stream cache slot; each OD is visited exactly once.
        generator._stream_cache.pop(od, None)


def make_labeled_dataset(
    topology: Topology,
    weeks: float = 3.0,
    seed: int = 0,
    mix: dict[str, int] | None = None,
    config: GeneratorConfig | None = None,
    intensity_scale: float = 1.0,
) -> LabeledDataset:
    """Generate a labeled dataset for a topology.

    Args:
        topology: Network (e.g. :func:`repro.net.topology.abilene`).
        weeks: Trace length; the paper uses 3 weeks per network.
        seed: Master seed — controls both traffic and the schedule.
        mix: Anomaly mix override (per 3 weeks; scaled to ``weeks``).
        config: Generator configuration override.
        intensity_scale: Multiplier on anomaly intensity ranges (larger
            networks carry proportionally larger anomalies).
    """
    bins = TimeBins.for_weeks(weeks)
    generator = TrafficGenerator(topology, bins, config=config, seed=seed)
    clean = generator.generate()
    schedule = make_schedule(
        topology, bins, seed=seed + 1, mix=mix, intensity_scale=intensity_scale
    )
    cube = clean.copy()
    _inject_schedule(cube, generator, schedule)
    return LabeledDataset(
        topology=topology,
        cube=cube,
        clean_cube=clean,
        schedule=schedule,
        generator=generator,
    )


def abilene_dataset(
    weeks: float = 3.0, seed: int = 0, mix: dict[str, int] | None = None
) -> LabeledDataset:
    """Labeled Abilene-like dataset (11 PoPs, 121 OD flows)."""
    return make_labeled_dataset(abilene(), weeks=weeks, seed=seed, mix=mix)


def geant_dataset(
    weeks: float = 3.0, seed: int = 100, mix: dict[str, int] | None = None
) -> LabeledDataset:
    """Labeled Geant-like dataset (22 PoPs, 484 OD flows).

    Geant's flow export is sampled 1/1000 (vs Abilene's 1/100); its OD
    flows carry roughly 10x the raw traffic, so the *sampled* histogram
    mass per bin matches Abilene's and anomaly intensities scale up by
    the same factor.
    """
    config = GeneratorConfig(mean_od_pps=20_680.0, seed=seed)
    return make_labeled_dataset(
        geant(), weeks=weeks, seed=seed, mix=mix, config=config, intensity_scale=10.0
    )
