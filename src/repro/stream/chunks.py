"""Chunked record ingestion: bounded-memory iteration over flow records.

Collectors hand the engine flow records in whatever batch sizes the
export protocol produced.  :func:`iter_record_chunks` re-chunks any
iterable of :class:`repro.flows.records.FlowRecordBatch` into batches of
at most ``chunk_records`` rows, preserving record order, so downstream
stages see a predictable memory envelope regardless of the source.

Two matching sources cover the reproduction's workloads:

* :func:`synthetic_record_stream` materialises one bin at a time from a
  :class:`repro.traffic.generator.TrafficGenerator` (via the batched
  whole-bin path), so an arbitrarily long synthetic trace can be
  streamed without ever holding more than one bin group of records;
* :func:`trace_record_stream` replays a columnar trace file written by
  :mod:`repro.io.trace` as zero-copy memory-mapped views — the fast
  path once a trace has been recorded.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.flows.records import FlowRecordBatch

__all__ = ["iter_record_chunks", "synthetic_record_stream", "trace_record_stream"]

DEFAULT_CHUNK_RECORDS = 8192


def iter_record_chunks(
    source: FlowRecordBatch | Iterable[FlowRecordBatch],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> Iterator[FlowRecordBatch]:
    """Yield batches of at most ``chunk_records`` records, in order.

    Args:
        source: A single batch or any iterable of batches (a generator
            works; it is consumed lazily, so memory stays bounded by the
            largest incoming batch plus one chunk).
        chunk_records: Upper bound on records per emitted chunk.

    Yields:
        Non-empty :class:`FlowRecordBatch` chunks of at most
        ``chunk_records`` rows covering exactly the source records in
        their original order.  A batch that already fits the bound while
        nothing is pending is forwarded *as-is*, and a larger batch is
        carved into slice *views* (no column copies) — so a view-backed
        source such as a memory-mapped trace replays without forcing
        any column into fresh memory.  Copies happen only when a chunk
        must stitch together rows from more than one source batch.
        Chunk boundaries, though never exceeding the bound, depend on
        how the source was batched.
    """
    if chunk_records < 1:
        raise ValueError("chunk_records must be positive")
    if isinstance(source, FlowRecordBatch):
        source = (source,)
    pending: list[FlowRecordBatch] = []
    pending_rows = 0
    for batch in source:
        n = len(batch)
        if n == 0:
            continue
        if pending_rows == 0 and n <= chunk_records:
            yield batch
            continue
        start = 0
        while start < n:
            take = min(n - start, chunk_records - pending_rows)
            piece = batch if take == n else batch.select(slice(start, start + take))
            pending.append(piece)
            pending_rows += take
            start += take
            if pending_rows == chunk_records:
                # concat() forwards a lone piece untouched, so carving
                # one big batch into full chunks never copies columns.
                yield FlowRecordBatch.concat(pending)
                pending, pending_rows = [], 0
    if pending_rows:
        yield FlowRecordBatch.concat(pending)


def synthetic_record_stream(
    generator,
    bins: Sequence[int],
    ods: Sequence[int] | None = None,
    max_records_per_od: int = 400,
    seed: int = 0,
    bin_group: int = 64,
) -> Iterator[FlowRecordBatch]:
    """Materialise a synthetic flow-record trace one bin at a time.

    Args:
        generator: A :class:`repro.traffic.generator.TrafficGenerator`
            (defines the topology, bin grid and per-OD traffic).
        bins: Bin indices to stream, in increasing order.
        ods: OD flows to include (default: all).
        max_records_per_od: Cap on records materialised per (OD, bin) —
            the knob trading trace size for fidelity.
        seed: Extra seed mixed into the per-bin record draw.
        bin_group: Bins materialised per pass.  Within a group the OD
            loop is outermost so each OD's (regenerable) histogram
            stream is built once per group rather than once per bin;
            memory is bounded by one group of records.

    Yields:
        One time-sorted :class:`FlowRecordBatch` per bin, in ``bins``
        order.  Records are drawn from per-(OD, bin) ``record_rng``
        streams, so a cluster shard materialising only its OD slice
        yields records bit-identical to a whole-trace sweep — and a
        trace written by :func:`repro.io.trace.write_trace` replays
        bit-identical to this inline stream.
    """
    if bin_group < 1:
        raise ValueError("bin_group must be positive")
    if ods is None:
        ods = range(generator.topology.n_od_flows)
    ods = [int(od) for od in ods]
    bins = [int(b) for b in bins]
    for g in range(0, len(bins), bin_group):
        group = bins[g : g + bin_group]
        yield from generator.materialize_bin_group(
            ods, group, max_records=max_records_per_od, salt=seed
        )


def trace_record_stream(
    trace,
    bins: Sequence[int] | None = None,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    row_filter=None,
) -> Iterator[FlowRecordBatch]:
    """Replay a recorded columnar trace as zero-copy record chunks.

    Args:
        trace: A trace path or an open
            :class:`repro.io.trace.TraceReader`.
        bins: Bin indices to replay (default: the whole trace).
        chunk_records: Upper bound on records per yielded chunk.
        row_filter: Optional ``batch -> bool mask`` predicate (e.g. a
            cluster shard keeping only its OD slice); see
            :meth:`repro.io.trace.TraceReader.iter_chunks`.

    Yields:
        Time-ordered :class:`FlowRecordBatch` chunks whose columns are
        views into the file mapping (no copies unless filtered).
    """
    from repro.io.trace import TraceReader

    if isinstance(trace, (str, Path)):
        with TraceReader(trace) as reader:
            yield from reader.iter_chunks(
                chunk_records=chunk_records, bins=bins, row_filter=row_filter
            )
    else:
        yield from trace.iter_chunks(
            chunk_records=chunk_records, bins=bins, row_filter=row_filter
        )
