"""Chunked record ingestion: bounded-memory iteration over flow records.

Collectors hand the engine flow records in whatever batch sizes the
export protocol produced.  :func:`iter_record_chunks` re-chunks any
iterable of :class:`repro.flows.records.FlowRecordBatch` into batches of
at most ``chunk_records`` rows, preserving record order, so downstream
stages see a predictable memory envelope regardless of the source.

:func:`synthetic_record_stream` is the matching source for the
reproduction: it materialises one (OD flow, bin) at a time from a
:class:`repro.traffic.generator.TrafficGenerator`, so an arbitrarily
long synthetic trace can be streamed without ever holding more than one
bin of records in memory.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.flows.records import FlowRecordBatch

__all__ = ["iter_record_chunks", "synthetic_record_stream"]

DEFAULT_CHUNK_RECORDS = 8192


def iter_record_chunks(
    source: FlowRecordBatch | Iterable[FlowRecordBatch],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> Iterator[FlowRecordBatch]:
    """Yield batches of at most ``chunk_records`` records, in order.

    Args:
        source: A single batch or any iterable of batches (a generator
            works; it is consumed lazily, so memory stays bounded by the
            largest incoming batch plus one chunk).
        chunk_records: Upper bound on records per emitted chunk.

    Yields:
        Non-empty :class:`FlowRecordBatch` chunks of at most
        ``chunk_records`` rows covering exactly the source records in
        their original order.  A batch that already fits the bound while
        nothing is pending is forwarded *as-is* (no array copies) — the
        hot ingest path when the collector's export batches are already
        well-sized — so chunk boundaries, though never exceeding the
        bound, depend on how the source was batched.
    """
    if chunk_records < 1:
        raise ValueError("chunk_records must be positive")
    if isinstance(source, FlowRecordBatch):
        source = (source,)
    pending: list[FlowRecordBatch] = []
    pending_rows = 0
    for batch in source:
        n = len(batch)
        if n == 0:
            continue
        if pending_rows == 0 and n <= chunk_records:
            yield batch
            continue
        start = 0
        while start < n:
            take = min(n - start, chunk_records - pending_rows)
            piece = batch.select(np.arange(start, start + take))
            pending.append(piece)
            pending_rows += take
            start += take
            if pending_rows == chunk_records:
                yield FlowRecordBatch.concat(pending)
                pending, pending_rows = [], 0
    if pending_rows:
        yield FlowRecordBatch.concat(pending)


def synthetic_record_stream(
    generator,
    bins: Sequence[int],
    ods: Sequence[int] | None = None,
    max_records_per_od: int = 400,
    seed: int = 0,
    bin_group: int = 64,
) -> Iterator[FlowRecordBatch]:
    """Materialise a synthetic flow-record trace one bin at a time.

    Args:
        generator: A :class:`repro.traffic.generator.TrafficGenerator`
            (defines the topology, bin grid and per-OD traffic).
        bins: Bin indices to stream, in increasing order.
        ods: OD flows to include (default: all).
        max_records_per_od: Cap on records materialised per (OD, bin) —
            the knob trading trace size for fidelity.
        seed: Extra seed mixed into the per-bin record draw.
        bin_group: Bins materialised per pass.  Within a group the OD
            loop is outermost so each OD's (regenerable) histogram
            stream is built once per group rather than once per bin;
            memory is bounded by one group of records.

    Yields:
        One time-sorted :class:`FlowRecordBatch` per bin, in ``bins``
        order.
    """
    if bin_group < 1:
        raise ValueError("bin_group must be positive")
    if ods is None:
        ods = range(generator.topology.n_od_flows)
    bins = [int(b) for b in bins]
    for g in range(0, len(bins), bin_group):
        group = bins[g : g + bin_group]
        per_bin: dict[int, list[FlowRecordBatch]] = {b: [] for b in group}
        for od in ods:
            od = int(od)
            for b in group:
                # record_rng pins the draw to (seed, od, b) alone, so a
                # cluster shard materialising only its OD slice yields
                # records bit-identical to a whole-trace sweep.
                per_bin[b].append(
                    generator.materialize_bin(
                        od,
                        b,
                        rng=generator.record_rng(od, b, salt=seed),
                        max_records=max_records_per_od,
                    )
                )
            # materialize_bin caches the OD's full histogram stream;
            # evict (as generate() does) so sweeping every OD stays
            # bounded.
            generator.evict_stream(od)
        for b in group:
            yield FlowRecordBatch.concat(per_bin.pop(b)).sort_by_time()
