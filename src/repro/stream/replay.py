"""Precomputed-trace detection replay: derived columns -> bin summaries.

Warm mmap replay streams records ~40x faster than the exact detection
path consumes them; the committed telemetry shows why — the per-bin
stable sort inside :func:`repro.kernels.group_reduce` is the single
hottest span.  A version-2 trace (:mod:`repro.io.trace`) stores what
that sort produces: per record, the resolved OD index and — per
feature — the record's run index in the bin's canonical (od, value)
grouped order.  With those columns the whole per-bin reduction
collapses to one weighted ``bincount`` per feature (run ids are dense
and already in canonical order), one scatter for the run -> OD map,
and the same vectorized grouped-entropy pass the kernel uses, so the
emitted :class:`~repro.stream.window.BinSummary` is bit-identical to
what :class:`~repro.stream.window.StreamFeatureStage` computes from
raw records — detections from either path match byte for byte.

Version-1 traces take the same code path with the derived columns
computed on the fly per bin (:func:`repro.io.trace.derive_columns`),
trading the speedup for compatibility; ``repro trace upgrade``
backfills them permanently.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro import telemetry as tel
from repro.flows.features import N_FEATURES
from repro.io.trace import TraceReader, derive_columns
from repro.kernels import group_sums, grouped_entropy
from repro.net.routing import Router
from repro.net.topology import Topology
from repro.stream.window import BinSummary

__all__ = ["bin_summary_from_derived", "iter_precomputed_summaries"]


def bin_summary_from_derived(
    bin_index: int,
    ods: np.ndarray,
    runids: list[np.ndarray],
    packets: np.ndarray,
    byte_counts: np.ndarray,
    n_od_flows: int,
) -> BinSummary:
    """Build one bin's summary from its derived columns.

    Equivalent to feeding the bin's records through an exact-mode
    :class:`~repro.stream.window.BinAccumulator`: per feature, the run
    ids already encode the kernel's canonical (od, value) grouped order,
    so the count runs come from one weighted ``bincount`` (integer
    weights sum exactly in float64), the run -> OD boundaries from one
    scatter + diff, and the entropies from the same
    :func:`repro.kernels.grouped_entropy` pass — identical inputs,
    identical float arithmetic, bit-identical summary.
    """
    entropy = np.zeros((n_od_flows, N_FEATURES))
    n = len(ods)
    if n:
        packets = np.asarray(packets)
        # Zero-packet records carry run id -1 (the kernel drops them);
        # the mask is shared by all four features.
        if packets.min() == 0:
            valid = np.asarray(runids[0]) >= 0
            od_v = np.asarray(ods)[valid]
            w_v = packets[valid]
        else:
            valid = None
            od_v = ods
            w_v = packets
        for k in range(N_FEATURES):
            rid = np.asarray(runids[k])
            if valid is not None:
                rid = rid[valid]
            if not len(rid):
                continue
            counts = np.bincount(rid, weights=w_v)
            od_of_run = np.zeros(len(counts), dtype=np.int64)
            od_of_run[rid] = od_v
            new_group = np.empty(len(counts), dtype=bool)
            new_group[0] = True
            np.not_equal(od_of_run[1:], od_of_run[:-1], out=new_group[1:])
            group_starts = np.flatnonzero(new_group)
            starts = np.append(group_starts, len(counts)).astype(np.int64)
            entropy[od_of_run[group_starts], k] = grouped_entropy(counts, starts)
        pk = group_sums(ods, packets, n_od_flows)
        by = group_sums(ods, byte_counts, n_od_flows)
    else:
        pk = np.zeros(n_od_flows, dtype=np.int64)
        by = np.zeros(n_od_flows, dtype=np.int64)
    return BinSummary(
        bin=bin_index,
        entropy=entropy,
        packets=pk.astype(np.float64),
        bytes=by.astype(np.float64),
        n_records=n,
    )


def iter_precomputed_summaries(
    reader: TraceReader,
    topology: Topology,
    router: Router | None = None,
) -> Iterator[BinSummary]:
    """Yield exact-mode bin summaries straight from a trace.

    Exactly the bins the record-level stage would close: from the first
    non-empty bin through the last (gap bins in between yield empty
    summaries; leading/trailing empty bins never close).  Version-2
    traces whose stored anonymization depth matches the topology read
    the derived columns zero-copy; anything else derives them on the
    fly per bin — same summaries, minus the speedup.
    """
    counts = reader.info.bin_counts
    nonempty = np.flatnonzero(counts)
    if not len(nonempty):
        return
    stored = (
        reader.has_derived
        and int(reader.info.derived.get("anonymization_bits", -1))
        == int(topology.anonymization_bits)
    )
    if not stored and router is None:
        router = Router(topology)
    label = "replay.derived" if stored else "replay.derive_on_read"
    for b in range(int(nonempty[0]), int(nonempty[-1]) + 1):
        with tel.span(label):
            lo, hi = reader.bin_range(b)
            if stored:
                ods, runids = reader.read_derived_bin(b)
            else:
                batch = reader.read_bin(b)
                ods, runids = derive_columns(
                    batch, router, topology.anonymization_bits
                )
            summary = bin_summary_from_derived(
                b,
                ods,
                runids,
                reader.column("packets")[lo:hi],
                reader.column("bytes")[lo:hi],
                topology.n_od_flows,
            )
        tel.count("trace.records_replayed", int(hi - lo))
        yield summary
