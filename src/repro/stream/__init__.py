"""Streaming subsystem: chunked records -> sketch features -> online diagnosis.

The paper's Section 8 names online operation as the open problem; this
package is that pipeline.  See :mod:`repro.stream.engine` for the
end-to-end engine, :mod:`repro.stream.window` for the sketch-backed
feature stage, and :mod:`repro.stream.chunks` for bounded-memory record
ingestion.
"""

from repro.stream.chunks import (
    iter_record_chunks,
    synthetic_record_stream,
    trace_record_stream,
)
from repro.stream.engine import (
    StreamConfig,
    StreamDetection,
    StreamingDetectionEngine,
    StreamingReport,
)
from repro.stream.window import BinAccumulator, BinSummary, StreamFeatureStage

__all__ = [
    "iter_record_chunks",
    "synthetic_record_stream",
    "trace_record_stream",
    "StreamConfig",
    "StreamDetection",
    "StreamingDetectionEngine",
    "StreamingReport",
    "BinAccumulator",
    "BinSummary",
    "StreamFeatureStage",
]
