"""Sliding-window feature stage: records -> per-bin entropy matrices.

The batch pipeline materialises exact per-value histograms for every
(OD flow, bin) before computing entropy
(:class:`repro.flows.odflows.ODFlowAggregator`).  At line rate that
state is the bottleneck, so this stage swaps the histograms for
:class:`repro.flows.sketches.CountMinSketch` summaries — entropy
estimated from compact summaries in place of exact counts, following
the sketch line of the paper's related work (Krishnamurthy et
al. [22]).  Per bin it keeps, for every active OD flow, four sketches
plus a capped candidate-value set, and on bin close emits the
``(p, 4)`` entropy matrix and volume rows the detection engine consumes.

Memory is bounded by ``active ODs x 4 x (width x depth + candidate
cap)`` regardless of trace length; ``exact=True`` switches back to
exact histograms (same interface) for small deployments and for the
streaming-vs-batch equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.entropy import sample_entropy
from repro.flows.binning import BIN_SECONDS
from repro.flows.features import N_FEATURES, FEATURES
from repro.flows.records import FlowRecordBatch
from repro.flows.sketches import (
    CountMinSketch,
    aggregate_histogram,
    canonical_histogram,
    entropy_from_sketch,
)
from repro.net.routing import Router
from repro.net.topology import Topology

__all__ = ["BinSummary", "BinAccumulator", "StreamFeatureStage"]

#: Cap on tracked candidate values per (OD, feature); matches a router's
#: bounded tracked-key table.  Values beyond the cap still enter the
#: sketch totals and are absorbed by the uniform-tail correction.
MAX_CANDIDATES = 4096


@dataclass
class BinSummary:
    """One closed bin, ready for the detection engine.

    Attributes:
        bin: Global bin index (from record timestamps).
        entropy: ``(p, 4)`` estimated sample entropies, feature order
            :data:`repro.flows.features.FEATURES`.
        packets: ``(p,)`` packet counts.
        bytes: ``(p,)`` byte counts.
        n_records: Records aggregated into this bin.
    """

    bin: int
    entropy: np.ndarray
    packets: np.ndarray
    bytes: np.ndarray
    n_records: int = 0


class _FeatureSummary:
    """One (OD, feature) summary: a sketch + candidate set, or exact."""

    __slots__ = ("sketch", "candidates", "parts")

    def __init__(self, width: int, depth: int, seed: int, exact: bool) -> None:
        if exact:
            # Exact mode defers aggregation: chunks append (values,
            # counts) pairs and finalize groups them by value.
            self.parts: list[tuple[np.ndarray, np.ndarray]] | None = []
            self.sketch = None
            self.candidates: set[int] | None = None
        else:
            self.parts = None
            self.candidates = set()
            self.sketch = CountMinSketch(width=width, depth=depth, seed=seed)

    def add(self, values: np.ndarray, counts: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if self.parts is not None:
            self.parts.append((values, counts))
            return
        self.sketch.add_histogram(values, counts)
        if len(self.candidates) < MAX_CANDIDATES:
            self.candidates.update(values.tolist())

    def entropy(self) -> float:
        if self.parts is not None:
            if not self.parts:
                return 0.0
            values = np.concatenate([v for v, _ in self.parts])
            counts = np.concatenate([c for _, c in self.parts])
            _, grouped = aggregate_histogram(values, counts)
            return sample_entropy(grouped)
        return entropy_from_sketch(
            self.sketch, np.fromiter(self.candidates, dtype=np.int64, count=len(self.candidates))
        )

    def canonical(self) -> tuple[np.ndarray, np.ndarray]:
        """Exact mode only: the accumulated histogram in canonical form
        (values sorted, counts grouped) — the representation the
        mergeable shard summaries serialize."""
        if self.parts is None:
            raise ValueError("canonical() requires exact mode")
        if not self.parts:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        values = np.concatenate([v for v, _ in self.parts])
        counts = np.concatenate([c for _, c in self.parts])
        return canonical_histogram(values, counts)


class BinAccumulator:
    """Aggregates one bin's records into per-OD feature summaries."""

    def __init__(
        self,
        n_od_flows: int,
        width: int = 2048,
        depth: int = 4,
        seed: int = 0,
        exact: bool = False,
    ) -> None:
        self.n_od_flows = n_od_flows
        self.width = width
        self.depth = depth
        self.seed = seed
        self.exact = exact
        self._features: dict[int, list[_FeatureSummary]] = {}
        self._packets = np.zeros(n_od_flows, dtype=np.int64)
        self._bytes = np.zeros(n_od_flows, dtype=np.int64)
        self.n_records = 0

    def _od_features(self, od: int) -> list[_FeatureSummary]:
        entry = self._features.get(od)
        if entry is None:
            entry = [
                _FeatureSummary(self.width, self.depth, self.seed, self.exact)
                for _ in range(N_FEATURES)
            ]
            self._features[od] = entry
        return entry

    def add_batch(self, ods: np.ndarray, batch: FlowRecordBatch) -> None:
        """Add a record batch whose rows are already attributed to ODs."""
        ods = np.asarray(ods, dtype=np.int64)
        if len(ods) != len(batch):
            raise ValueError("ods must align with the batch")
        for od in np.unique(ods):
            mask = ods == od
            sub = batch.select(mask)
            entry = self._od_features(int(od))
            for k, name in enumerate(FEATURES):
                entry[k].add(getattr(sub, name), sub.packets)
            self._packets[od] += sub.total_packets
            self._bytes[od] += sub.total_bytes
        self.n_records += len(batch)

    def add_histograms(
        self, od: int, histograms, packets: float, byte_count: float
    ) -> None:
        """Add router-exported per-feature (values, counts) histograms.

        ``histograms`` is a length-4 sequence of ``(values, counts)``
        pairs in :data:`FEATURES` order — the distributed deployment
        where PoPs ship summaries instead of raw records.
        """
        if len(histograms) != N_FEATURES:
            raise ValueError(f"expected {N_FEATURES} histograms")
        entry = self._od_features(int(od))
        for k, (values, counts) in enumerate(histograms):
            entry[k].add(
                np.asarray(values, dtype=np.int64),
                np.asarray(counts, dtype=np.int64),
            )
        self._packets[od] += int(packets)
        self._bytes[od] += int(byte_count)

    def finalize(self, bin_index: int) -> BinSummary:
        """Emit the bin's entropy matrix and volume rows."""
        entropy = np.zeros((self.n_od_flows, N_FEATURES))
        for od, entry in self._features.items():
            for k in range(N_FEATURES):
                entropy[od, k] = entry[k].entropy()
        return BinSummary(
            bin=bin_index,
            entropy=entropy,
            packets=self._packets.astype(np.float64),
            bytes=self._bytes.astype(np.float64),
            n_records=self.n_records,
        )

    def export_state(self):
        """Raw accumulated state: ``(features, packets, bytes)``.

        ``features`` maps ``od -> [_FeatureSummary] * 4``; the volume
        arrays are the live int64 counters (callers must copy).  This is
        the hand-off the mergeable shard summaries
        (:mod:`repro.cluster.summary`) build from, so a shard can ship
        its pre-entropy state instead of a finished matrix.
        """
        return self._features, self._packets, self._bytes


@dataclass
class StreamFeatureStage:
    """Rolls time-ordered record chunks into successive bin summaries.

    Records are attributed to OD flows exactly like the batch
    aggregator — ingress PoP plus longest-prefix egress resolution via
    :class:`repro.net.routing.Router`, with the topology's collector
    anonymisation applied before histogramming — so the streaming and
    batch paths compute the same features from the same records.

    Attributes:
        topology: The backbone (defines p, routing, anonymisation).
        bin_width: Bin width in seconds (paper: 300).
        start: Trace epoch; bin ``i`` covers ``[start + i*width, ...)``.
        width / depth / sketch_seed: Count-Min sketch geometry.
        exact: Use exact histograms instead of sketches.
        apply_anonymization: Apply the topology's address anonymisation
            (the realistic collector default).
    """

    topology: Topology
    bin_width: float = BIN_SECONDS
    start: float = 0.0
    width: int = 2048
    depth: int = 4
    sketch_seed: int = 0
    exact: bool = False
    apply_anonymization: bool = True
    router: Router | None = None
    _current: BinAccumulator | None = field(default=None, repr=False)
    _current_bin: int | None = field(default=None, repr=False)
    late_records: int = 0

    def __post_init__(self) -> None:
        if self.router is None:
            self.router = Router(self.topology)

    def _new_accumulator(self) -> BinAccumulator:
        return BinAccumulator(
            self.topology.n_od_flows,
            width=self.width,
            depth=self.depth,
            seed=self.sketch_seed,
            exact=self.exact,
        )

    def ingest(self, batch: FlowRecordBatch) -> list[BinSummary]:
        """Feed one chunk; returns summaries of any bins it closed.

        Chunks must arrive in (roughly) time order: records for bins
        before the currently open one are counted in ``late_records``
        and dropped, mirroring a collector's export-window discard.
        Gaps in the bin sequence yield empty summaries so downstream
        detectors see every bin exactly once.
        """
        closed: list[BinSummary] = []
        if len(batch) == 0:
            return closed
        idx = np.floor((batch.timestamp - self.start) / self.bin_width).astype(np.int64)
        order = np.argsort(idx, kind="stable")
        idx = idx[order]
        batch = batch.select(order)
        for b in np.unique(idx):
            b = int(b)
            mask = idx == b
            if self._current_bin is not None and b < self._current_bin:
                self.late_records += int(mask.sum())
                continue
            if self._current_bin is None:
                self._current_bin = b
                self._current = self._new_accumulator()
            while b > self._current_bin:
                closed.append(self._close())
            sub = batch.select(mask)
            if self.apply_anonymization and self.topology.anonymization_bits:
                anon = sub.anonymized(self.topology.anonymization_bits)
            else:
                anon = sub
            # Vectorised OD attribution over mixed ingress PoPs:
            # od = ingress * n_pops + egress (same rule as resolve_od).
            ods = (
                sub.ingress_pop * self.topology.n_pops
                + self.router.egress_pops(sub.dst_ip)
            )
            self._current.add_batch(ods, anon)
        return closed

    def ingest_histograms(
        self, bin_index: int, hists_by_od
    ) -> list[BinSummary]:
        """Feed one bin's router-exported histograms directly.

        Args:
            bin_index: Global bin index (must be >= the open bin).
            hists_by_od: Mapping ``od -> (histograms, packets, bytes)``
                with ``histograms`` a length-4 sequence of
                ``(values, counts)`` pairs.

        Returns:
            Summaries of bins closed by advancing to ``bin_index``.
        """
        closed: list[BinSummary] = []
        if self._current_bin is None:
            self._current_bin = int(bin_index)
            self._current = self._new_accumulator()
        if bin_index < self._current_bin:
            raise ValueError("histogram bins must arrive in order")
        while bin_index > self._current_bin:
            closed.append(self._close())
        for od, (hists, packets, byte_count) in hists_by_od.items():
            self._current.add_histograms(int(od), hists, packets, byte_count)
        return closed

    def _finalize(self, accumulator: BinAccumulator, bin_index: int):
        """Build the emitted summary for one closed bin.

        Override point: the default emits a ready-to-score
        :class:`BinSummary`; a shard monitor instead exports the
        accumulator's mergeable state (entropy deferred to the central
        merge point).
        """
        return accumulator.finalize(bin_index)

    def _close(self):
        summary = self._finalize(self._current, self._current_bin)
        self._current_bin += 1
        self._current = self._new_accumulator()
        return summary

    def flush(self) -> list[BinSummary]:
        """Close the open bin (end of stream)."""
        if self._current_bin is None or self._current is None:
            return []
        if self._current.n_records == 0 and not self._current._features:
            return []
        summary = self._finalize(self._current, self._current_bin)
        self._current = None
        self._current_bin = None
        return [summary]
