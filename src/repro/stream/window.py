"""Sliding-window feature stage: records -> per-bin entropy matrices.

The batch pipeline materialises exact per-value histograms for every
(OD flow, bin) before computing entropy
(:class:`repro.flows.odflows.ODFlowAggregator`).  At line rate that
state is the bottleneck, so this stage swaps the histograms for
:class:`repro.flows.sketches.CountMinSketch` summaries — entropy
estimated from compact summaries in place of exact counts, following
the sketch line of the paper's related work (Krishnamurthy et
al. [22]).  Per bin it keeps one grouped store per feature — a
:class:`repro.flows.sketches.SketchBank` holding every active OD's
sketch in one array (plus capped candidate-value sets), updated for a
whole chunk in one batched pass via the grouped-reduction kernel
(:mod:`repro.kernels`) — and on bin close emits the ``(p, 4)`` entropy
matrix and volume rows the detection engine consumes.

Memory is bounded by ``active ODs x 4 x (width x depth + candidate
cap)`` regardless of trace length; ``exact=True`` switches to exact
histograms (same interface): chunk columns are stashed per feature and
reduced once at bin close — one sort + ``reduceat`` + grouped-entropy
pass for all ODs, used by small deployments and the streaming-vs-batch
equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry as tel
from repro.flows.binning import BIN_SECONDS
from repro.flows.features import N_FEATURES, FEATURES
from repro.flows.records import FlowRecordBatch
from repro.flows.sketches import SketchBank, entropy_from_sketch_runs
from repro.kernels import GroupedRuns, group_reduce, group_sums
from repro.net.routing import Router
from repro.net.topology import Topology

__all__ = ["BinSummary", "BinAccumulator", "StreamFeatureStage"]

#: Cap on tracked candidate values per (OD, feature); matches a router's
#: bounded tracked-key table.  Values beyond the cap still enter the
#: sketch totals and are absorbed by the uniform-tail correction.
MAX_CANDIDATES = 4096


@dataclass
class BinSummary:
    """One closed bin, ready for the detection engine.

    Attributes:
        bin: Global bin index (from record timestamps).
        entropy: ``(p, 4)`` estimated sample entropies, feature order
            :data:`repro.flows.features.FEATURES`.
        packets: ``(p,)`` packet counts.
        bytes: ``(p,)`` byte counts.
        n_records: Records aggregated into this bin.
    """

    bin: int
    entropy: np.ndarray
    packets: np.ndarray
    bytes: np.ndarray
    n_records: int = 0


class BinAccumulator:
    """Aggregates one bin's records into per-OD feature summaries.

    One *per-bin grouped store* replaces the per-OD objects the first
    implementation kept: exact mode stashes each chunk's (ods, values,
    weights) columns and reduces them with the grouped-reduction kernel
    on bin close (one sort + ``reduceat`` + grouped entropy per
    feature); sketch mode drives a :class:`SketchBank` per feature —
    every chunk's runs update all active ODs' sketches in one batched
    conservative-update pass.  No code path loops over ODs per chunk.
    """

    def __init__(
        self,
        n_od_flows: int,
        width: int = 2048,
        depth: int = 4,
        seed: int = 0,
        exact: bool = False,
        threads: int = 1,
    ) -> None:
        self.n_od_flows = n_od_flows
        self.width = width
        self.depth = depth
        self.seed = seed
        self.exact = exact
        self.threads = threads
        if exact:
            #: per feature: list of (ods, values, weights) column triples
            self._parts: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
                [] for _ in range(N_FEATURES)
            ]
            self._banks = None
            self._candidates = None
        else:
            self._parts = None
            self._banks = [
                SketchBank(width=width, depth=depth, seed=seed)
                for _ in range(N_FEATURES)
            ]
            #: od -> per-feature candidate-value sets (capped)
            self._candidates: dict[int, list[set[int]]] = {}
        self._packets = np.zeros(n_od_flows, dtype=np.int64)
        self._bytes = np.zeros(n_od_flows, dtype=np.int64)
        self.n_records = 0
        #: True once any record batch or histogram landed here (empty
        #: histograms included) — bins touched this way still close.
        self.touched = False

    def _add_feature(self, k: int, ods: np.ndarray, values: np.ndarray,
                     weights: np.ndarray) -> None:
        if self.exact:
            self._parts[k].append((ods, values, weights))
            return
        runs = group_reduce(ods, values, weights, threads=self.threads)
        self._banks[k].update(runs.group_ids, runs.starts, runs.values, runs.counts)
        # Localised loop state: this runs once per (chunk, feature, OD)
        # and the attribute/str lookups were visible in profiles.
        table = self._candidates
        starts = runs.starts.tolist()
        run_values = runs.values
        for i, od in enumerate(runs.group_ids.tolist()):
            entry = table.get(od)
            if entry is None:
                entry = table[od] = [set() for _ in range(N_FEATURES)]
            candidates = entry[k]
            if len(candidates) < MAX_CANDIDATES:
                candidates.update(run_values[starts[i]:starts[i + 1]].tolist())

    def add_batch(self, ods: np.ndarray, batch: FlowRecordBatch) -> None:
        """Add a record batch whose rows are already attributed to ODs."""
        ods = np.asarray(ods, dtype=np.int64)
        if len(ods) != len(batch):
            raise ValueError("ods must align with the batch")
        if len(batch) == 0:
            return
        self.touched = True
        for k, name in enumerate(FEATURES):
            self._add_feature(k, ods, getattr(batch, name), batch.packets)
        self._packets += group_sums(ods, batch.packets, self.n_od_flows)
        self._bytes += group_sums(ods, batch.bytes, self.n_od_flows)
        self.n_records += len(batch)

    def add_histograms(
        self, od: int, histograms, packets: float, byte_count: float
    ) -> None:
        """Add router-exported per-feature (values, counts) histograms.

        ``histograms`` is a length-4 sequence of ``(values, counts)``
        pairs in :data:`FEATURES` order — the distributed deployment
        where PoPs ship summaries instead of raw records.
        """
        if len(histograms) != N_FEATURES:
            raise ValueError(f"expected {N_FEATURES} histograms")
        self.touched = True
        if not self.exact:
            # Register the OD even when every histogram is empty, so
            # the closed bin still carries an (all-zero) row for it.
            self._candidates.setdefault(int(od), [set() for _ in range(N_FEATURES)])
        for k, (values, counts) in enumerate(histograms):
            values = np.asarray(values, dtype=np.int64)
            counts = np.asarray(counts, dtype=np.int64)
            ods = np.full(len(values), int(od), dtype=np.int64)
            self._add_feature(k, ods, values, counts)
        self._packets[od] += int(packets)
        self._bytes[od] += int(byte_count)

    def feature_runs(self, k: int) -> GroupedRuns:
        """Exact mode: feature ``k``'s accumulated (od, value, count)
        runs in canonical sorted form — per OD, values ascending and
        counts grouped, exactly what the mergeable shard summaries
        serialize."""
        if not self.exact:
            raise ValueError("feature_runs() requires exact mode")
        parts = self._parts[k]
        if not parts:
            empty = np.zeros(0, dtype=np.int64)
            return GroupedRuns(empty, np.zeros(1, dtype=np.int64), empty, empty)
        if len(parts) == 1:
            ods, values, weights = parts[0]
        else:
            ods = np.concatenate([p[0] for p in parts])
            values = np.concatenate([p[1] for p in parts])
            weights = np.concatenate([p[2] for p in parts])
        return group_reduce(ods, values, weights, threads=self.threads)

    def sketch_state(self):
        """Sketch mode: ``(banks, candidates)`` — the four per-feature
        :class:`SketchBank` objects and the ``od -> [set] * 4``
        candidate-value map.  The hand-off the mergeable shard
        summaries (:mod:`repro.cluster.summary`) build from."""
        if self.exact:
            raise ValueError("sketch_state() requires sketch mode")
        return self._banks, self._candidates

    def finalize(self, bin_index: int) -> BinSummary:
        """Emit the bin's entropy matrix and volume rows."""
        entropy = np.zeros((self.n_od_flows, N_FEATURES))
        if self.exact:
            for k in range(N_FEATURES):
                runs = self.feature_runs(k)
                entropy[runs.group_ids, k] = runs.entropies()
        else:
            # One batched bank query + one vectorized estimator pass per
            # feature covers every active OD's candidate set at once.
            ods = np.asarray(sorted(self._candidates), dtype=np.int64)
            for k in range(N_FEATURES):
                candidates = [sorted(self._candidates[int(od)][k]) for od in ods]
                lengths = np.array([len(c) for c in candidates], dtype=np.int64)
                starts = np.zeros(len(ods) + 1, dtype=np.int64)
                np.cumsum(lengths, out=starts[1:])
                values = (
                    np.concatenate([np.asarray(c, dtype=np.int64) for c in candidates])
                    if len(candidates)
                    else np.zeros(0, dtype=np.int64)
                )
                estimates, totals = self._banks[k].query_runs(ods, starts, values)
                entropy[ods, k] = entropy_from_sketch_runs(estimates, totals, starts)
        return BinSummary(
            bin=bin_index,
            entropy=entropy,
            packets=self._packets.astype(np.float64),
            bytes=self._bytes.astype(np.float64),
            n_records=self.n_records,
        )

    def export_volumes(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the per-OD int64 packet/byte counters."""
        return self._packets.copy(), self._bytes.copy()


@dataclass
class StreamFeatureStage:
    """Rolls time-ordered record chunks into successive bin summaries.

    Records are attributed to OD flows exactly like the batch
    aggregator — ingress PoP plus longest-prefix egress resolution via
    :class:`repro.net.routing.Router`, with the topology's collector
    anonymisation applied before histogramming — so the streaming and
    batch paths compute the same features from the same records.

    Attributes:
        topology: The backbone (defines p, routing, anonymisation).
        bin_width: Bin width in seconds (paper: 300).
        start: Trace epoch; bin ``i`` covers ``[start + i*width, ...)``.
        width / depth / sketch_seed: Count-Min sketch geometry.
        exact: Use exact histograms instead of sketches.
        apply_anonymization: Apply the topology's address anonymisation
            (the realistic collector default).
        threads: Grouped-reduction kernel threads (bit-identical at any
            value; 1 is the pinned reference).
    """

    topology: Topology
    bin_width: float = BIN_SECONDS
    start: float = 0.0
    width: int = 2048
    depth: int = 4
    sketch_seed: int = 0
    exact: bool = False
    apply_anonymization: bool = True
    threads: int = 1
    router: Router | None = None
    _current: BinAccumulator | None = field(default=None, repr=False)
    _current_bin: int | None = field(default=None, repr=False)
    late_records: int = 0

    def __post_init__(self) -> None:
        if self.router is None:
            self.router = Router(self.topology)

    def _new_accumulator(self) -> BinAccumulator:
        return BinAccumulator(
            self.topology.n_od_flows,
            width=self.width,
            depth=self.depth,
            seed=self.sketch_seed,
            exact=self.exact,
            threads=self.threads,
        )

    def ingest(
        self, batch: FlowRecordBatch, ods: np.ndarray | None = None
    ) -> list[BinSummary]:
        """Feed one chunk; returns summaries of any bins it closed.

        Chunks must arrive in (roughly) time order: records for bins
        before the currently open one are counted in ``late_records``
        and dropped, mirroring a collector's export-window discard.
        Gaps in the bin sequence yield empty summaries so downstream
        detectors see every bin exactly once.

        Args:
            batch: The record chunk.
            ods: Optional per-record OD attribution aligned with the
                batch.  Callers that already resolved ODs (a cluster
                worker slicing a shared trace) pass them here to skip
                the stage's own longest-prefix pass; by default the
                stage resolves via its router.
        """
        closed: list[BinSummary] = []
        if len(batch) == 0:
            return closed
        if ods is not None and len(ods) != len(batch):
            raise ValueError("ods must align with the batch")
        with tel.span("stage.reduce"):
            idx = np.floor((batch.timestamp - self.start) / self.bin_width).astype(np.int64)
            if idx.size > 1 and np.any(idx[1:] < idx[:-1]):
                order = np.argsort(idx, kind="stable")
                idx = idx[order]
                batch = batch.select(order)
                if ods is not None:
                    ods = ods[order]
            distinct = np.unique(idx)
            single_bin = len(distinct) == 1
            for b in distinct:
                b = int(b)
                mask = None if single_bin else idx == b
                if self._current_bin is not None and b < self._current_bin:
                    self.late_records += len(batch) if single_bin else int(mask.sum())
                    continue
                if self._current_bin is None:
                    self._current_bin = b
                    self._current = self._new_accumulator()
                while b > self._current_bin:
                    closed.append(self._close())
                sub = batch if single_bin else batch.select(mask)
                if self.apply_anonymization and self.topology.anonymization_bits:
                    anon = sub.anonymized(self.topology.anonymization_bits)
                else:
                    anon = sub
                if ods is None:
                    sub_ods = self.router.resolve_ods_mixed(sub.ingress_pop, sub.dst_ip)
                else:
                    sub_ods = ods if single_bin else ods[mask]
                self._current.add_batch(sub_ods, anon)
            tel.count("reduce.records", len(batch))
        return closed

    def ingest_histograms(
        self, bin_index: int, hists_by_od
    ) -> list[BinSummary]:
        """Feed one bin's router-exported histograms directly.

        Args:
            bin_index: Global bin index (must be >= the open bin).
            hists_by_od: Mapping ``od -> (histograms, packets, bytes)``
                with ``histograms`` a length-4 sequence of
                ``(values, counts)`` pairs.

        Returns:
            Summaries of bins closed by advancing to ``bin_index``.
        """
        closed: list[BinSummary] = []
        if self._current_bin is None:
            self._current_bin = int(bin_index)
            self._current = self._new_accumulator()
        if bin_index < self._current_bin:
            raise ValueError("histogram bins must arrive in order")
        while bin_index > self._current_bin:
            closed.append(self._close())
        for od, (hists, packets, byte_count) in hists_by_od.items():
            self._current.add_histograms(int(od), hists, packets, byte_count)
        return closed

    def _finalize(self, accumulator: BinAccumulator, bin_index: int):
        """Build the emitted summary for one closed bin.

        Override point: the default emits a ready-to-score
        :class:`BinSummary`; a shard monitor instead exports the
        accumulator's mergeable state (entropy deferred to the central
        merge point).
        """
        return accumulator.finalize(bin_index)

    def _close(self):
        with tel.span("stage.reduce.close"):
            summary = self._finalize(self._current, self._current_bin)
        tel.count("reduce.bins_closed")
        self._current_bin += 1
        self._current = self._new_accumulator()
        return summary

    def flush(self) -> list[BinSummary]:
        """Close the open bin (end of stream)."""
        if self._current_bin is None or self._current is None:
            return []
        if not self._current.touched:
            return []
        with tel.span("stage.reduce.close"):
            summary = self._finalize(self._current, self._current_bin)
        tel.count("reduce.bins_closed")
        self._current = None
        self._current_bin = None
        return [summary]
