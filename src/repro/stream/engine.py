"""The streaming detection engine: records in, diagnosed anomalies out.

This is the online pipeline the paper names as the key open problem in
Section 8.  Since the ``repro.pipeline`` refactor the engine is a thin
composition of two shared pieces — it owns no scoring logic of its own:

1. **features** — :class:`repro.stream.window.StreamFeatureStage`, the
   bin reducer rolling time-ordered record chunks into per-bin
   ``(p, 4)`` entropy matrices (Count-Min sketches or exact
   kernel-reduced histograms);
2. **detection + classification** —
   :class:`repro.pipeline.bank.DetectorBank`, the pluggable scoring
   core (multiway entropy subspace, volume baseline, online
   classifier) shared with the batch driver and the cluster
   coordinator.

The engine either warms up from a historical
:class:`repro.flows.odflows.TrafficCube` or accumulates its first
``warmup_bins`` summaries from the stream itself; afterwards every
closed bin produces a :class:`StreamDetection` verdict, and
:meth:`StreamingReport.to_diagnosis_report` renders the accumulated run
in the same :class:`repro.core.detector.DiagnosisReport` shape the
batch pipeline emits — so tables, exports and tests work on either.
(`StreamDetection`/`StreamingReport` live in
:mod:`repro.pipeline.report` and are re-exported here.)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.subspace import DEFAULT_ALPHA, DEFAULT_N_COMPONENTS
from repro.flows.binning import BIN_SECONDS
from repro.flows.odflows import TrafficCube
from repro.flows.records import FlowRecordBatch
from repro.net.topology import Topology
from repro.pipeline.bank import DEFAULT_DETECTORS, DetectorBank
from repro.pipeline.report import StreamDetection, StreamingReport
from repro.stream.chunks import DEFAULT_CHUNK_RECORDS, iter_record_chunks
from repro.stream.window import BinSummary, StreamFeatureStage

__all__ = ["StreamConfig", "StreamDetection", "StreamingReport", "StreamingDetectionEngine"]


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming engine.

    Attributes:
        warmup_bins: Bins accumulated before fitting when warming up
            from the stream itself (ignored after
            :meth:`StreamingDetectionEngine.warm_up`).
        window: Sliding-buffer length for periodic refits (default:
            ``warmup_bins``).
        refit_every: Clean bins between refits (0 freezes the model).
        n_components: Normal-subspace dimension (paper default 10).
        alpha: Q-statistic confidence level (paper default 0.999).
        normalization: Multiway feature-block normalisation mode.
        identify: Run multi-attribute identification per detection.
        drift_reset_after: Consecutive detections treated as concept
            drift (absorb + refit); 0 disables.
        volume_transform / volume_detrend: Stabilisers for the online
            volume path (see
            :class:`repro.core.online.OnlineVolumeDetector`); the
            defaults make short sub-diurnal warm-ups usable.  Set both
            to ``"none"`` (and ``calibration_margin=0``) to score
            volumes exactly like the batch baseline.
        calibration_margin: Empirical threshold floor for the entropy
            detector — margin * max in-window SPE; 0 keeps the pure
            Q_alpha threshold.
        volume_calibration_margin: Same floor for the volume detectors.
            Volume anomalies sit orders of magnitude above the noise, so
            a much larger margin costs no sensitivity and silences
            post-attack forecast echoes.
        spawn_distance: Online-classifier new-cluster distance.
        sketch_width / sketch_depth / sketch_seed: Count-Min geometry.
        exact_histograms: Bypass sketches (exact per-value histograms).
        chunk_records: Re-chunking bound for :meth:`process`.
        threads: Grouped-reduction kernel threads (1 = the pinned
            single-threaded reference; any value is bit-identical, see
            :func:`repro.kernels.group_reduce`).
    """

    warmup_bins: int = 288
    window: int | None = None
    refit_every: int = 288
    n_components: int | None = DEFAULT_N_COMPONENTS
    alpha: float = DEFAULT_ALPHA
    normalization: str = "variance"
    identify: bool = True
    drift_reset_after: int = 12
    volume_transform: str = "sqrt"
    volume_detrend: str = "holt"
    calibration_margin: float = 1.25
    volume_calibration_margin: float = 2.5
    spawn_distance: float = 0.7
    sketch_width: int = 2048
    sketch_depth: int = 4
    sketch_seed: int = 0
    exact_histograms: bool = False
    chunk_records: int = DEFAULT_CHUNK_RECORDS
    threads: int = 1


class StreamingDetectionEngine:
    """Chunked, sketch-backed online anomaly diagnosis.

    Usage (cold start, warming up from the stream itself)::

        engine = StreamingDetectionEngine(abilene(), StreamConfig(warmup_bins=96))
        report = engine.process(record_chunks)

    or with a historical cube::

        engine.warm_up(history_cube)
        for chunk in live_chunks:
            for verdict in engine.ingest(chunk):
                ...
        report = engine.finish()
    """

    def __init__(
        self,
        topology: Topology,
        config: StreamConfig | None = None,
        bin_width: float = BIN_SECONDS,
        start: float = 0.0,
        detectors: tuple[str, ...] = DEFAULT_DETECTORS,
    ) -> None:
        self.topology = topology
        self.config = config or StreamConfig()
        cfg = self.config
        self.stage = StreamFeatureStage(
            topology,
            bin_width=bin_width,
            start=start,
            width=cfg.sketch_width,
            depth=cfg.sketch_depth,
            sketch_seed=cfg.sketch_seed,
            exact=cfg.exact_histograms,
            threads=cfg.threads,
        )
        self.bank = DetectorBank(cfg, detectors=detectors)
        #: Free-form provenance copied onto the final report (scenario
        #: name, source kind, trace path, mode ...).
        self.meta: dict = {}
        self._n_records = 0

    # -- back-compat accessors into the bank -----------------------------

    @property
    def detector(self):
        """The online multiway entropy detector (when configured)."""
        adapter = self.bank.detectors.get("entropy")
        return adapter.detector if adapter is not None else None

    @property
    def classifier(self):
        """The bank's online classifier."""
        return self.bank.classifier

    # -- warm-up ---------------------------------------------------------

    @property
    def is_warm(self) -> bool:
        """Whether the detection models are fitted."""
        return self.bank.is_warm

    def warm_up(self, cube: TrafficCube) -> "StreamingDetectionEngine":
        """Fit the detection models on a historical cube.

        The multiway detector freezes on the cube's entropy tensor (its
        sliding buffer seeded with the trailing window) and one volume
        subspace model is fitted per metric, matching the batch
        pipeline's volume baseline.
        """
        self.bank.warm_up_cube(cube)
        return self

    def seed_classifier(self, centroids: np.ndarray) -> None:
        """Seed the online classifier with offline cluster centroids."""
        self.bank.seed_classifier(centroids)

    # -- ingestion -------------------------------------------------------

    def ingest(self, batch: FlowRecordBatch) -> list[StreamDetection]:
        """Feed one time-ordered record chunk; returns bin verdicts.

        Warm-up bins are absorbed silently (no verdict); every scored
        bin afterwards yields one :class:`StreamDetection`.
        """
        self._n_records += len(batch)
        verdicts = (self.bank.observe(s) for s in self.stage.ingest(batch))
        return [v for v in verdicts if v is not None]

    def ingest_histograms(self, bin_index: int, hists_by_od) -> list[StreamDetection]:
        """Feed one bin of router-exported histograms (see window stage)."""
        verdicts = (
            self.bank.observe(s)
            for s in self.stage.ingest_histograms(bin_index, hists_by_od)
        )
        return [v for v in verdicts if v is not None]

    def observe_summary(self, summary: BinSummary) -> StreamDetection | None:
        """Score one already-built bin summary (coordinator/batch entry)."""
        return self.bank.observe(summary)

    # -- driving ---------------------------------------------------------

    def finish(self) -> StreamingReport:
        """Flush the open bin and return the accumulated report."""
        for summary in self.stage.flush():
            self.bank.observe(summary)
        return self.bank.finish(
            n_records=self._n_records,
            late_records=self.stage.late_records,
            meta=self.meta,
        )

    def _chunks(
        self, source: "str | Path | FlowRecordBatch | Iterable[FlowRecordBatch]"
    ) -> Iterator[FlowRecordBatch]:
        """Normalise any record source into bounded chunks.

        A string or :class:`~pathlib.Path` names a columnar trace file
        (:mod:`repro.io.trace`): it is replayed as zero-copy
        memory-mapped chunks sized by ``config.chunk_records``, after
        checking that the trace's network and bin grid match this
        engine's (replaying onto a different grid would silently re-bin
        every record).
        """
        if isinstance(source, (str, Path)):
            from repro.io.trace import trace_info
            from repro.stream.chunks import trace_record_stream

            trace_info(source).ensure_compatible(
                network=self.topology.name,
                bin_width=self.stage.bin_width,
                start=self.stage.start,
            )
            self.meta.setdefault("source", "trace")
            self.meta.setdefault("trace_path", str(source))
            return trace_record_stream(
                source, chunk_records=self.config.chunk_records
            )
        return iter_record_chunks(source, self.config.chunk_records)

    def process(
        self, source: "str | Path | FlowRecordBatch | Iterable[FlowRecordBatch]"
    ) -> StreamingReport:
        """Run a whole record stream end-to-end (re-chunked, bounded).

        ``source`` may also be a trace-file path, replayed zero-copy.
        """
        for chunk in self._chunks(source):
            self.ingest(chunk)
        return self.finish()

    def process_precomputed(
        self, trace: "str | Path | TraceReader", readahead: bool = False
    ) -> StreamingReport:
        """Run exact detection straight from a trace's derived columns.

        The precomputed fast path: per-bin summaries are rebuilt from
        the trace's stored OD/run-id columns (version 2) — no
        longest-prefix attribution, no per-bin stable sort — and scored
        through the same detector bank, so the report is bit-identical
        to :meth:`process` over the same trace.  Version-1 traces work
        too (the columns are derived on the fly per bin).

        Args:
            trace: Trace path, or an already-open
                :class:`~repro.io.trace.TraceReader`.
            readahead: Issue ``posix_fadvise(WILLNEED)`` on open so a
                cold replay overlaps page-ins with compute (ignored for
                an already-open reader).

        Raises:
            ValueError: In sketch mode — sketches hash raw feature
                values, which the derived columns do not store.
        """
        from repro.io.trace import TraceReader
        from repro.stream.replay import iter_precomputed_summaries

        if not self.config.exact_histograms:
            raise ValueError(
                "precomputed replay requires exact_histograms=True "
                "(sketch mode hashes raw feature values, which the "
                "derived columns do not carry)"
            )
        if isinstance(trace, TraceReader):
            reader = trace
        else:
            reader = TraceReader(trace, readahead=readahead)
        reader.info.ensure_compatible(
            network=self.topology.name,
            bin_width=self.stage.bin_width,
            start=self.stage.start,
        )
        self.meta.setdefault("source", "trace")
        self.meta.setdefault("trace_path", str(reader.path))
        self.meta.setdefault(
            "replay", "precomputed" if reader.has_derived else "derive-on-read"
        )
        for summary in iter_precomputed_summaries(
            reader, self.topology, router=self.stage.router
        ):
            self._n_records += summary.n_records
            self.bank.observe(summary)
        return self.bank.finish(
            n_records=self._n_records, late_records=0, meta=self.meta
        )

    def events(
        self, source: "str | Path | FlowRecordBatch | Iterable[FlowRecordBatch]"
    ) -> Iterator[StreamDetection]:
        """Iterate bin verdicts as the stream is consumed (lazy).

        ``source`` may also be a trace-file path, replayed zero-copy.
        """
        for chunk in self._chunks(source):
            yield from self.ingest(chunk)
        for summary in self.stage.flush():
            verdict = self.bank.observe(summary)
            if verdict is not None:
                yield verdict
