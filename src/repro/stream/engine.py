"""The streaming detection engine: records in, diagnosed anomalies out.

This is the online pipeline the paper names as the key open problem in
Section 8, assembled from the repo's existing pieces:

1. **ingestion** — time-ordered flow-record chunks
   (:mod:`repro.stream.chunks`) in bounded-memory batches,
2. **features** — per-bin ``(p, 4)`` entropy matrices estimated from
   Count-Min sketches (:mod:`repro.stream.window`),
3. **detection** — volume scoring against frozen per-metric subspace
   models plus :class:`repro.core.online.OnlineMultiwayDetector`
   (frozen multiway subspace, O(p*m) per bin, periodic refit from a
   sliding buffer), and
4. **classification** — :class:`repro.core.online.OnlineClassifier`
   nearest-centroid assignment in entropy space, spawning clusters for
   new anomaly types.

The engine either warms up from a historical
:class:`repro.flows.odflows.TrafficCube` or accumulates its first
``warmup_bins`` summaries from the stream itself; afterwards every
closed bin produces a :class:`StreamDetection` verdict, and
:meth:`StreamingReport.to_diagnosis_report` renders the accumulated run
in the same :class:`repro.core.detector.DiagnosisReport` shape the
batch pipeline emits — so tables, exports and tests work on either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.classify import summarize_clusters
from repro.core.clustering import ClusteringResult
from repro.core.detector import DiagnosedAnomaly, DiagnosisReport
from repro.core.identification import IdentifiedFlow
from repro.core.online import (
    OnlineClassifier,
    OnlineMultiwayDetector,
    OnlineVolumeDetector,
)
from repro.core.subspace import DEFAULT_ALPHA, DEFAULT_N_COMPONENTS
from repro.flows.binning import BIN_SECONDS
from repro.flows.features import N_FEATURES
from repro.flows.odflows import TrafficCube
from repro.flows.records import FlowRecordBatch
from repro.net.topology import Topology
from repro.stream.chunks import DEFAULT_CHUNK_RECORDS, iter_record_chunks
from repro.stream.window import BinSummary, StreamFeatureStage

__all__ = ["StreamConfig", "StreamDetection", "StreamingReport", "StreamingDetectionEngine"]


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming engine.

    Attributes:
        warmup_bins: Bins accumulated before fitting when warming up
            from the stream itself (ignored after
            :meth:`StreamingDetectionEngine.warm_up`).
        window: Sliding-buffer length for periodic refits (default:
            ``warmup_bins``).
        refit_every: Clean bins between refits (0 freezes the model).
        n_components: Normal-subspace dimension (paper default 10).
        alpha: Q-statistic confidence level (paper default 0.999).
        normalization: Multiway feature-block normalisation mode.
        identify: Run multi-attribute identification per detection.
        drift_reset_after: Consecutive detections treated as concept
            drift (absorb + refit); 0 disables.
        volume_transform / volume_detrend: Stabilisers for the online
            volume path (see
            :class:`repro.core.online.OnlineVolumeDetector`); the
            defaults make short sub-diurnal warm-ups usable.  Set both
            to ``"none"`` (and ``calibration_margin=0``) to score
            volumes exactly like the batch baseline.
        calibration_margin: Empirical threshold floor for the entropy
            detector — margin * max in-window SPE; 0 keeps the pure
            Q_alpha threshold.
        volume_calibration_margin: Same floor for the volume detectors.
            Volume anomalies sit orders of magnitude above the noise, so
            a much larger margin costs no sensitivity and silences
            post-attack forecast echoes.
        spawn_distance: Online-classifier new-cluster distance.
        sketch_width / sketch_depth / sketch_seed: Count-Min geometry.
        exact_histograms: Bypass sketches (exact per-value histograms).
        chunk_records: Re-chunking bound for :meth:`process`.
    """

    warmup_bins: int = 288
    window: int | None = None
    refit_every: int = 288
    n_components: int | None = DEFAULT_N_COMPONENTS
    alpha: float = DEFAULT_ALPHA
    normalization: str = "variance"
    identify: bool = True
    drift_reset_after: int = 12
    volume_transform: str = "sqrt"
    volume_detrend: str = "holt"
    calibration_margin: float = 1.25
    volume_calibration_margin: float = 2.5
    spawn_distance: float = 0.7
    sketch_width: int = 2048
    sketch_depth: int = 4
    sketch_seed: int = 0
    exact_histograms: bool = False
    chunk_records: int = DEFAULT_CHUNK_RECORDS


@dataclass
class StreamDetection:
    """Verdict for one scored (post-warm-up) bin.

    Attributes:
        bin: Global bin index.
        spe_entropy: Multiway SPE of the bin (0 for clean bins; the
            online detector only reports SPE on detections).
        threshold: Q threshold the SPE was compared against.
        detected_by_entropy: Multiway SPE exceeded the threshold.
        detected_by_volume: Packet or byte row exceeded its threshold.
        flows: Identified OD flows (entropy detections only).
        entropy_vector: ``(4,)`` displacement of the primary flow.
        unit_vector: Unit-normalised version (zero when unidentified).
        cluster: Online-classifier cluster (-1 when not classified).
        n_records: Records aggregated into the bin.
    """

    bin: int
    spe_entropy: float
    threshold: float
    detected_by_entropy: bool
    detected_by_volume: bool
    flows: list[IdentifiedFlow] = field(default_factory=list)
    entropy_vector: np.ndarray = field(default_factory=lambda: np.zeros(N_FEATURES))
    unit_vector: np.ndarray = field(default_factory=lambda: np.zeros(N_FEATURES))
    cluster: int = -1
    n_records: int = 0

    @property
    def detected(self) -> bool:
        """Flagged by either method."""
        return self.detected_by_entropy or self.detected_by_volume

    @property
    def primary_od(self) -> int | None:
        """OD flow of the strongest identified component."""
        return self.flows[0].od if self.flows else None


@dataclass
class StreamingReport:
    """Accumulated outcome of a streaming run."""

    detections: list[StreamDetection]
    n_bins_scored: int
    n_bins_warmup: int
    n_records: int
    late_records: int
    classifier: OnlineClassifier | None = None

    @property
    def entropy_bins(self) -> np.ndarray:
        """Bins flagged by the multiway entropy method."""
        return np.array(
            sorted(d.bin for d in self.detections if d.detected_by_entropy),
            dtype=np.int64,
        )

    @property
    def volume_bins(self) -> np.ndarray:
        """Bins flagged by the volume baseline."""
        return np.array(
            sorted(d.bin for d in self.detections if d.detected_by_volume),
            dtype=np.int64,
        )

    def counts(self) -> dict[str, int]:
        """Table-2 style counts over the scored stream."""
        volume = set(self.volume_bins.tolist())
        entropy = set(self.entropy_bins.tolist())
        return {
            "volume_only": len(volume - entropy),
            "entropy_only": len(entropy - volume),
            "both": len(volume & entropy),
            "total": len(volume | entropy),
        }

    def to_diagnosis_report(
        self, labels_by_bin: dict[int, str] | None = None
    ) -> DiagnosisReport:
        """Render the run as a batch-compatible :class:`DiagnosisReport`.

        Entropy detections come first (with vectors and online cluster
        assignments), then volume-only bins as vectorless events —
        mirroring :meth:`repro.core.detector.AnomalyDiagnosis.diagnose`.
        """
        volume_set = set(self.volume_bins.tolist())
        anomalies: list[DiagnosedAnomaly] = []
        clustered: list[DiagnosedAnomaly] = []
        for det in self.detections:
            if not det.detected:
                continue
            label = labels_by_bin.get(det.bin, "unknown") if labels_by_bin else ""
            anom = DiagnosedAnomaly(
                bin=det.bin,
                od=det.primary_od if det.primary_od is not None else -1,
                detected_by_volume=det.bin in volume_set,
                detected_by_entropy=det.detected_by_entropy,
                entropy_vector=det.entropy_vector,
                unit_vector=det.unit_vector,
                spe_entropy=det.spe_entropy if det.detected_by_entropy else 0.0,
                cluster=det.cluster,
                label=label,
            )
            anomalies.append(anom)
            if det.detected_by_entropy and det.cluster >= 0:
                clustered.append(anom)
        report = DiagnosisReport(
            anomalies=anomalies,
            volume_bins=self.volume_bins,
            entropy_bins=self.entropy_bins,
        )
        if self.classifier is not None and len(clustered) >= 1 and self.classifier.n_clusters:
            points = np.vstack([a.unit_vector for a in clustered])
            labels = np.array([a.cluster for a in clustered], dtype=np.int64)
            centers = self.classifier.centroids
            inertia = float(((points - centers[labels]) ** 2).sum())
            clustering = ClusteringResult(
                labels=labels,
                centers=centers,
                k=self.classifier.n_clusters,
                inertia=inertia,
                algorithm="online-nearest-centroid",
            )
            member_labels = (
                [a.label or "unknown" for a in clustered]
                if labels_by_bin is not None
                else None
            )
            report.clustering = clustering
            report.clusters = summarize_clusters(
                points, clustering, labels=member_labels
            )
        return report


class StreamingDetectionEngine:
    """Chunked, sketch-backed online anomaly diagnosis.

    Usage (cold start, warming up from the stream itself)::

        engine = StreamingDetectionEngine(abilene(), StreamConfig(warmup_bins=96))
        report = engine.process(record_chunks)

    or with a historical cube::

        engine.warm_up(history_cube)
        for chunk in live_chunks:
            for verdict in engine.ingest(chunk):
                ...
        report = engine.finish()
    """

    def __init__(
        self,
        topology: Topology,
        config: StreamConfig | None = None,
        bin_width: float = BIN_SECONDS,
        start: float = 0.0,
    ) -> None:
        self.topology = topology
        self.config = config or StreamConfig()
        cfg = self.config
        self.stage = StreamFeatureStage(
            topology,
            bin_width=bin_width,
            start=start,
            width=cfg.sketch_width,
            depth=cfg.sketch_depth,
            sketch_seed=cfg.sketch_seed,
            exact=cfg.exact_histograms,
        )
        self.detector = OnlineMultiwayDetector(
            window=cfg.window or cfg.warmup_bins,
            refit_every=cfg.refit_every,
            n_components=cfg.n_components,
            alpha=cfg.alpha,
            normalization=cfg.normalization,
            identify=cfg.identify,
            drift_reset_after=cfg.drift_reset_after,
            calibration_margin=cfg.calibration_margin,
        )
        self.classifier = OnlineClassifier(spawn_distance=cfg.spawn_distance)
        self._volume: dict[str, OnlineVolumeDetector] = {
            name: OnlineVolumeDetector(
                window=cfg.window or cfg.warmup_bins,
                refit_every=cfg.refit_every,
                n_components=cfg.n_components,
                alpha=cfg.alpha,
                drift_reset_after=cfg.drift_reset_after,
                transform=cfg.volume_transform,
                detrend=cfg.volume_detrend,
                calibration_margin=cfg.volume_calibration_margin,
            )
            for name in ("packets", "bytes")
        }
        self._warmup_summaries: list[BinSummary] = []
        self._detections: list[StreamDetection] = []
        self._n_records = 0
        self._n_scored = 0
        self._n_warmup = 0

    # -- warm-up ---------------------------------------------------------

    @property
    def is_warm(self) -> bool:
        """Whether the detection models are fitted."""
        return self.detector.is_warm

    def warm_up(self, cube: TrafficCube) -> "StreamingDetectionEngine":
        """Fit the detection models on a historical cube.

        The multiway detector freezes on the cube's entropy tensor (its
        sliding buffer seeded with the trailing window) and one volume
        subspace model is fitted per metric, matching the batch
        pipeline's volume baseline.
        """
        self.detector.warm_up(cube.entropy)
        self._fit_volume(cube.packets, cube.bytes)
        self._n_warmup = cube.n_bins
        return self

    def seed_classifier(self, centroids: np.ndarray) -> None:
        """Seed the online classifier with offline cluster centroids."""
        self.classifier = OnlineClassifier(
            centroids, spawn_distance=self.config.spawn_distance
        )

    def _fit_volume(self, packets: np.ndarray, bytes_: np.ndarray) -> None:
        self._volume["packets"].warm_up(packets)
        self._volume["bytes"].warm_up(bytes_)

    def _warm_up_from_buffer(self) -> None:
        tensor = np.stack([s.entropy for s in self._warmup_summaries])
        packets = np.vstack([s.packets for s in self._warmup_summaries])
        bytes_ = np.vstack([s.bytes for s in self._warmup_summaries])
        self.detector.warm_up(tensor)
        self._fit_volume(packets, bytes_)
        self._n_warmup = len(self._warmup_summaries)
        self._warmup_summaries.clear()

    # -- ingestion -------------------------------------------------------

    def ingest(self, batch: FlowRecordBatch) -> list[StreamDetection]:
        """Feed one time-ordered record chunk; returns bin verdicts.

        Warm-up bins are absorbed silently (no verdict); every scored
        bin afterwards yields one :class:`StreamDetection`.
        """
        self._n_records += len(batch)
        verdicts = (self._observe(s) for s in self.stage.ingest(batch))
        return [v for v in verdicts if v is not None]

    def ingest_histograms(self, bin_index: int, hists_by_od) -> list[StreamDetection]:
        """Feed one bin of router-exported histograms (see window stage)."""
        verdicts = (
            self._observe(s)
            for s in self.stage.ingest_histograms(bin_index, hists_by_od)
        )
        return [v for v in verdicts if v is not None]

    def observe_summary(self, summary: BinSummary) -> StreamDetection | None:
        """Score one already-built bin summary (testing/advanced entry)."""
        return self._observe(summary)

    def _observe(self, summary: BinSummary) -> StreamDetection | None:
        if not self.is_warm:
            self._warmup_summaries.append(summary)
            if len(self._warmup_summaries) >= self.config.warmup_bins:
                self._warm_up_from_buffer()
            return None
        self._n_scored += 1
        packet_hit, _ = self._volume["packets"].observe(summary.packets)
        byte_hit, _ = self._volume["bytes"].observe(summary.bytes)
        volume_hit = packet_hit or byte_hit
        threshold = self.detector.threshold
        hit = self.detector.observe(summary.entropy)
        spe = hit.spe if hit is not None else 0.0
        detection = StreamDetection(
            bin=summary.bin,
            spe_entropy=float(spe),
            threshold=float(threshold),
            detected_by_entropy=hit is not None,
            detected_by_volume=volume_hit,
            flows=hit.flows if hit is not None else [],
            n_records=summary.n_records,
        )
        if hit is not None and hit.flows:
            vec = hit.flows[0].displacement
            norm = float(np.linalg.norm(vec))
            detection.entropy_vector = vec
            if norm > 0:
                detection.unit_vector = vec / norm
                detection.cluster = self.classifier.assign(detection.unit_vector)
        self._detections.append(detection)
        return detection

    # -- driving ---------------------------------------------------------

    def finish(self) -> StreamingReport:
        """Flush the open bin and return the accumulated report."""
        for summary in self.stage.flush():
            self._observe(summary)
        return StreamingReport(
            detections=list(self._detections),
            n_bins_scored=self._n_scored,
            n_bins_warmup=self._n_warmup,
            n_records=self._n_records,
            late_records=self.stage.late_records,
            classifier=self.classifier,
        )

    def _chunks(
        self, source: "str | Path | FlowRecordBatch | Iterable[FlowRecordBatch]"
    ) -> Iterator[FlowRecordBatch]:
        """Normalise any record source into bounded chunks.

        A string or :class:`~pathlib.Path` names a columnar trace file
        (:mod:`repro.io.trace`): it is replayed as zero-copy
        memory-mapped chunks sized by ``config.chunk_records``, after
        checking that the trace's network and bin grid match this
        engine's (replaying onto a different grid would silently re-bin
        every record).
        """
        if isinstance(source, (str, Path)):
            from repro.io.trace import trace_info
            from repro.stream.chunks import trace_record_stream

            trace_info(source).ensure_compatible(
                network=self.topology.name,
                bin_width=self.stage.bin_width,
                start=self.stage.start,
            )
            return trace_record_stream(
                source, chunk_records=self.config.chunk_records
            )
        return iter_record_chunks(source, self.config.chunk_records)

    def process(
        self, source: "str | Path | FlowRecordBatch | Iterable[FlowRecordBatch]"
    ) -> StreamingReport:
        """Run a whole record stream end-to-end (re-chunked, bounded).

        ``source`` may also be a trace-file path, replayed zero-copy.
        """
        for chunk in self._chunks(source):
            self.ingest(chunk)
        return self.finish()

    def events(
        self, source: "str | Path | FlowRecordBatch | Iterable[FlowRecordBatch]"
    ) -> Iterator[StreamDetection]:
        """Iterate bin verdicts as the stream is consumed (lazy).

        ``source`` may also be a trace-file path, replayed zero-copy.
        """
        for chunk in self._chunks(source):
            yield from self.ingest(chunk)
        for summary in self.stage.flush():
            verdict = self._observe(summary)
            if verdict is not None:
                yield verdict
