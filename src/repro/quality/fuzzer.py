"""Seeded scenario fuzzer: random-but-reproducible anomaly workloads.

The six registered scenarios (:mod:`repro.scenarios.catalog`) pin the
workloads the docs and benchmarks talk about; the fuzzer generates the
*rest of the space* — seeded random schedules drawing anomaly type,
intensity, duration, and OD placement from the Table-1 zoo
(:mod:`repro.anomalies.builders`), with per-event flow-size mixes
CDF-sampled from heavy-tailed datacenter profiles
(:data:`repro.traffic.distributions.FLOW_SIZE_CDFS`) and optional
1-in-N trace thinning (the paper's sampling evaluation).

Everything reduces to a :class:`FuzzSpec` — a small frozen dataclass of
primitives — so a fuzzed workload is exactly as portable as a
registered one: :class:`FuzzedScenarioSource` carries the spec in its
picklable :class:`repro.pipeline.sources.SourceSpec` (``kind="fuzzed"``)
and any process (a cluster worker, a trace writer, the quality grid)
rebuilds the identical schedule and records from it.  Same spec, same
records, bit for bit — which is what lets the quality gate compare
fuzzed precision/recall across commits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.anomalies.builders import BUILDERS
from repro.flows.binning import BIN_SECONDS
from repro.pipeline.sources import RecordSource, ScenarioSource, SourceSpec
from repro.scenarios.catalog import Scenario, ScenarioEvent

__all__ = [
    "FuzzSpec",
    "FuzzedScenarioSource",
    "INTENSITY_RANGES",
    "fuzz_scenario",
    "fuzz_sources",
]

#: Per-type intensity windows (packets/second over a 300 s bin), spanning
#: from "barely above the background" to the paper's Table-4 rates; the
#: fuzzer draws log-uniformly inside the window and multiplies by the
#: spec's ``intensity_scale`` (the quality grid's intensity axis).
INTENSITY_RANGES: dict[str, tuple[float, float]] = {
    "alpha": (1.5e3, 6.0e3),
    "dos": (1.0e4, 6.0e4),
    "ddos": (1.2e4, 3.0e4),
    "flash_crowd": (3.0e3, 9.0e3),
    "port_scan": (120.0, 400.0),
    "network_scan": (140.0, 600.0),
    "worm": (150.0, 1.5e3),
    "point_multipoint": (500.0, 1.5e3),
}

#: Mixed into the fuzzed scenario's salt so fuzz schedules never collide
#: with registered-scenario schedules at the same user seed.
_FUZZ_SALT_BASE = 0xF5E0


@dataclass(frozen=True)
class FuzzSpec:
    """Complete, picklable description of one fuzzed workload.

    ``(seed, index)`` is the identity: the same pair always fuzzes the
    same schedule, records, and therefore detections.  The remaining
    fields are the quality grid's sweep axes and run-shape knobs.

    Attributes:
        seed: Fuzzer seed (also the record-draw seed of the source).
        index: Which workload of the seed's sequence this is.
        network: Topology name.
        n_bins: Run length (warm-up included).
        warmup_bins: Bins accumulated before scoring.
        max_records_per_od: Background record cap per (OD flow, bin).
        min_events / max_events: Event-count window (inclusive).
        intensity_scale: Multiplier on every event's drawn intensity
            (the grid's intensity axis; schedule structure is invariant
            to it).
        sampling_rate: 1-in-N thinning applied to every event's trace
            (1 = no thinning); events thinned to zero packets stay in
            the ground truth but materialise no records.
        flow_profile: :data:`FLOW_SIZE_CDFS` key for the per-event
            flow-size mix (None keeps the uniform record spread).
    """

    seed: int = 0
    index: int = 0
    network: str = "abilene"
    n_bins: int = 18
    warmup_bins: int = 12
    max_records_per_od: int = 20
    min_events: int = 1
    max_events: int = 4
    intensity_scale: float = 1.0
    sampling_rate: int = 1
    flow_profile: str | None = "web-search"

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("fuzz index must be non-negative")
        if not 1 <= self.min_events <= self.max_events:
            raise ValueError("need 1 <= min_events <= max_events")
        if self.intensity_scale <= 0:
            raise ValueError("intensity_scale must be positive")
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")

    @property
    def name(self) -> str:
        """The fuzzed scenario's derived registry-style name."""
        return f"fuzz-{self.seed}-{self.index:03d}"


def _fuzz_events(spec: FuzzSpec, topology, n_bins: int, warmup: int, rng):
    """One seeded random schedule (the fuzzed scenario's build_events).

    Every random quantity is drawn in a fixed order and *unconditionally*
    (thinning seeds are drawn even at ``sampling_rate=1``), so sweeping
    ``intensity_scale`` / ``sampling_rate`` / ``flow_profile`` perturbs
    magnitudes only — the (bin, OD, label) schedule is invariant, which
    is what makes the quality grid's axes comparable.
    """
    labels = sorted(BUILDERS)
    live = n_bins - warmup
    n_events = int(rng.integers(spec.min_events, spec.max_events + 1))
    n_events = min(n_events, live)
    bins = np.sort(rng.choice(live, size=n_events, replace=False)) + warmup
    ods = rng.choice(topology.n_od_flows, size=n_events, replace=False)
    events = []
    for b, od in zip(bins, ods):
        label = labels[int(rng.integers(len(labels)))]
        lo, hi = INTENSITY_RANGES[label]
        pps = math.exp(rng.uniform(math.log(lo), math.log(hi)))
        duration = float(rng.uniform(0.5, 1.0)) * BIN_SECONDS
        kwargs = {}
        if label == "port_scan":
            kwargs["dispersed_src_ports"] = bool(rng.integers(2))
        elif label == "alpha":
            kwargs["nat"] = bool(rng.integers(2))
        thin_seed = int(rng.integers(1 << 31))
        trace = BUILDERS[label](
            rng, pps=pps * spec.intensity_scale, duration=duration, **kwargs
        )
        if spec.sampling_rate > 1:
            trace = trace.thin(spec.sampling_rate, seed=thin_seed)
        if spec.flow_profile is not None:
            trace.meta["flow_cdf"] = spec.flow_profile
        events.append(
            ScenarioEvent(bin=int(b), od=int(od), label=trace.label, trace=trace)
        )
    return events


def fuzz_scenario(spec: FuzzSpec) -> Scenario:
    """Build the (unregistered) :class:`Scenario` a spec describes.

    A pure function of the spec: any process holding the same spec
    rebuilds the identical scenario, schedule included — fuzzed
    scenarios are deliberately *not* added to the global registry, so
    fuzzing never pollutes ``repro scenarios list`` or the registered
    parity matrix.
    """
    return Scenario(
        name=spec.name,
        description=(
            f"fuzzed workload {spec.index} of seed {spec.seed} "
            f"(intensity x{spec.intensity_scale:g}, 1/{spec.sampling_rate} "
            f"sampling)"
        ),
        build_events=lambda topology, n_bins, warmup, rng: _fuzz_events(
            spec, topology, n_bins, warmup, rng
        ),
        network=spec.network,
        n_bins=spec.n_bins,
        warmup_bins=spec.warmup_bins,
        max_records_per_od=spec.max_records_per_od,
        salt=_FUZZ_SALT_BASE + spec.index,
    )


class FuzzedScenarioSource(ScenarioSource):
    """A fuzzed workload as a pipeline source (``kind="fuzzed"``).

    Inherits the whole :class:`ScenarioSource` machinery — inline
    batches, sharded OD-slice streams, trace recording, ground-truth
    events — while rebuilding its scenario from the :class:`FuzzSpec`
    carried in the source spec, so cluster workers regenerate exactly
    the fuzzed events their OD slice owns.
    """

    def __init__(self, fuzz: FuzzSpec) -> None:
        self.scenario = fuzz_scenario(fuzz)
        RecordSource.__init__(
            self,
            SourceSpec(
                kind="fuzzed",
                network=fuzz.network,
                n_bins=fuzz.n_bins,
                seed=fuzz.seed,
                max_records_per_od=fuzz.max_records_per_od,
                scenario=self.scenario.name,
                fuzz=fuzz,
            ),
        )
        self._events = None

    @property
    def fuzz(self) -> FuzzSpec:
        """The spec this source was fuzzed from."""
        return self.spec.fuzz

    @property
    def events(self):
        """Ground-truth events on the fuzzed grid (warm-up pinned)."""
        if self._events is None:
            self._events = self.scenario.events_for(
                self.topology,
                n_bins=self.spec.n_bins,
                warmup_bins=self.fuzz.warmup_bins,
                seed=self.spec.seed,
            )
        return self._events


def fuzz_sources(
    n: int, seed: int = 0, start_index: int = 0, **overrides
) -> list[FuzzedScenarioSource]:
    """``n`` consecutive fuzzed workloads of one seed.

    ``overrides`` set any :class:`FuzzSpec` field except ``seed`` and
    ``index`` (e.g. ``sampling_rate=10`` for a thinned fleet).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    base = FuzzSpec(seed=int(seed), **overrides)
    return [
        FuzzedScenarioSource(replace(base, index=start_index + i))
        for i in range(n)
    ]
