"""The labeled detection-quality grid: who detects what, and when.

Drives registered and fuzzed workloads through the one
:class:`repro.pipeline.DetectionPipeline` and scores every run against
its ground-truth schedule (:mod:`repro.quality.score`).  Three layers:

* :func:`run_source` — one workload, one mode, one config → per-channel
  scores;
* :func:`quality_payload` — the committed baseline: all registered
  scenarios plus a fuzzed fleet, each with per-detector
  precision/recall/F1/latency;
* :func:`run_grid` — the sweep ``intensity × sketch width × sampling
  rate`` over a fixed fuzzed workload set, merging scores per cell.

Every number in a payload is a pure function of ``(seed, knobs)`` — no
timestamps, paths, or wall-clock — so the same seed reproduces the
grid bit for bit, which is the property ``tools/check_quality.py``
gates on.

The run shape (18 bins, 12 warm-up, 20 records per OD-bin) is the
smallest grid on which the detectors reliably fire — the same shape the
pipeline parity tests pin — so the whole quality surface stays cheap
enough to run in CI on every push.
"""

from __future__ import annotations

from dataclasses import replace

from repro.pipeline import DetectionPipeline
from repro.pipeline.sources import ScenarioSource
from repro.quality.fuzzer import FuzzSpec, FuzzedScenarioSource, fuzz_sources
from repro.quality.score import CHANNELS, DetectorScore, score_report
from repro.scenarios import scenario_names
from repro.stream.engine import StreamConfig

__all__ = [
    "GRID_INTENSITY_SCALES",
    "GRID_SAMPLING_RATES",
    "GRID_SKETCH_WIDTHS",
    "QUALITY_MAX_RECORDS",
    "QUALITY_N_BINS",
    "QUALITY_SEED",
    "QUALITY_TOLERANCE_BINS",
    "QUALITY_WARMUP_BINS",
    "quality_config",
    "quality_payload",
    "run_grid",
    "run_source",
]

#: The quality surface's run shape (matches the parity-test grid).
QUALITY_N_BINS = 18
QUALITY_WARMUP_BINS = 12
QUALITY_MAX_RECORDS = 20

#: Default seed and matching window of the committed baseline.
QUALITY_SEED = 7
QUALITY_TOLERANCE_BINS = 1

#: Default sweep axes.  Sketch width 0 means exact histograms; the
#: nonzero widths bracket the regime where sketch collisions start
#: distorting entropy.  Sampling rates are the paper's 1-in-N thinning.
GRID_INTENSITY_SCALES = (0.5, 1.0, 2.0)
GRID_SKETCH_WIDTHS = (0, 512, 2048)
GRID_SAMPLING_RATES = (1, 10, 100)


def quality_config(sketch_width: int = 0) -> StreamConfig:
    """The harness's pipeline config (``sketch_width=0`` → exact)."""
    return StreamConfig(
        warmup_bins=QUALITY_WARMUP_BINS,
        refit_every=0,
        n_components=3,
        exact_histograms=sketch_width == 0,
        sketch_width=sketch_width or 2048,
    )


def run_source(
    source,
    mode: str = "stream",
    sketch_width: int = 0,
    tolerance_bins: int = QUALITY_TOLERANCE_BINS,
    n_shards: int = 2,
) -> dict[str, DetectorScore]:
    """Run one workload and score its report against its ground truth.

    ``source`` must carry its own schedule (a :class:`ScenarioSource`
    or :class:`FuzzedScenarioSource`); the returned mapping covers
    :data:`repro.quality.score.CHANNELS`.
    """
    pipeline = DetectionPipeline(config=quality_config(sketch_width))
    result = pipeline.run(source, mode=mode, n_shards=n_shards)
    return score_report(source.events, result.report, tolerance_bins)


def _scores_entry(source, scores: dict[str, DetectorScore]) -> dict:
    return {
        "events": len(source.events),
        "channels": {ch: scores[ch].to_dict() for ch in CHANNELS},
    }


def registered_sources(seed: int = QUALITY_SEED) -> list[ScenarioSource]:
    """Every registered scenario on the quality run shape."""
    return [
        ScenarioSource(
            name,
            n_bins=QUALITY_N_BINS,
            seed=seed,
            max_records_per_od=QUALITY_MAX_RECORDS,
        )
        for name in scenario_names()
    ]


def run_grid(
    seed: int = QUALITY_SEED,
    intensity_scales=GRID_INTENSITY_SCALES,
    sketch_widths=GRID_SKETCH_WIDTHS,
    sampling_rates=GRID_SAMPLING_RATES,
    workloads_per_cell: int = 2,
    mode: str = "stream",
    tolerance_bins: int = QUALITY_TOLERANCE_BINS,
) -> list[dict]:
    """The labeled accuracy grid: intensity × sketch width × sampling.

    Each cell reruns the same ``workloads_per_cell`` fuzzed workloads
    (identical schedules — the fuzzer draws structure independently of
    the swept knobs) under the cell's knob values and merges their
    scores, so cells differ only in what the knobs did to detection.
    """
    base = FuzzSpec(seed=int(seed))
    cells = []
    for scale in intensity_scales:
        for width in sketch_widths:
            for rate in sampling_rates:
                merged = {ch: DetectorScore(detector=ch) for ch in CHANNELS}
                events = 0
                for index in range(workloads_per_cell):
                    source = FuzzedScenarioSource(
                        replace(
                            base,
                            index=index,
                            intensity_scale=float(scale),
                            sampling_rate=int(rate),
                        )
                    )
                    scores = run_source(
                        source,
                        mode=mode,
                        sketch_width=int(width),
                        tolerance_bins=tolerance_bins,
                    )
                    events += len(source.events)
                    merged = {
                        ch: merged[ch].merge(scores[ch]) for ch in CHANNELS
                    }
                cells.append(
                    {
                        "intensity_scale": float(scale),
                        "sketch_width": int(width),
                        "sampling_rate": int(rate),
                        "events": events,
                        "channels": {
                            ch: merged[ch].to_dict() for ch in CHANNELS
                        },
                    }
                )
    return cells


def quality_payload(
    seed: int = QUALITY_SEED,
    n_fuzzed: int = 10,
    mode: str = "stream",
    tolerance_bins: int = QUALITY_TOLERANCE_BINS,
    with_grid: bool = True,
) -> dict:
    """The full quality surface, JSON-ready and bit-reproducible.

    Registered scenarios and the fuzzed fleet run with exact histograms
    (the detectors' reference behaviour); the grid then degrades
    intensity, sketch width, and sampling around that reference.
    """
    scenarios: dict[str, dict] = {}
    for source in registered_sources(seed):
        scores = run_source(source, mode=mode, tolerance_bins=tolerance_bins)
        entry = _scores_entry(source, scores)
        entry["kind"] = "registered"
        scenarios[source.scenario.name] = entry
    for source in fuzz_sources(n_fuzzed, seed=seed):
        scores = run_source(source, mode=mode, tolerance_bins=tolerance_bins)
        entry = _scores_entry(source, scores)
        entry["kind"] = "fuzzed"
        scenarios[source.scenario.name] = entry
    payload = {
        "schema": 1,
        "seed": int(seed),
        "mode": mode,
        "tolerance_bins": int(tolerance_bins),
        "shape": {
            "n_bins": QUALITY_N_BINS,
            "warmup_bins": QUALITY_WARMUP_BINS,
            "max_records_per_od": QUALITY_MAX_RECORDS,
        },
        "scenarios": scenarios,
    }
    if with_grid:
        payload["grid"] = run_grid(
            seed=seed, mode=mode, tolerance_bins=tolerance_bins
        )
    return payload
