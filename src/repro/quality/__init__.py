"""Detection-quality harness: fuzzed workloads, labeled scoring, grids.

The perf side of the repo (``benchmarks/`` + ``tools/check_perf.py``)
answers "did it get slower?"; this package answers "did it get
*worse*?".  Three pieces:

* :mod:`repro.quality.fuzzer` — seeded random scenarios (anomaly type,
  intensity, duration, OD placement, flow-size mix, thinning) that
  reduce to picklable specs and run through every pipeline mode;
* :mod:`repro.quality.score` — precision/recall/F1, detection latency,
  and OD-identification accuracy per detection channel;
* :mod:`repro.quality.grid` — the labeled accuracy grid over
  intensity × sketch width × sampling rate, and the bit-reproducible
  baseline payload ``tools/check_quality.py`` gates CI on.
"""

from repro.quality.fuzzer import (
    FuzzSpec,
    FuzzedScenarioSource,
    fuzz_scenario,
    fuzz_sources,
)
from repro.quality.grid import (
    QUALITY_SEED,
    quality_config,
    quality_payload,
    run_grid,
    run_source,
)
from repro.quality.score import CHANNELS, DetectorScore, match_bins, score_report

__all__ = [
    "CHANNELS",
    "DetectorScore",
    "FuzzSpec",
    "FuzzedScenarioSource",
    "QUALITY_SEED",
    "fuzz_scenario",
    "fuzz_sources",
    "match_bins",
    "quality_config",
    "quality_payload",
    "run_grid",
    "run_source",
    "score_report",
]
