"""Detection scoring: match pipeline verdicts against ground truth.

A scenario run leaves two bin-indexed sequences — the scheduled
ground-truth events (:class:`repro.scenarios.ScenarioEvent`) and the
scored verdicts (:class:`repro.pipeline.report.StreamDetection`).  The
scorer matches them per detection channel (``entropy``, ``volume``,
``any``) with a greedy one-to-one bin matching under a tolerance
window, and reduces the matching to the usual retrieval quartet plus
two pipeline-specific measures:

* **precision / recall / F1** — over bins; a run with no events and no
  detections is vacuously perfect (that is the ``baseline-diurnal``
  false-alarm floor).
* **detection latency** — matched detection bin minus event bin, in
  bins; negative only when the tolerance window admits an early flag.
* **OD accuracy** — entropy channel only: of the matched events, the
  fraction whose target OD flow appears among the detection's
  identified flows (the paper's identification step).

Scores are plain counter bundles, so per-workload scores combine
exactly (:meth:`DetectorScore.merge`) into grid-cell or fleet-level
aggregates without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CHANNELS",
    "DetectorScore",
    "match_bins",
    "score_report",
]

#: Scored detection channels: the entropy (multiway SPE) method, the
#: volume baseline, and their union.
CHANNELS = ("entropy", "volume", "any")


def match_bins(
    event_bins, detection_bins, tolerance: int = 1
) -> list[tuple[int, int]]:
    """Greedy one-to-one matching of event bins to detection bins.

    Events are visited in bin order; each takes the unused detection
    bin inside ``[event - tolerance, event + tolerance]`` that is (in
    preference order) not earlier than the event, closest, earliest —
    so an on-time flag always beats an early one and ties break
    deterministically.

    Returns:
        ``(event_index, detection_bin)`` pairs, one per matched event.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    free = sorted(set(int(b) for b in detection_bins))
    order = sorted(range(len(event_bins)), key=lambda i: int(event_bins[i]))
    pairs = []
    for i in order:
        e = int(event_bins[i])
        candidates = [d for d in free if abs(d - e) <= tolerance]
        if not candidates:
            continue
        d = min(candidates, key=lambda d: (d < e, abs(d - e), d))
        free.remove(d)
        pairs.append((i, d))
    pairs.sort()
    return pairs


@dataclass(frozen=True)
class DetectorScore:
    """One channel's scored outcome, as exact counters.

    Derived rates (precision/recall/F1/latency/OD accuracy) are
    properties of the counters, so scores from independent workloads
    merge losslessly before the rates are read.

    Attributes:
        detector: Channel name (one of :data:`CHANNELS`).
        tp: Events matched to a detection.
        fp: Detection bins left unmatched.
        fn: Events left unmatched.
        latency_total: Summed latency (bins) over the matches.
        od_total: Matches eligible for OD identification scoring.
        od_matched: Eligible matches whose event OD was identified.
    """

    detector: str
    tp: int = 0
    fp: int = 0
    fn: int = 0
    latency_total: int = 0
    od_total: int = 0
    od_matched: int = 0

    @property
    def precision(self) -> float:
        """Matched fraction of detections (vacuously 1.0)."""
        return self.tp / (self.tp + self.fp) if self.tp + self.fp else 1.0

    @property
    def recall(self) -> float:
        """Matched fraction of events (vacuously 1.0)."""
        return self.tp / (self.tp + self.fn) if self.tp + self.fn else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def mean_latency_bins(self) -> float | None:
        """Mean bins from event to matched detection (None if no match)."""
        return self.latency_total / self.tp if self.tp else None

    @property
    def od_accuracy(self) -> float | None:
        """Identified-OD fraction of eligible matches (None if none)."""
        return self.od_matched / self.od_total if self.od_total else None

    def merge(self, other: "DetectorScore") -> "DetectorScore":
        """Exact counter-wise combination of two scored outcomes."""
        if other.detector != self.detector:
            raise ValueError(
                f"cannot merge {self.detector!r} with {other.detector!r}"
            )
        return DetectorScore(
            detector=self.detector,
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            latency_total=self.latency_total + other.latency_total,
            od_total=self.od_total + other.od_total,
            od_matched=self.od_matched + other.od_matched,
        )

    def to_dict(self) -> dict:
        """JSON-ready view: counters plus rounded derived rates."""
        out = {
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
        }
        latency = self.mean_latency_bins
        out["latency_bins"] = None if latency is None else round(latency, 6)
        od = self.od_accuracy
        out["od_accuracy"] = None if od is None else round(od, 6)
        return out


def _channel_detections(report, channel):
    if channel == "entropy":
        return [d for d in report.detections if d.detected_by_entropy]
    if channel == "volume":
        return [d for d in report.detections if d.detected_by_volume]
    if channel == "any":
        return [d for d in report.detections if d.detected]
    raise ValueError(f"unknown channel {channel!r}; expected one of {CHANNELS}")


def score_report(
    events, report, tolerance_bins: int = 1
) -> dict[str, DetectorScore]:
    """Score one run's report against its ground-truth events.

    Args:
        events: The scenario's :class:`ScenarioEvent` schedule (the
            source's ``events``).
        report: The run's :class:`StreamingReport` (any mode).
        tolerance_bins: Bin slack of the matching window.

    Returns:
        ``{channel: DetectorScore}`` over :data:`CHANNELS`.
    """
    events = list(events)
    event_bins = [e.bin for e in events]
    scores = {}
    for channel in CHANNELS:
        detections = _channel_detections(report, channel)
        by_bin = {d.bin: d for d in detections}
        pairs = match_bins(event_bins, by_bin, tolerance_bins)
        latency = sum(d - event_bins[i] for i, d in pairs)
        od_total = od_matched = 0
        if channel == "entropy":
            # OD identification is the entropy method's deliverable;
            # the volume baseline never names a flow.
            od_total = len(pairs)
            for i, d in pairs:
                flows = by_bin[d].flows
                if any(f.od == events[i].od for f in flows):
                    od_matched += 1
        scores[channel] = DetectorScore(
            detector=channel,
            tp=len(pairs),
            fp=len(by_bin) - len(pairs),
            fn=len(events) - len(pairs),
            latency_total=latency,
            od_total=od_total,
            od_matched=od_matched,
        )
    return scores
