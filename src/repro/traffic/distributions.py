"""Feature-distribution models for the synthetic traffic generator.

Backbone traffic feature distributions are heavy-tailed: a few
addresses/ports carry most packets, with a long tail of light talkers.
We model each feature's population as a Zipf-like probability mass
function over an abstract *rank space*; ranks are materialised to real
addresses (from per-PoP pools) or ports only where an experiment needs
them (e.g. flow-record generation), which keeps the hot path numeric.

Port distributions get a realistic head: a block of well-known service
ports with a steep profile, followed by an ephemeral-port tail.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_pmf",
    "port_pmf",
    "sample_histogram",
    "poisson_histogram_rows",
    "active_support",
    "FLOW_SIZE_CDFS",
    "sample_flow_sizes",
]

#: Empirical flow-size CDFs, ``[(cdf_value, flow_size_bytes), ...]`` in
#: ascending CDF order.  The shapes follow the published web-search and
#: data-mining datacenter workloads widely used for synthetic-traffic
#: generation (cf. PrintQueue's ``generate_flows_by_CDF_sample``): most
#: flows are mice, a small fraction of elephants carries most bytes.
FLOW_SIZE_CDFS: dict[str, tuple[tuple[float, int], ...]] = {
    "web-search": (
        (0.15, 6_144), (0.20, 13_312), (0.30, 19_456), (0.40, 33_792),
        (0.53, 54_272), (0.60, 136_192), (0.70, 683_008),
        (0.80, 1_365_000), (0.90, 3_413_000), (0.97, 6_827_000),
        (1.00, 20_480_000),
    ),
    "data-mining": (
        (0.50, 1_024), (0.60, 2_048), (0.70, 3_072), (0.80, 7_168),
        (0.90, 273_408), (0.95, 2_157_568), (0.99, 68_267_000),
        (1.00, 682_667_000),
    ),
}


def sample_flow_sizes(
    profile: str | tuple[tuple[float, int], ...],
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Inverse-CDF sample of ``n`` flow sizes (bytes) from a size mix.

    ``profile`` is a :data:`FLOW_SIZE_CDFS` key or an explicit
    ``((cdf_value, size_bytes), ...)`` table in ascending CDF order;
    each uniform draw maps to the first CDF point at or above it, like
    the step-sampled synthetic traces of the PrintQueue end hosts.
    """
    if isinstance(profile, str):
        try:
            profile = FLOW_SIZE_CDFS[profile]
        except KeyError:
            known = ", ".join(sorted(FLOW_SIZE_CDFS))
            raise ValueError(
                f"unknown flow-size profile {profile!r}; known: {known}"
            ) from None
    points = np.asarray(profile, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2 or not len(points):
        raise ValueError("flow-size CDF needs (cdf, size) rows")
    cdf, sizes = points[:, 0], points[:, 1]
    if np.any(np.diff(cdf) <= 0) or cdf[-1] < 1.0:
        raise ValueError("flow-size CDF values must ascend to 1.0")
    if n < 0:
        raise ValueError("n must be non-negative")
    picks = cdf.searchsorted(rng.random(n), side="left")
    return sizes[picks].astype(np.int64)


def zipf_pmf(n: int, alpha: float) -> np.ndarray:
    """Zipf(alpha) probability mass function over ranks 1..n.

    ``p_i \\propto i^{-alpha}``.  ``alpha = 0`` gives the uniform
    distribution (maximal entropy); larger alpha concentrates mass on
    the head (lower entropy).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def port_pmf(n: int, head_size: int = 20, head_mass: float = 0.6, tail_alpha: float = 0.5) -> np.ndarray:
    """Port distribution: heavy well-known head + Zipf ephemeral tail.

    The first ``head_size`` ranks (well-known service ports) share
    ``head_mass`` of the probability with a steep Zipf(1.2) profile; the
    remaining ranks (ephemeral ports) share the rest with a flat
    Zipf(``tail_alpha``) profile.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    head_size = min(head_size, n)
    head = zipf_pmf(head_size, 1.2) * head_mass
    if head_size == n:
        return head / head.sum()
    tail = zipf_pmf(n - head_size, tail_alpha) * (1.0 - head_mass)
    return np.concatenate([head, tail])


def sample_histogram(
    pmf: np.ndarray, total: int, rng: np.random.Generator
) -> np.ndarray:
    """Multinomial sample of ``total`` packets over a pmf (one histogram)."""
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        return np.zeros(len(pmf), dtype=np.int64)
    return rng.multinomial(total, pmf).astype(np.int64)


def poisson_histogram_rows(
    pmf_rows: np.ndarray, totals: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Vectorised per-bin histograms via the Poissonisation trick.

    Drawing ``N_i ~ Poisson(total_t * p_i)`` independently per cell is
    the standard Poissonisation of a multinomial sample: conditioned on
    the realised row sum it *is* multinomial, and for the large totals
    we use the difference is negligible while being orders of magnitude
    faster than t separate multinomial draws.

    Args:
        pmf_rows: ``(t, n)`` per-bin pmfs (rows may differ over time as
            the distribution drifts) or ``(n,)`` for a static pmf.
        totals: ``(t,)`` expected packet totals per bin.
        rng: Random generator.

    Returns:
        ``(t, n)`` integer histogram matrix.
    """
    totals = np.asarray(totals, dtype=np.float64)
    pmf_rows = np.asarray(pmf_rows, dtype=np.float64)
    if pmf_rows.ndim == 1:
        lam = totals[:, None] * pmf_rows[None, :]
    else:
        if pmf_rows.shape[0] != totals.shape[0]:
            raise ValueError("pmf_rows and totals disagree on t")
        lam = totals[:, None] * pmf_rows
    return rng.poisson(lam).astype(np.int64)


def active_support(
    base_support: int, totals: np.ndarray, mean_total: float, exponent: float = 0.5,
    minimum: int = 8,
) -> np.ndarray:
    """Number of active feature values per bin, scaling with volume.

    The paper observes that entropy tends to rise with traffic volume
    because more distinct values appear in larger samples.  We reproduce
    that coupling by activating ``base * (total/mean)^exponent`` ranks
    per bin (clipped to ``[minimum, base*2]``).

    Returns an int array of per-bin support sizes.
    """
    if base_support < 1:
        raise ValueError("base_support must be >= 1")
    totals = np.asarray(totals, dtype=np.float64)
    scale = np.power(np.maximum(totals, 1.0) / max(mean_total, 1.0), exponent)
    support = np.round(base_support * scale).astype(np.int64)
    return np.clip(support, minimum, base_support * 2)
