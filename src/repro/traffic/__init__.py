"""Synthetic traffic model: diurnal cycles, gravity matrix, feature distributions."""

from repro.traffic.distributions import (
    active_support,
    poisson_histogram_rows,
    port_pmf,
    sample_histogram,
    zipf_pmf,
)
from repro.traffic.diurnal import DiurnalBasis, DiurnalModel, ar1_series
from repro.traffic.generator import (
    DEFAULT_FEATURE_MODELS,
    FeatureModel,
    GeneratorConfig,
    ODStream,
    TrafficGenerator,
)
from repro.traffic.gravity import gravity_matrix, od_mean_rates, pop_masses

__all__ = [
    "active_support",
    "poisson_histogram_rows",
    "port_pmf",
    "sample_histogram",
    "zipf_pmf",
    "DiurnalBasis",
    "DiurnalModel",
    "ar1_series",
    "DEFAULT_FEATURE_MODELS",
    "FeatureModel",
    "GeneratorConfig",
    "ODStream",
    "TrafficGenerator",
    "gravity_matrix",
    "od_mean_rates",
    "pop_masses",
]
