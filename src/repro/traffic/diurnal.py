"""Temporal traffic models: diurnal/weekly cycles with AR(1) noise.

Backbone OD-flow volumes follow strong daily and weekly periodicities
plus correlated stochastic fluctuation.  Crucially for the subspace
method, the *shape* of the daily cycle is shared across OD flows (this
is what makes normal network-wide traffic low-dimensional, per Lakhina
et al., SIGMETRICS 2004) — so the model composes a small set of global
basis waveforms with per-OD mixing weights, plus per-OD AR(1) noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flows.binning import BINS_PER_DAY, BINS_PER_WEEK

__all__ = ["DiurnalBasis", "ar1_series", "DiurnalModel"]


def ar1_series(
    n: int, rho: float, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Stationary AR(1) series with autocorrelation ``rho`` and
    marginal standard deviation ``sigma``."""
    if not 0 <= rho < 1:
        raise ValueError("rho must be in [0, 1)")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    innovations = rng.normal(0.0, sigma * np.sqrt(1 - rho ** 2), size=n)
    out = np.empty(n)
    prev = rng.normal(0.0, sigma)
    for i in range(n):
        prev = rho * prev + innovations[i]
        out[i] = prev
    return out


@dataclass
class DiurnalBasis:
    """Global daily/weekly waveforms shared by all OD flows.

    Three basis functions over the bin grid:

    0. daily cycle — peaked in working hours,
    1. weekly cycle — weekdays above weekends,
    2. constant — baseline load.

    Per-OD mixing weights over these bases give every OD flow a
    realistic, correlated-but-not-identical temporal profile.
    """

    n_bins: int
    waveforms: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n_bins <= 0:
            raise ValueError("n_bins must be positive")
        t = np.arange(self.n_bins)
        day_phase = 2 * np.pi * (t % BINS_PER_DAY) / BINS_PER_DAY
        # Peak around 15:00, trough around 03:00.
        daily = 0.5 * (1 + np.sin(day_phase - np.pi / 2))
        week_phase = (t % BINS_PER_WEEK) / BINS_PER_WEEK
        weekday = np.where(week_phase < 5 / 7, 1.0, 0.55)
        constant = np.ones(self.n_bins)
        self.waveforms = np.vstack([daily, weekday, constant])

    @property
    def n_bases(self) -> int:
        """Number of basis waveforms."""
        return self.waveforms.shape[0]

    def mix(self, weights: np.ndarray) -> np.ndarray:
        """Weighted combination of the bases, ``(n_bins,)``."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.n_bases,):
            raise ValueError(f"expected {self.n_bases} weights")
        return weights @ self.waveforms


@dataclass
class DiurnalModel:
    """Per-OD-flow packet-rate model.

    ``rate(t) = mean_pps * profile(t) * exp(noise(t))`` where
    ``profile`` is a normalised mix of the shared bases and ``noise``
    is AR(1).  Rates are in packets/second *after* flow sampling (i.e.
    directly what the cube records).
    """

    mean_pps: float
    basis: DiurnalBasis
    weights: np.ndarray
    noise_rho: float = 0.95
    noise_sigma: float = 0.12

    def __post_init__(self) -> None:
        if self.mean_pps < 0:
            raise ValueError("mean_pps must be non-negative")
        self.weights = np.asarray(self.weights, dtype=np.float64)

    def rates(self, rng: np.random.Generator) -> np.ndarray:
        """Packet rates (pps) per bin, ``(n_bins,)``."""
        profile = self.basis.mix(self.weights)
        mean_profile = profile.mean()
        if mean_profile <= 0:
            raise ValueError("degenerate diurnal profile")
        profile = profile / mean_profile
        noise = ar1_series(self.basis.n_bins, self.noise_rho, self.noise_sigma, rng)
        return self.mean_pps * profile * np.exp(noise - (self.noise_sigma ** 2) / 2)
