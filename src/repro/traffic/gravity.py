"""Gravity model for the OD traffic matrix.

Mean OD-flow volume is well described by a gravity model: the traffic
from origin i to destination j is proportional to the product of i's
total outbound mass and j's total inbound mass,

    T_ij = s_i * d_j / sum_k d_k .

PoP masses are drawn from a lognormal (large capitals / exchange points
dominate), which yields the strongly skewed OD-flow size distribution
observed on Abilene and Geant.
"""

from __future__ import annotations

import numpy as np

from repro.net.topology import Topology

__all__ = ["pop_masses", "gravity_matrix", "od_mean_rates"]


def pop_masses(
    n_pops: int, rng: np.random.Generator, sigma: float = 0.75
) -> np.ndarray:
    """Lognormal PoP masses normalised to mean 1."""
    if n_pops <= 0:
        raise ValueError("n_pops must be positive")
    masses = rng.lognormal(mean=0.0, sigma=sigma, size=n_pops)
    return masses / masses.mean()


def gravity_matrix(
    out_masses: np.ndarray, in_masses: np.ndarray
) -> np.ndarray:
    """Gravity OD matrix, normalised so entries average to 1.

    ``G[i, j] = s_i * d_j / mean``; multiplying by a network-wide mean
    OD rate gives per-OD mean rates.
    """
    out_masses = np.asarray(out_masses, dtype=np.float64)
    in_masses = np.asarray(in_masses, dtype=np.float64)
    if np.any(out_masses < 0) or np.any(in_masses < 0):
        raise ValueError("masses must be non-negative")
    G = np.outer(out_masses, in_masses)
    mean = G.mean()
    if mean <= 0:
        raise ValueError("degenerate gravity matrix")
    return G / mean


def od_mean_rates(
    topology: Topology,
    mean_od_pps: float,
    rng: np.random.Generator,
    sigma: float = 0.75,
    floor_fraction: float = 0.02,
) -> np.ndarray:
    """Mean packet rates per OD flow (dense index order), ``(p,)``.

    Args:
        topology: Provides p = n_pops^2.
        mean_od_pps: Network-wide average OD-flow rate in packets/sec
            (the paper quotes ~2068 pps for Abilene after sampling).
        rng: Random generator (PoP masses).
        sigma: Lognormal spread of PoP masses.
        floor_fraction: Minimum rate as a fraction of the mean — even
            the smallest OD pair carries some traffic.
    """
    if mean_od_pps <= 0:
        raise ValueError("mean_od_pps must be positive")
    n = topology.n_pops
    out_masses = pop_masses(n, rng, sigma=sigma)
    in_masses = pop_masses(n, rng, sigma=sigma)
    G = gravity_matrix(out_masses, in_masses)
    rates = (G * mean_od_pps).reshape(-1)
    return np.maximum(rates, floor_fraction * mean_od_pps)
