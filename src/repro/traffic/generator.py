"""Synthetic network-wide traffic generation.

Produces :class:`repro.flows.odflows.TrafficCube` objects that stand in
for the paper's sampled NetFlow datasets.  Design constraints, in order
of importance:

1. **Statistical fidelity to what the methods consume.** Normal OD-flow
   traffic must be low-dimensional across the ensemble (shared diurnal
   basis), feature distributions heavy-tailed with volume-coupled
   support sizes (so entropy co-varies with volume, as the paper
   observes), and per-bin histograms noisy like sampled flow data
   (Poissonised multinomial sampling).
2. **Deterministic regeneration.** The anomaly injector must recover
   the exact background histogram of any (OD flow, bin) to superimpose
   anomaly packets onto it.  Every random quantity therefore derives
   from ``SeedSequence([seed, od, tag])`` streams: regenerating an OD's
   stream yields bit-identical histograms, so the cube stores only
   entropies and volumes (storing all histograms for 3 weeks x 484 ODs
   would be gigabytes).
3. **Speed.** Histogram synthesis is vectorised over time; generating
   three Abilene-weeks (6048 x 121 bins x 4 features) takes seconds.

The generator also materialises individual bins as flow-record batches
(:meth:`TrafficGenerator.materialize_bin`) so the record-level pipeline
(records -> binning -> OD aggregation -> cube) can be exercised
end-to-end in examples and integration tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.core.entropy import entropy_rows
from repro.flows.binning import TimeBins
from repro.flows.features import DST_IP, DST_PORT, FEATURES, N_FEATURES, SRC_IP, SRC_PORT
from repro.flows.odflows import TrafficCube
from repro.flows.records import FlowRecordBatch
from repro.net.addressing import EPHEMERAL_PORT_START, AddressPool, well_known_ports
from repro.net.topology import Topology
from repro.traffic.distributions import active_support, port_pmf, zipf_pmf
from repro.traffic.diurnal import DiurnalBasis, ar1_series
from repro.traffic.gravity import od_mean_rates

__all__ = ["FeatureModel", "GeneratorConfig", "ODStream", "TrafficGenerator"]

# Tags for independent random streams per OD flow.
_TAG_RATE, _TAG_DRIFT, _TAG_COUNTS, _TAG_BYTES, _TAG_WEIGHTS, _TAG_GLITCH = range(6)
# Pseudo-OD ids for network-wide (shared) random streams.
_GLOBAL_OD = 1 << 21


@dataclass(frozen=True)
class FeatureModel:
    """Distribution model for one traffic feature of one OD flow.

    Attributes:
        support: Base number of distinct feature values (ranks).
        alpha: Base Zipf exponent (concentration).
        alpha_amplitude: Slow sinusoidal drift amplitude of alpha.
        alpha_sigma: AR(1) jitter of alpha.
        volume_exponent: Coupling of active support to volume (0
            decouples entropy from volume).
        kind: ``"zipf"`` for addresses, ``"port"`` for the
            well-known-head port profile.
    """

    support: int
    alpha: float
    alpha_amplitude: float = 0.15
    alpha_sigma: float = 0.002
    volume_exponent: float = 0.35
    kind: str = "zipf"

    def __post_init__(self) -> None:
        if self.support < 4:
            raise ValueError("support must be >= 4")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.kind not in ("zipf", "port"):
            raise ValueError(f"unknown feature kind {self.kind!r}")


#: Default per-feature models, ordered like FEATURES.  Supports are the
#: typical number of distinct values in a sampled 5-minute OD-flow bin.
DEFAULT_FEATURE_MODELS = (
    FeatureModel(support=96, alpha=0.9),                       # src_ip
    FeatureModel(support=72, alpha=0.6, kind="port"),          # src_port
    FeatureModel(support=96, alpha=1.0),                       # dst_ip
    FeatureModel(support=72, alpha=0.8, kind="port"),          # dst_port
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic traffic model.

    Attributes:
        mean_od_pps: Network-wide average OD-flow rate in packets/second
            *before* flow sampling.  The paper quotes ~2068 pps for the
            average Abilene OD flow on this scale.
        histogram_sampling: Packet-sampling factor applied when building
            feature histograms (None: use the topology's sampling rate,
            e.g. 100 for Abilene, 1000 for Geant).  Volume counters stay
            on the pre-sampling scale (as the paper reports them), but
            the histograms — and therefore entropy — see only sampled
            packets, exactly like histograms built from NetFlow records.
            This scale split is what makes the paper's injection
            protocol (unsampled attack packets superimposed on sampled
            background) so sensitive; see DESIGN.md.
        feature_models: Per-feature distribution models.
        mean_packet_size: Average bytes per packet.
        packet_size_sigma: Lognormal sigma of per-bin mean packet size.
        rate_noise_rho / rate_noise_sigma: *Idiosyncratic* (per-OD)
            AR(1) noise of OD rates.  Kept small: backbone OD flows at
            5-minute bins are smooth, and this is the noise floor that
            sets volume-detection sensitivity.
        shared_load_rho / shared_load_sigma: Network-wide AR(1) load
            factor applied to every OD flow.  Shared variation is
            PCA-compressible, so it adds realism (and normal-subspace
            dimensions) without hurting sensitivity — this is what
            makes normal traffic low-dimensional, per the paper's
            premise.
        drift_sigma: AR(1) sigma of the *global* per-feature
            distribution drift (shared across OD flows; each OD applies
            a private gain to it).
        gravity_sigma: Spread of PoP masses in the gravity model.
        glitch_rate: Per-(OD, bin) probability of a benign single-bin
            distribution excursion (a transient that is not a scheduled
            anomaly).  These are the population behind the paper's
            ~10% false-alarm share: detections with no identifiable
            cause.  Set 0 to disable.
        glitch_magnitude: Range of the excursion's |delta alpha|.
        seed: Master seed; everything derives from it.
    """

    mean_od_pps: float = 2068.0
    histogram_sampling: int | None = None
    feature_models: tuple[FeatureModel, ...] = DEFAULT_FEATURE_MODELS
    mean_packet_size: float = 500.0
    packet_size_sigma: float = 0.02
    rate_noise_rho: float = 0.9
    rate_noise_sigma: float = 0.03
    shared_load_rho: float = 0.99
    shared_load_sigma: float = 0.08
    drift_sigma: float = 0.05
    gravity_sigma: float = 0.75
    glitch_rate: float = 5e-5
    glitch_magnitude: tuple[float, float] = (0.25, 0.6)
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.feature_models) != N_FEATURES:
            raise ValueError(f"need {N_FEATURES} feature models")
        if self.mean_od_pps <= 0:
            raise ValueError("mean_od_pps must be positive")

    def scaled(self, factor: float) -> "GeneratorConfig":
        """Copy with the overall traffic level scaled by ``factor``."""
        return replace(self, mean_od_pps=self.mean_od_pps * factor)


def _rng(seed: int, od: int, tag: int) -> np.random.Generator:
    """Independent, reproducible stream for (seed, od, tag)."""
    return np.random.default_rng(np.random.SeedSequence([seed, od, tag]))


@dataclass
class ODStream:
    """Everything the generator computes for one OD flow.

    Attributes:
        od: OD-flow index.
        packets: ``(t,)`` packet counts per bin.
        bytes: ``(t,)`` byte counts per bin.
        entropy: ``(t, 4)`` per-feature sample entropies.
        histograms: Per-feature ``(t, n_f)`` count matrices (the
            background histograms injection superimposes onto).
    """

    od: int
    packets: np.ndarray
    bytes: np.ndarray
    entropy: np.ndarray
    histograms: tuple[np.ndarray, ...]


class TrafficGenerator:
    """Synthesise a network's OD-flow traffic cube.

    Usage::

        gen = TrafficGenerator(abilene(), TimeBins.for_weeks(1), seed=7)
        cube = gen.generate()
        hist = gen.od_stream(od).histograms    # exact background counts

    All outputs are deterministic functions of (topology, bins, config).
    """

    def __init__(
        self,
        topology: Topology,
        bins: TimeBins,
        config: GeneratorConfig | None = None,
        seed: int | None = None,
    ) -> None:
        self.topology = topology
        self.bins = bins
        config = config or GeneratorConfig()
        if seed is not None:
            config = replace(config, seed=seed)
        self.config = config
        master = np.random.default_rng(np.random.SeedSequence([config.seed, 1 << 20]))
        self.mean_rates = od_mean_rates(
            topology, config.mean_od_pps, master, sigma=config.gravity_sigma
        )
        self.basis = DiurnalBasis(bins.n_bins)
        sampling = config.histogram_sampling
        if sampling is None:
            sampling = max(topology.sampling_rate, 1)
        self.histogram_sampling = sampling
        self._stream_cache: OrderedDict[int, ODStream] = OrderedDict()
        self._cache_limit = 16
        self._pools: dict[int, AddressPool] = {}
        # Network-wide shared series (deterministic given the seed).
        t = bins.n_bins
        load_rng = _rng(config.seed, _GLOBAL_OD, _TAG_RATE)
        self.shared_load = ar1_series(
            t, config.shared_load_rho, config.shared_load_sigma, load_rng
        )
        drift_rng = _rng(config.seed, _GLOBAL_OD, _TAG_DRIFT)
        day = 288.0
        drifts = []
        for model in config.feature_models:
            phase = drift_rng.uniform(0, 2 * np.pi)
            period = drift_rng.uniform(2.5 * day, 5 * day)
            slow = model.alpha_amplitude * np.sin(
                2 * np.pi * np.arange(t) / period + phase
            )
            wander = ar1_series(t, 0.98, config.drift_sigma, drift_rng)
            drifts.append(slow + wander)
        self.global_drift = np.vstack(drifts)  # (4, t)

    # -- per-OD synthesis -------------------------------------------------

    def _mix_weights(self, od: int) -> np.ndarray:
        rng = _rng(self.config.seed, od, _TAG_WEIGHTS)
        daily = rng.uniform(0.6, 1.4)
        weekly = rng.uniform(0.2, 0.8)
        constant = rng.uniform(0.5, 1.5)
        return np.array([daily, weekly, constant])

    def _od_rates(self, od: int) -> tuple[np.ndarray, np.ndarray]:
        """(realised, expected) packet rates per bin for one OD flow.

        The expected rate carries the shared (network-wide) factors
        only; the realised rate adds the small idiosyncratic AR(1)
        noise.  Active support sizes follow the *expected* rate so that
        entropy co-varies with the diurnal cycle without inheriting
        per-OD volume noise.
        """
        cfg = self.config
        profile = self.basis.mix(self._mix_weights(od))
        profile = profile / profile.mean()
        level = self.mean_rates[od]
        shared = np.exp(self.shared_load - cfg.shared_load_sigma ** 2 / 2)
        expected = level * profile * shared
        rng = _rng(cfg.seed, od, _TAG_RATE)
        noise = ar1_series(
            self.bins.n_bins, cfg.rate_noise_rho, cfg.rate_noise_sigma, rng
        )
        realised = expected * np.exp(noise - cfg.rate_noise_sigma ** 2 / 2)
        return realised, expected

    def _feature_pmf_rows(
        self, model: FeatureModel, alphas: np.ndarray, supports: np.ndarray
    ) -> np.ndarray:
        """Per-bin pmfs ``(t, n_max)`` with drifting alpha and support."""
        n_max = int(supports.max())
        ranks = np.arange(1, n_max + 1, dtype=np.float64)
        if model.kind == "port":
            base = port_pmf(n_max)
            # Drift modulates the tail steepness around the base shape.
            log_base = np.log(base)
            rows = np.exp(log_base[None, :] * (alphas[:, None] / model.alpha))
        else:
            rows = np.exp(-np.outer(alphas, np.log(ranks)))
        # Deactivate ranks beyond the per-bin support.
        mask = ranks[None, :] <= supports[:, None]
        rows = rows * mask
        rows /= rows.sum(axis=1, keepdims=True)
        return rows

    def od_stream(self, od: int) -> ODStream:
        """Full synthetic stream for one OD flow (cached, deterministic)."""
        cached = self._stream_cache.get(od)
        if cached is not None:
            self._stream_cache.move_to_end(od)
            return cached
        cfg = self.config
        t = self.bins.n_bins
        rates, expected_rates = self._od_rates(od)
        packets = np.maximum(np.round(rates * self.bins.width), 1).astype(np.int64)
        # Histograms are built from *sampled* packets (1 in
        # histogram_sampling), like real NetFlow-derived histograms.
        sampled_expected = np.maximum(
            expected_rates * self.bins.width / self.histogram_sampling, 1.0
        )
        mean_sampled = float(sampled_expected.mean())

        drift_rng = _rng(cfg.seed, od, _TAG_DRIFT)
        count_rng = _rng(cfg.seed, od, _TAG_COUNTS)
        # Benign transients: rare single-bin excursions of one feature's
        # concentration — detections with no scheduled cause (the
        # dataset's false-alarm population).
        glitch_rng = _rng(cfg.seed, od, _TAG_GLITCH)
        glitches: list[tuple[int, int, float]] = []
        if cfg.glitch_rate > 0:
            n_glitches = glitch_rng.poisson(cfg.glitch_rate * t)
            lo, hi = cfg.glitch_magnitude
            for _ in range(int(n_glitches)):
                glitches.append(
                    (
                        int(glitch_rng.integers(t)),
                        int(glitch_rng.integers(N_FEATURES)),
                        float(glitch_rng.uniform(lo, hi) * glitch_rng.choice([-1, 1])),
                    )
                )
        histograms = []
        entropy = np.empty((t, N_FEATURES))
        for k, model in enumerate(cfg.feature_models):
            gain = drift_rng.uniform(0.7, 1.3)
            jitter = ar1_series(t, 0.9, model.alpha_sigma, drift_rng)
            alphas = np.clip(
                model.alpha + gain * self.global_drift[k] + jitter, 0.05, 3.0
            )
            for g_bin, g_feat, g_delta in glitches:
                if g_feat == k:
                    alphas[g_bin] = np.clip(alphas[g_bin] + g_delta, 0.05, 3.0)
            supports = active_support(
                model.support,
                sampled_expected,
                mean_sampled,
                exponent=model.volume_exponent,
            )
            pmf_rows = self._feature_pmf_rows(model, alphas, supports)
            lam = (packets / self.histogram_sampling)[:, None] * pmf_rows
            counts = count_rng.poisson(lam).astype(np.int64)
            histograms.append(counts)
            entropy[:, k] = entropy_rows(counts)

        bytes_rng = _rng(cfg.seed, od, _TAG_BYTES)
        size_noise = ar1_series(t, 0.9, cfg.packet_size_sigma, bytes_rng)
        sizes = cfg.mean_packet_size * np.exp(size_noise - cfg.packet_size_sigma ** 2 / 2)
        byte_counts = np.round(packets * sizes).astype(np.int64)

        stream = ODStream(
            od=od,
            packets=packets,
            bytes=byte_counts,
            entropy=entropy,
            histograms=tuple(histograms),
        )
        self._stream_cache[od] = stream
        if len(self._stream_cache) > self._cache_limit:
            self._stream_cache.popitem(last=False)
        return stream

    # -- cube construction -------------------------------------------------

    def generate(self, progress: bool = False) -> TrafficCube:
        """Generate the full traffic cube for all OD flows."""
        p = self.topology.n_od_flows
        cube = TrafficCube.zeros(self.bins, p, network=self.topology.name)
        for od in range(p):
            stream = self.od_stream(od)
            cube.packets[:, od] = stream.packets
            cube.bytes[:, od] = stream.bytes
            cube.entropy[:, od, :] = stream.entropy
            # Streams are regenerable; do not let the cache balloon while
            # sweeping every OD.
            self.evict_stream(od)
            if progress and od % 50 == 0:
                print(f"  generated OD {od}/{p}", flush=True)
        return cube

    def evict_stream(self, od: int) -> None:
        """Drop one OD's cached stream (regenerable; bounds memory).

        Callers sweeping every OD flow (cube construction, the
        streaming record source) evict as they go so the LRU cache
        never balloons past the flows still in flight.
        """
        self._stream_cache.pop(od, None)

    def record_rng(self, od: int, b: int, salt: int = 0) -> np.random.Generator:
        """Independent RNG for one (OD flow, bin) record draw.

        Seeded from ``SeedSequence([config.seed, salt, od, b])``, so
        *any* process materialising the same (OD, bin) — one reader
        sweeping the whole trace, or one shard of a cluster owning an
        OD slice — draws bit-identical records.  The sharded
        deployment's partition-independence rests on this contract.
        """
        return np.random.default_rng(
            np.random.SeedSequence([self.config.seed, salt, int(od), int(b)])
        )

    # -- materialisation to real feature values -----------------------------

    def _pool(self, pop_index: int) -> AddressPool:
        pool = self._pools.get(pop_index)
        if pool is None:
            pop = self.topology.pops[pop_index]
            # Pool size comfortably above the largest per-bin support.
            n_hosts = 4 * max(m.support for m in self.config.feature_models)
            pool = AddressPool(
                pop.prefix, n_hosts, seed=self.config.seed * 1000 + pop_index
            )
            self._pools[pop_index] = pool
        return pool

    def feature_values(self, od: int, feature: int, n: int) -> np.ndarray:
        """Concrete feature values for ranks ``0..n-1`` of one feature.

        Address ranks map to the origin (srcIP) or destination (dstIP)
        PoP's host pool; port ranks map to well-known ports first, then
        ephemeral ports.  Deterministic, so materialised records agree
        across calls.
        """
        origin, destination = self.topology.od_pair(od)
        if feature == SRC_IP:
            pool = self._pool(origin.index)
            return np.resize(pool.addresses, n)
        if feature == DST_IP:
            pool = self._pool(destination.index)
            return np.resize(pool.addresses, n)
        if feature in (SRC_PORT, DST_PORT):
            known = well_known_ports()
            if n <= len(known):
                return known[:n]
            extra = EPHEMERAL_PORT_START + np.arange(n - len(known), dtype=np.int64)
            return np.concatenate([known, extra])
        raise ValueError(f"feature index out of range: {feature}")

    def materialize_bin(
        self, od: int, b: int, rng: np.random.Generator | None = None,
        max_records: int = 4000,
    ) -> FlowRecordBatch:
        """Materialise one (OD, bin) as sampled flow records.

        Feature values are drawn per *flow* from the bin's marginal
        histograms (features independent across flows — sufficient for
        exercising the record-level pipeline; the cube itself is built
        from the exact histograms, not from these records).
        """
        if rng is None:
            rng = _rng(self.config.seed, od, 10_000 + b)
        stream = self.od_stream(od)
        total_packets = int(stream.packets[b]) // self.histogram_sampling
        total_packets = max(total_packets, 1)
        n_records = int(min(max_records, max(1, total_packets // 3)))
        # Heavy-tailed packets-per-flow, scaled to match the bin total.
        weights = rng.pareto(1.5, size=n_records) + 1.0
        pkts = np.maximum(1, np.round(weights * total_packets / weights.sum()))
        pkts = pkts.astype(np.int64)

        columns: dict[str, np.ndarray] = {}
        names = ("src_ip", "src_port", "dst_ip", "dst_port")
        for k, name in enumerate(names):
            counts = stream.histograms[k][b].astype(np.float64)
            total = counts.sum()
            if total <= 0:
                columns[name] = np.zeros(n_records, dtype=np.int64)
                continue
            ranks = rng.choice(len(counts), size=n_records, p=counts / total)
            values = self.feature_values(od, feature_index_of(name), len(counts))
            columns[name] = values[ranks]
        origin, _ = self.topology.od_pair(od)
        size = self.config.mean_packet_size
        start = self.bins.bin_start(b)
        return FlowRecordBatch(
            src_ip=columns["src_ip"],
            dst_ip=columns["dst_ip"],
            src_port=columns["src_port"],
            dst_port=columns["dst_port"],
            protocol=np.full(n_records, 6, dtype=np.int64),
            packets=pkts,
            bytes=np.round(pkts * size).astype(np.int64),
            timestamp=start + rng.uniform(0, self.bins.width, size=n_records),
            ingress_pop=np.full(n_records, origin.index, dtype=np.int64),
        )

    # -- batched whole-bin materialisation ---------------------------------

    def _ip_table(self) -> np.ndarray:
        """``(n_pops, n_hosts)`` address matrix, one pool row per PoP.

        Every pool has the same size (4x the largest feature support),
        so rank ``r`` of PoP ``j`` is ``table[j, r % n_hosts]`` — the
        vectorised equivalent of ``np.resize(pool.addresses, n)[r]``.
        """
        table = getattr(self, "_ip_table_cache", None)
        if table is None:
            table = np.vstack(
                [self._pool(j).addresses for j in range(self.topology.n_pops)]
            )
            self._ip_table_cache = table
        return table

    @staticmethod
    def _port_values(ranks: np.ndarray) -> np.ndarray:
        """Vectorised rank -> port mapping (well-known head, then ephemeral).

        Matches :meth:`feature_values` for port features: rank ``r``
        maps to the ``r``-th well-known port while one exists, then to
        consecutive ephemeral ports.
        """
        known = well_known_ports()
        clipped = np.minimum(ranks, len(known) - 1)
        ephemeral = EPHEMERAL_PORT_START + (ranks - len(known))
        return np.where(ranks < len(known), known[np.maximum(clipped, 0)], ephemeral)

    def materialize_bin_group(
        self,
        ods,
        group: "list[int]",
        max_records: int = 4000,
        salt: int = 0,
        evict: bool = True,
    ) -> "list[FlowRecordBatch]":
        """Materialise several bins for many OD flows in one batched pass.

        Semantically identical to calling :meth:`materialize_bin` for
        every ``(od, b)`` with ``rng=self.record_rng(od, b, salt)``,
        concatenating each bin's per-OD batches in ``ods`` order and
        stable-sorting by timestamp — and *bit-identical* to it: every
        random draw comes from the same per-(OD, bin) ``record_rng``
        stream in the same order, so traces written through this path
        reproduce the records the per-OD loop produced.  What is
        batched is everything around the draws: rank-to-value mapping
        goes through one precomputed per-PoP address table and one
        vectorised port formula, and each bin assembles its nine
        columns with a single concatenate + sort instead of one
        :class:`FlowRecordBatch` per OD flow.

        Args:
            ods: OD flows to include (ints; order fixes record order
                before the time sort).
            group: Bin indices to materialise in this pass.
            max_records: Cap on records per (OD flow, bin).
            salt: Extra seed mixed into every record draw.
            evict: Drop each OD's cached histogram stream after use
                (the bounded-memory default for whole-trace sweeps).

        Returns:
            One time-sorted batch per bin, in ``group`` order.
        """
        group = [int(b) for b in group]
        n_bins_grp = len(group)
        names = ("src_ip", "src_port", "dst_ip", "dst_port")
        # Per-bin accumulators: per-OD draw arrays, joined once per bin.
        lengths: list[list[int]] = [[] for _ in range(n_bins_grp)]
        pkts_parts: list[list[np.ndarray]] = [[] for _ in range(n_bins_grp)]
        ts_parts: list[list[np.ndarray]] = [[] for _ in range(n_bins_grp)]
        rank_parts: list[list[list[np.ndarray]]] = [
            [[] for _ in range(N_FEATURES)] for _ in range(n_bins_grp)
        ]
        origin_pops: list[list[int]] = [[] for _ in range(n_bins_grp)]
        dest_pops: list[list[int]] = [[] for _ in range(n_bins_grp)]
        sampling = self.histogram_sampling
        width = self.bins.width
        for od in ods:
            od = int(od)
            stream = self.od_stream(od)
            origin, destination = self.topology.od_pair(od)
            for j, b in enumerate(group):
                rng = self.record_rng(od, b, salt=salt)
                total_packets = max(int(stream.packets[b]) // sampling, 1)
                n_records = int(min(max_records, max(1, total_packets // 3)))
                weights = rng.pareto(1.5, size=n_records) + 1.0
                pkts = np.maximum(1, np.round(weights * total_packets / weights.sum()))
                pkts_parts[j].append(pkts.astype(np.int64))
                for k in range(N_FEATURES):
                    counts = stream.histograms[k][b].astype(np.float64)
                    total = counts.sum()
                    if total <= 0:
                        # materialize_bin emits literal zeros here (and
                        # skips the rng.choice draw); rank -1 marks it.
                        ranks = np.full(n_records, -1, dtype=np.int64)
                    else:
                        # Draw-for-draw identical to materialize_bin's
                        # rng.choice(len(counts), size, p=counts/total):
                        # Generator.choice builds this cdf, renormalises
                        # it, and searches one rng.random(size) batch —
                        # done inline to skip its per-call validation
                        # (pinned against rng.choice by the
                        # materialize-equivalence tests).
                        cdf = (counts / total).cumsum()
                        cdf /= cdf[-1]
                        ranks = cdf.searchsorted(
                            rng.random(n_records), side="right"
                        ).astype(np.int64)
                    rank_parts[j][k].append(ranks)
                ts_parts[j].append(rng.uniform(0, width, size=n_records))
                lengths[j].append(n_records)
                origin_pops[j].append(origin.index)
                dest_pops[j].append(destination.index)
            if evict:
                self.evict_stream(od)
        ip_table = self._ip_table()
        n_hosts = ip_table.shape[1]
        size = self.config.mean_packet_size
        out: list[FlowRecordBatch] = []
        for j, b in enumerate(group):
            counts_j = np.asarray(lengths[j], dtype=np.int64)
            packets = np.concatenate(pkts_parts[j]) if pkts_parts[j] else np.zeros(0, np.int64)
            timestamps = self.bins.bin_start(b) + (
                np.concatenate(ts_parts[j]) if ts_parts[j] else np.zeros(0)
            )
            columns: dict[str, np.ndarray] = {}
            for k, name in enumerate(names):
                ranks = (
                    np.concatenate(rank_parts[j][k])
                    if rank_parts[j][k]
                    else np.zeros(0, np.int64)
                )
                if name in ("src_ip", "dst_ip"):
                    pops = origin_pops[j] if name == "src_ip" else dest_pops[j]
                    row_pop = np.repeat(np.asarray(pops, dtype=np.int64), counts_j)
                    values = ip_table[row_pop, ranks % n_hosts]
                else:
                    values = self._port_values(ranks)
                columns[name] = np.where(ranks >= 0, values, 0)
            order = np.argsort(timestamps, kind="stable")
            out.append(
                FlowRecordBatch(
                    src_ip=columns["src_ip"][order],
                    dst_ip=columns["dst_ip"][order],
                    src_port=columns["src_port"][order],
                    dst_port=columns["dst_port"][order],
                    protocol=np.full(len(order), 6, dtype=np.int64),
                    packets=packets[order],
                    bytes=np.round(packets * size).astype(np.int64)[order],
                    timestamp=timestamps[order],
                    ingress_pop=np.repeat(
                        np.asarray(origin_pops[j], dtype=np.int64), counts_j
                    )[order],
                )
            )
        return out


def feature_index_of(name: str) -> int:
    """Index of a feature name in FEATURES (local helper)."""
    return FEATURES.index(name)
