"""Alternative dispersion/concentration metrics for feature distributions.

The paper (Section 3) notes: *"entropy is not the only metric that
captures a distribution's concentration or dispersal; however we have
explored other metrics and find that entropy works well in practice."*
This module supplies those alternatives so the claim can be tested
(see ``experiments/ablation_metrics.py``):

* :func:`sample_entropy` — the paper's choice (re-exported).
* :func:`renyi_entropy` — order-q Renyi entropy; q -> 1 recovers
  Shannon, q = 2 is the (log) collision entropy, closely related to the
  Gini-Simpson index.
* :func:`gini_coefficient` — inequality of the count distribution
  (0 = uniform, -> 1 = concentrated); note the *opposite* orientation
  to entropy.
* :func:`simpson_index` — probability two random packets share the
  feature value (concentration).
* :func:`distinct_count` / :func:`normalized_distinct` — the crudest
  dispersal measure; sensitive to sampling.
* :func:`top_k_share` — fraction of packets on the k heaviest values.

All metrics accept a count histogram (1-D array-like); a registry
(:data:`DISPERSION_METRICS`) and a vectorised row-wise driver
(:func:`metric_rows`) let the traffic pipeline swap metrics wholesale.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.entropy import sample_entropy

__all__ = [
    "renyi_entropy",
    "gini_coefficient",
    "simpson_index",
    "distinct_count",
    "normalized_distinct",
    "top_k_share",
    "DISPERSION_METRICS",
    "metric_rows",
]


def _probabilities(counts) -> np.ndarray:
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("counts must be one-dimensional")
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    arr = arr[arr > 0]
    total = arr.sum()
    if total == 0:
        return np.zeros(0)
    return arr / total


def renyi_entropy(counts, q: float = 2.0) -> float:
    """Order-``q`` Renyi entropy in bits.

    ``H_q = log2(sum p_i^q) / (1 - q)`` for q != 1; q = 1 is Shannon.
    Higher orders weight the heavy hitters more, making H_2 a popular
    DOS-detection statistic in the follow-up literature.
    """
    if q < 0:
        raise ValueError("q must be non-negative")
    p = _probabilities(counts)
    if p.size == 0:
        return 0.0
    if abs(q - 1.0) < 1e-12:
        return sample_entropy(counts)
    return float(np.log2((p ** q).sum()) / (1.0 - q))


def gini_coefficient(counts) -> float:
    """Gini inequality coefficient of the count distribution.

    0 when every observed value is equally common; approaches 1 when a
    single value dominates a long tail.  Concentration-oriented: an
    anomaly that *disperses* a feature drives Gini down.
    """
    p = _probabilities(counts)
    n = p.size
    if n <= 1:
        return 0.0
    sorted_p = np.sort(p)
    cum = np.cumsum(sorted_p)
    # Gini = 1 - 2 * area under the Lorenz curve (trapezoidal).
    lorenz_area = (cum.sum() - cum[-1] / 2.0) / n
    return float(1.0 - 2.0 * lorenz_area)


def simpson_index(counts) -> float:
    """Simpson concentration: P(two random packets share the value).

    Equals ``sum p_i^2``; 1/N for the uniform distribution, 1 for a
    point mass.  ``1 - simpson`` is the Gini-Simpson diversity.
    """
    p = _probabilities(counts)
    if p.size == 0:
        return 0.0
    return float((p ** 2).sum())


def distinct_count(counts) -> float:
    """Number of distinct observed values (dispersal in its rawest form)."""
    arr = np.asarray(counts, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    return float((arr > 0).sum())


def normalized_distinct(counts) -> float:
    """Distinct values per observation, in (0, 1]; 0 for empty input.

    High when most packets carry unique values (scans), low when a few
    values dominate a large sample.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    total = arr.sum()
    if total == 0:
        return 0.0
    return float((arr > 0).sum() / total)


def top_k_share(counts, k: int = 1) -> float:
    """Fraction of packets on the ``k`` heaviest values (concentration)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    p = _probabilities(counts)
    if p.size == 0:
        return 0.0
    top = np.sort(p)[::-1][:k]
    return float(top.sum())


#: Registry of metric name -> callable, all taking a count histogram.
#: Orientation differs by metric (entropy rises with dispersal, Gini /
#: Simpson / top-share fall); the subspace method is orientation-
#: agnostic since it works on deviations.
DISPERSION_METRICS: dict[str, Callable] = {
    "entropy": sample_entropy,
    "renyi2": lambda c: renyi_entropy(c, q=2.0),
    "gini": gini_coefficient,
    "simpson": simpson_index,
    "distinct": distinct_count,
    "top1_share": lambda c: top_k_share(c, k=1),
}


def metric_rows(counts: np.ndarray, metric: str) -> np.ndarray:
    """Apply a registered metric to every row of a 2-D count matrix.

    The entropy case uses the vectorised fast path; the others loop —
    they are only used in ablations over modest matrices.
    """
    if metric not in DISPERSION_METRICS:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {sorted(DISPERSION_METRICS)}"
        )
    counts = np.asarray(counts)
    if counts.ndim != 2:
        raise ValueError("counts must be two-dimensional")
    if metric == "entropy":
        from repro.core.entropy import entropy_rows

        return entropy_rows(counts)
    func = DISPERSION_METRICS[metric]
    return np.array([func(row) for row in counts])
