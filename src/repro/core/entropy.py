"""Sample entropy: the paper's summary statistic (Section 3).

Given an empirical histogram ``X = {n_i, i=1..N}`` with total
``S = sum n_i``, the sample entropy is::

    H(X) = - sum_i (n_i / S) * log2(n_i / S)

H lies in ``[0, log2 N]``: 0 when all observations share one value
(maximal concentration), ``log2 N`` when all values are equally common
(maximal dispersal).  The paper uses H purely as a summary of a
distribution's tendency to be concentrated or dispersed — no ergodicity
or stationarity assumptions — and so do we.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sample_entropy",
    "normalized_entropy",
    "entropy_rows",
    "entropy_from_probabilities",
    "max_entropy",
]


def _as_counts(counts) -> np.ndarray:
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("counts must be one-dimensional")
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    return arr


def sample_entropy(counts) -> float:
    """Sample entropy (bits) of a histogram given as counts.

    Zero-count entries are ignored (they are not part of the empirical
    histogram).  An empty histogram has entropy 0 by convention.

    >>> sample_entropy([1, 1, 1, 1])
    2.0
    >>> sample_entropy([10])
    0.0
    """
    arr = _as_counts(counts)
    arr = arr[arr > 0]
    total = arr.sum()
    if total == 0:
        return 0.0
    p = arr / total
    return float(-(p * np.log2(p)).sum())


def entropy_from_probabilities(p) -> float:
    """Entropy (bits) of a probability vector (must sum to ~1)."""
    p = np.asarray(p, dtype=np.float64)
    if np.any(p < 0):
        raise ValueError("probabilities must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"probabilities sum to {total}, expected 1")
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


def max_entropy(n_distinct: int) -> float:
    """Upper bound ``log2 N`` for a histogram with N distinct values."""
    if n_distinct < 0:
        raise ValueError("n_distinct must be non-negative")
    if n_distinct <= 1:
        return 0.0
    return float(np.log2(n_distinct))


def normalized_entropy(counts) -> float:
    """Sample entropy rescaled to [0, 1] by its ``log2 N`` maximum.

    Useful when comparing histograms with very different support sizes;
    the paper instead normalises residual-entropy *vectors* to unit norm
    for classification (see :mod:`repro.core.classify`), but a bounded
    per-histogram variant is handy in examples and tests.
    """
    arr = _as_counts(counts)
    n = int((arr > 0).sum())
    upper = max_entropy(n)
    if upper == 0.0:
        return 0.0
    return sample_entropy(arr) / upper


def entropy_rows(counts: np.ndarray) -> np.ndarray:
    """Row-wise sample entropy of a 2-D count array.

    Vectorised workhorse for the traffic generator: ``counts`` has shape
    ``(t, n)`` — one histogram per row — and the result has shape
    ``(t,)``.  Rows with zero total have entropy 0.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("counts must be two-dimensional")
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    totals = arr.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(totals > 0, arr / totals, 0.0)
        logp = np.log2(p, out=np.zeros_like(p), where=p > 0)
    return -(p * logp).sum(axis=1)
