"""The subspace method (paper Section 4.1): PCA split with a Q-statistic.

Given a ``t x p`` data matrix X (rows = observations, columns = OD-flow
metrics), the method:

1. mean-centres the columns,
2. finds principal components; the top ``m`` components span the
   *normal subspace* (typical variation common to the ensemble), the
   rest span the *residual subspace*,
3. decomposes each observation ``x = x_hat + x_tilde`` into normal and
   residual parts, and
4. flags timepoints whose squared prediction error (SPE)
   ``Q = ||x_tilde||^2`` exceeds the Jackson-Mudholkar threshold
   ``Q_alpha`` corresponding to a desired false-alarm rate
   ``1 - alpha``.

This is the machinery of Lakhina et al. 2004 [24], reused here both as
the volume-based baseline detector and as the engine inside the
multiway method.  For the paper's datasets a knee in captured variance
appeared at m ~ 10 (85% of variance); both selection rules are offered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["PCAModel", "q_threshold", "SubspaceModel", "SubspaceDetector", "DetectionResult"]

DEFAULT_N_COMPONENTS = 10
DEFAULT_ALPHA = 0.999


@dataclass
class PCAModel:
    """Principal components of a mean-centred data matrix.

    Attributes:
        mean: ``(p,)`` column means.
        components: ``(p, p_eff)`` orthonormal PC loadings (columns).
        eigenvalues: ``(p_eff,)`` variances along each PC, descending.
    """

    mean: np.ndarray
    components: np.ndarray
    eigenvalues: np.ndarray

    @classmethod
    def fit(cls, X: np.ndarray) -> "PCAModel":
        """Fit by SVD of the centred matrix (robust for t >> p or t < p)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        t, _ = X.shape
        if t < 2:
            raise ValueError("need at least 2 observations")
        mean = X.mean(axis=0)
        centered = X - mean
        # economy SVD: X = U S Vt; eigenvalues of cov are s^2/(t-1)
        _, s, vt = np.linalg.svd(centered, full_matrices=False)
        eigenvalues = (s ** 2) / (t - 1)
        return cls(mean=mean, components=vt.T, eigenvalues=eigenvalues)

    @property
    def n_variables(self) -> int:
        """Number of columns p of the fitted matrix."""
        return self.mean.shape[0]

    @property
    def n_effective(self) -> int:
        """Number of retained PCs (min(t-?, p) from the economy SVD)."""
        return self.components.shape[1]

    def variance_captured(self, m: int) -> float:
        """Fraction of total variance captured by the top ``m`` PCs."""
        total = self.eigenvalues.sum()
        if total == 0:
            return 1.0
        return float(self.eigenvalues[:m].sum() / total)

    def knee(self, threshold: float = 0.85) -> int:
        """Smallest m capturing at least ``threshold`` of total variance."""
        total = self.eigenvalues.sum()
        if total == 0:
            return 1
        cum = np.cumsum(self.eigenvalues) / total
        return int(np.searchsorted(cum, threshold) + 1)


def q_threshold(residual_eigenvalues: np.ndarray, alpha: float) -> float:
    """Jackson-Mudholkar (1979) SPE control limit ``Q_alpha``.

    Args:
        residual_eigenvalues: Eigenvalues of the PCs spanning the
            residual subspace (lambda_{m+1} .. lambda_p).
        alpha: Confidence level, e.g. 0.999 for a 0.1% false-alarm rate
            under the null.

    Returns:
        The threshold on ``Q = ||x_tilde||^2``; observations above it
        are declared anomalous.
    """
    lam = np.asarray(residual_eigenvalues, dtype=np.float64)
    lam = lam[lam > 0]
    if lam.size == 0:
        return 0.0
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    scale = lam.max()
    if scale <= 0 or not np.isfinite(scale):
        # Spectrum underflowed to zero (e.g. a constant data matrix).
        return 0.0
    # The Jackson-Mudholkar limit is scale-equivariant
    # (Q_alpha(c * lam) = c * Q_alpha(lam)); normalising by the largest
    # eigenvalue keeps the phi moments away from floating-point under-
    # and overflow for extreme spectra (tiny residuals would otherwise
    # yield phi2**2 == 0 and a NaN threshold that silently disables
    # detection).
    lam = lam / scale
    phi1 = lam.sum()
    phi2 = (lam ** 2).sum()
    phi3 = (lam ** 3).sum()
    h0 = 1.0 - (2.0 * phi1 * phi3) / (3.0 * phi2 ** 2)
    if h0 <= 0:
        # Degenerate spectrum; fall back to h0 -> small positive, which
        # yields a conservative (large) threshold.
        h0 = 1e-4
    c_alpha = stats.norm.ppf(alpha)
    term = (
        c_alpha * np.sqrt(2.0 * phi2 * h0 ** 2) / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / phi1 ** 2
    )
    # A (rare) negative base means the normal approximation has broken
    # down; clamp to a tiny positive number, again conservative.
    term = max(term, 1e-12)
    return float(scale * phi1 * term ** (1.0 / h0))


@dataclass
class SubspaceModel:
    """A fitted normal/residual split of a metric ensemble."""

    pca: PCAModel
    n_components: int

    def __post_init__(self) -> None:
        if not 1 <= self.n_components <= self.pca.n_effective:
            raise ValueError(
                f"n_components={self.n_components} outside "
                f"[1, {self.pca.n_effective}]"
            )

    @classmethod
    def fit(
        cls,
        X: np.ndarray,
        n_components: int | None = DEFAULT_N_COMPONENTS,
        variance_threshold: float | None = None,
    ) -> "SubspaceModel":
        """Fit PCA and pick the normal-subspace dimension.

        Either a fixed ``n_components`` (paper default: 10) or the
        smallest dimension capturing ``variance_threshold`` of variance.
        """
        pca = PCAModel.fit(X)
        if variance_threshold is not None:
            m = pca.knee(variance_threshold)
        elif n_components is not None:
            m = n_components
        else:
            raise ValueError("specify n_components or variance_threshold")
        m = max(1, min(m, pca.n_effective - 1)) if pca.n_effective > 1 else 1
        return cls(pca=pca, n_components=m)

    @property
    def normal_basis(self) -> np.ndarray:
        """``(p, m)`` orthonormal basis P of the normal subspace."""
        return self.pca.components[:, : self.n_components]

    @property
    def residual_eigenvalues(self) -> np.ndarray:
        """Eigenvalues of the residual subspace."""
        return self.pca.eigenvalues[self.n_components:]

    def residual(self, X: np.ndarray) -> np.ndarray:
        """Residual part ``x_tilde`` of observations (rows).

        Accepts a single ``(p,)`` vector or a ``(t, p)`` matrix.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        centered = X - self.pca.mean
        P = self.normal_basis
        res = centered - (centered @ P) @ P.T
        return res[0] if res.shape[0] == 1 and X.ndim == 1 else res

    def spe(self, X: np.ndarray) -> np.ndarray:
        """Squared prediction error ``||x_tilde||^2`` per observation."""
        res = np.atleast_2d(self.residual(X))
        return (res ** 2).sum(axis=1)

    def threshold(self, alpha: float = DEFAULT_ALPHA) -> float:
        """Q_alpha for this model's residual spectrum."""
        return q_threshold(self.residual_eigenvalues, alpha)


@dataclass
class DetectionResult:
    """Outcome of running a detector over a data matrix.

    Attributes:
        spe: ``(t,)`` squared prediction errors.
        threshold: The Q_alpha used.
        alpha: Confidence level used.
        anomalous_bins: Indices where ``spe > threshold``.
        residuals: ``(t, p)`` residual vectors (kept for identification
            and classification).
    """

    spe: np.ndarray
    threshold: float
    alpha: float
    residuals: np.ndarray

    @property
    def anomalous_bins(self) -> np.ndarray:
        """Sorted bin indices flagged as anomalous."""
        return np.flatnonzero(self.spe > self.threshold)

    @property
    def n_detections(self) -> int:
        """Number of flagged bins."""
        return int((self.spe > self.threshold).sum())

    def is_anomalous(self, t: int) -> bool:
        """Whether bin ``t`` exceeded the threshold."""
        return bool(self.spe[t] > self.threshold)


class SubspaceDetector:
    """Convenience wrapper: fit once, score any matrix of observations.

    This object also supports the online/fixed-subspace mode used by the
    injection sweeps: fit on a clean matrix, then score modified rows
    against the frozen subspace (see DESIGN.md, Section 2).
    """

    def __init__(
        self,
        n_components: int | None = DEFAULT_N_COMPONENTS,
        variance_threshold: float | None = None,
        alpha: float = DEFAULT_ALPHA,
    ) -> None:
        self.n_components = n_components
        self.variance_threshold = variance_threshold
        self.alpha = alpha
        self.model: SubspaceModel | None = None

    def fit(self, X: np.ndarray) -> "SubspaceDetector":
        """Fit the normal subspace on ``X``."""
        self.model = SubspaceModel.fit(
            X,
            n_components=self.n_components,
            variance_threshold=self.variance_threshold,
        )
        return self

    def _require_model(self) -> SubspaceModel:
        if self.model is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        return self.model

    def detect(self, X: np.ndarray, alpha: float | None = None) -> DetectionResult:
        """Score observations and flag SPE threshold crossings."""
        model = self._require_model()
        a = self.alpha if alpha is None else alpha
        X = np.asarray(X, dtype=np.float64)
        residuals = np.atleast_2d(model.residual(X))
        spe = (residuals ** 2).sum(axis=1)
        return DetectionResult(
            spe=spe, threshold=model.threshold(a), alpha=a, residuals=residuals
        )

    def fit_detect(self, X: np.ndarray, alpha: float | None = None) -> DetectionResult:
        """Fit on ``X`` and score the same matrix (the paper's offline mode)."""
        return self.fit(X).detect(X, alpha=alpha)
