"""Clustering for unsupervised anomaly classification (paper Section 4.3).

The paper deliberately uses *simple* clustering — one partitional
algorithm (k-means) and one hierarchical algorithm (agglomerative with
nearest-neighbour joining) — and shows the results are insensitive to
the choice.  Both are implemented here from scratch (no sklearn in this
environment, and the algorithms are part of the reproduction surface):

* :func:`kmeans` — Lloyd's algorithm with k-means++ seeding and
  multiple restarts.
* :func:`hierarchical` — agglomerative clustering via the
  Lance-Williams update, supporting single (the paper's
  nearest-neighbour rule), complete, average and Ward linkage.
* :func:`cluster_variation` — the paper's intra-/inter-cluster
  variation metrics trace(W) and trace(B) (Section 4.3).
* :func:`choose_k_curves` — variation as a function of k, used to pick
  the number of clusters (paper Figure 10: knee at ~8-12, fixed at 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ClusteringResult",
    "kmeans",
    "hierarchical",
    "cluster_variation",
    "choose_k_curves",
    "pairwise_distances",
    "relabel_by_size",
    "agreement_rate",
]


@dataclass
class ClusteringResult:
    """Labels plus summary statistics for one clustering run.

    Attributes:
        labels: ``(n,)`` cluster index per point, in ``[0, k)``.
        centers: ``(k, d)`` cluster means.
        k: Number of clusters.
        inertia: Total within-cluster sum of squares (trace(W)).
        algorithm: ``"kmeans"`` or ``"hierarchical/<linkage>"``.
    """

    labels: np.ndarray
    centers: np.ndarray
    k: int
    inertia: float
    algorithm: str

    def sizes(self) -> np.ndarray:
        """Cluster sizes (points per cluster)."""
        return np.bincount(self.labels, minlength=self.k)

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points in ``cluster``."""
        return np.flatnonzero(self.labels == cluster)


def pairwise_distances(X: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix (n x n)."""
    X = np.asarray(X, dtype=np.float64)
    sq = (X ** 2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(d2)


def _kmeans_pp_seeds(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ initial centers."""
    n = X.shape[0]
    centers = np.empty((k, X.shape[1]))
    first = rng.integers(n)
    centers[0] = X[first]
    d2 = ((X - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 0:
            centers[j:] = X[rng.integers(n, size=k - j)]
            break
        probs = d2 / total
        idx = rng.choice(n, p=probs)
        centers[j] = X[idx]
        d2 = np.minimum(d2, ((X - centers[j]) ** 2).sum(axis=1))
    return centers


def _lloyd(
    X: np.ndarray, centers: np.ndarray, max_iter: int
) -> tuple[np.ndarray, np.ndarray, float]:
    """One run of Lloyd's algorithm; returns (labels, centers, inertia)."""
    k = centers.shape[0]
    labels = np.zeros(X.shape[0], dtype=np.int64)
    for _ in range(max_iter):
        d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = d2.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            mask = labels == j
            if mask.any():
                centers[j] = X[mask].mean(axis=0)
            # Empty cluster: re-seed at the point farthest from its center.
            else:
                farthest = d2.min(axis=1).argmax()
                centers[j] = X[farthest]
    d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    labels = d2.argmin(axis=1)
    inertia = float(d2[np.arange(X.shape[0]), labels].sum())
    return labels, centers, inertia


def kmeans(
    X: np.ndarray,
    k: int,
    rng: np.random.Generator | int | None = 0,
    n_init: int = 8,
    max_iter: int = 100,
) -> ClusteringResult:
    """k-means clustering (Lloyd + k-means++ seeding, best of ``n_init``).

    Args:
        X: ``(n, d)`` data points.
        k: Number of clusters (1 <= k <= n).
        rng: Generator or seed for reproducible seeding.
        n_init: Independent restarts; the lowest-inertia run wins.
        max_iter: Lloyd iteration cap per restart.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} outside [1, {n}]")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    best: tuple[np.ndarray, np.ndarray, float] | None = None
    for _ in range(n_init):
        centers = _kmeans_pp_seeds(X, k, rng)
        labels, centers, inertia = _lloyd(X, centers.copy(), max_iter)
        if best is None or inertia < best[2]:
            best = (labels, centers, inertia)
    labels, centers, inertia = best
    return ClusteringResult(
        labels=labels, centers=centers, k=k, inertia=inertia, algorithm="kmeans"
    )


_LINKAGES = ("single", "complete", "average", "ward")


def hierarchical(
    X: np.ndarray,
    k: int,
    linkage: str = "single",
) -> ClusteringResult:
    """Agglomerative clustering cut at ``k`` clusters.

    Starts with every point in its own cluster and repeatedly joins the
    two nearest clusters (Lance-Williams distance updates) until ``k``
    remain.  ``linkage="single"`` is the paper's nearest-neighbour rule;
    ``"ward"``/``"average"``/``"complete"`` are provided for the
    robustness ablation.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} outside [1, {n}]")
    if linkage not in _LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; expected one of {_LINKAGES}")

    D = pairwise_distances(X)
    if linkage == "ward":
        # Ward operates on squared distances; merge cost for singletons
        # is d^2/2 but the constant does not change the merge order.
        D = D ** 2
    np.fill_diagonal(D, np.inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n)
    # Union-find-ish: cluster id per point, updated on merges.
    membership = np.arange(n)

    for _ in range(n - k):
        flat = np.argmin(D)
        i, j = np.unravel_index(flat, D.shape)
        if i > j:
            i, j = j, i
        # Lance-Williams update of row i (absorbing j).
        ni, nj = sizes[i], sizes[j]
        others = active.copy()
        others[i] = others[j] = False
        idx = np.flatnonzero(others)
        if linkage == "single":
            new = np.minimum(D[i, idx], D[j, idx])
        elif linkage == "complete":
            new = np.maximum(D[i, idx], D[j, idx])
        elif linkage == "average":
            new = (ni * D[i, idx] + nj * D[j, idx]) / (ni + nj)
        else:  # ward
            nk = sizes[idx]
            new = (
                (ni + nk) * D[i, idx]
                + (nj + nk) * D[j, idx]
                - nk * D[i, j]
            ) / (ni + nj + nk)
        D[i, idx] = new
        D[idx, i] = new
        D[j, :] = np.inf
        D[:, j] = np.inf
        active[j] = False
        sizes[i] = ni + nj
        membership[membership == membership[j]] = membership[i]

    # Compact labels to [0, k).
    unique = np.unique(membership)
    labels = np.searchsorted(unique, membership)
    centers = np.vstack([X[labels == c].mean(axis=0) for c in range(len(unique))])
    inertia = float(
        sum(
            ((X[labels == c] - centers[c]) ** 2).sum()
            for c in range(len(unique))
        )
    )
    return ClusteringResult(
        labels=labels,
        centers=centers,
        k=len(unique),
        inertia=inertia,
        algorithm=f"hierarchical/{linkage}",
    )


def cluster_variation(X: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
    """The paper's intra-/inter-cluster variation: (trace(W), trace(B)).

    With ``T = X^T X`` (total sum of squares and cross products, about
    the origin as in Section 4.3), ``B`` the between-cluster and ``W``
    the within-cluster scatter, returns ``(trace(W), trace(B))``.
    """
    X = np.asarray(X, dtype=np.float64)
    labels = np.asarray(labels)
    if X.shape[0] != labels.shape[0]:
        raise ValueError("labels length must match X")
    trace_t = float((X ** 2).sum())
    trace_b = 0.0
    for c in np.unique(labels):
        members = X[labels == c]
        mean = members.mean(axis=0)
        trace_b += len(members) * float((mean ** 2).sum())
    trace_w = trace_t - trace_b
    return trace_w, trace_b


def choose_k_curves(
    X: np.ndarray,
    k_values,
    algorithm: str = "hierarchical",
    linkage: str = "single",
    rng: np.random.Generator | int | None = 0,
) -> dict[int, tuple[float, float]]:
    """(trace(W), trace(B)) for each candidate k (paper Figure 10).

    Hierarchical runs reuse one merge pass conceptually; for simplicity
    and because n is modest we re-run per k.
    """
    curves: dict[int, tuple[float, float]] = {}
    for k in k_values:
        if algorithm == "hierarchical":
            result = hierarchical(X, k, linkage=linkage)
        elif algorithm == "kmeans":
            result = kmeans(X, k, rng=rng)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        curves[int(k)] = cluster_variation(X, result.labels)
    return curves


def relabel_by_size(labels: np.ndarray) -> np.ndarray:
    """Relabel clusters so 0 is the largest (paper tables list by size)."""
    labels = np.asarray(labels)
    counts = np.bincount(labels)
    order = np.argsort(counts)[::-1]
    mapping = np.empty_like(order)
    mapping[order] = np.arange(len(order))
    return mapping[labels]


def agreement_rate(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Fraction of point *pairs* on which two clusterings agree (Rand index).

    Used for the paper's claim that results are insensitive to the
    clustering algorithm.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValueError("label arrays must have the same shape")
    n = len(a)
    if n < 2:
        return 1.0
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    iu = np.triu_indices(n, k=1)
    return float((same_a[iu] == same_b[iu]).mean())
