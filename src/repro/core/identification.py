"""Multi-attribute identification (paper Section 4.2).

Detection says *when* an anomaly happened; identification says *which
OD flow(s)* caused it.  In the multiway setting the state vector ``h``
lives in 4p dimensions (4 features x p OD flows).  For OD flow ``k``
the binary selection matrix ``theta_k`` (4p x 4) picks out its four
feature coordinates; the anomaly hypothesis is::

    h = h_typical + theta_k @ f_k

with ``f_k`` the 4-vector of entropy displacement caused by flow k.
Projecting onto the residual subspace (the typical part lives in the
normal subspace) gives a small least-squares problem per candidate
flow; the flow whose best-fit displacement explains the most residual
energy is selected:

    l = argmin_k  min_{f_k} || C (h - theta_k f_k) ||

where C = I - P P^T is the residual projector.  Following the paper we
re-apply the method recursively — subtract the identified component and
repeat — until the remaining state drops below the detection threshold
(or a flow cap is reached), which is how multi-OD-flow anomalies are
attributed to several flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.features import N_FEATURES

__all__ = ["IdentifiedFlow", "identify_flows", "theta_columns"]

MAX_FLOWS_DEFAULT = 5


@dataclass
class IdentifiedFlow:
    """One OD flow implicated in a detection.

    Attributes:
        od: OD-flow index k.
        displacement: Best-fit ``f_k`` — the per-feature entropy change
            attributed to this flow (feature order
            :data:`repro.flows.features.FEATURES`).  This is the vector
            the classification stage clusters (after unit-norm scaling).
        residual_spe: Remaining ``||C h||^2`` *after* subtracting this
            flow's component.
    """

    od: int
    displacement: np.ndarray
    residual_spe: float


def theta_columns(od: int, n_od_flows: int) -> np.ndarray:
    """Column indices of OD flow ``od`` in the unfolded 4p layout."""
    if not 0 <= od < n_od_flows:
        raise ValueError(f"OD index out of range: {od}")
    return od + n_od_flows * np.arange(N_FEATURES)


def _best_fit(
    h_res: np.ndarray,
    C_theta: np.ndarray,
    gram_pinv: np.ndarray,
) -> tuple[np.ndarray, float]:
    """Solve ``min_f ||h_res - C_theta f||`` via cached normal equations.

    With ``M = pinv(C_theta^T C_theta)`` precomputed, the minimiser is
    ``f = M (C_theta^T h)`` and the residual norm is
    ``||h||^2 - f . (C_theta^T h)`` — O(p) per candidate instead of a
    full least-squares factorisation.
    """
    ath = C_theta.T @ h_res
    f = gram_pinv @ ath
    remaining = float(h_res @ h_res) - float(f @ ath)
    return f, max(remaining, 0.0)


def identify_flows(
    h_centered: np.ndarray,
    normal_basis: np.ndarray,
    n_od_flows: int,
    threshold: float,
    max_flows: int = MAX_FLOWS_DEFAULT,
    candidates: np.ndarray | None = None,
    cache: dict[int, tuple[np.ndarray, np.ndarray]] | None = None,
) -> list[IdentifiedFlow]:
    """Attribute an anomalous state vector to OD flows, greedily.

    Args:
        h_centered: ``(4p,)`` state vector with the fitted mean already
            subtracted (same normalised units the subspace was fit in).
        normal_basis: ``(4p, m)`` orthonormal basis P of the normal
            subspace.
        n_od_flows: Block width p.
        threshold: Detection threshold on SPE; recursion stops once the
            residual SPE falls below it.
        max_flows: Hard cap on the recursion depth.
        candidates: Optional subset of OD indices to consider (speeds up
            sweeps where the injected flow set is known); defaults to
            all p flows.
        cache: Optional dict for memoising the projected selection
            matrices ``C theta_k`` across calls against the same basis
            (the multiway detector passes one per detection run).

    Returns:
        Identified flows in discovery order (strongest first).  Can be
        empty when the state is (numerically) below threshold already.
    """
    h = np.asarray(h_centered, dtype=np.float64)
    P = np.asarray(normal_basis, dtype=np.float64)
    if h.ndim != 1 or h.size != N_FEATURES * n_od_flows:
        raise ValueError("state vector has wrong length")
    if candidates is None:
        candidates = np.arange(n_od_flows)

    def project_residual(x: np.ndarray) -> np.ndarray:
        return x - P @ (P.T @ x)

    identified: list[IdentifiedFlow] = []
    current = h.copy()
    h_res = project_residual(current)
    spe = float(h_res @ h_res)
    if cache is None:
        cache = {}
    used: set[int] = set()
    while spe > threshold and len(identified) < max_flows:
        best_od = -1
        best_fit: tuple[np.ndarray, float] | None = None
        for od in candidates:
            od = int(od)
            if od in used:
                continue
            entry = cache.get(od)
            if entry is None:
                # C theta_k = theta_k - P (P^T theta_k); theta_k's
                # columns are identity columns, so P^T theta_k is just
                # four rows of P transposed — no big allocation needed.
                cols = theta_columns(od, n_od_flows)
                C_theta = -(P @ P[cols].T)
                C_theta[cols, np.arange(N_FEATURES)] += 1.0
                gram_pinv = np.linalg.pinv(C_theta.T @ C_theta)
                entry = (C_theta, gram_pinv)
                cache[od] = entry
            fit = _best_fit(h_res, entry[0], entry[1])
            if best_fit is None or fit[1] < best_fit[1]:
                best_fit = fit
                best_od = od
        if best_od < 0 or best_fit is None:
            break
        f_k, remaining_spe = best_fit
        if remaining_spe >= spe - 1e-15:
            # No candidate explains any residual energy; stop rather
            # than loop forever.
            break
        identified.append(
            IdentifiedFlow(
                od=best_od, displacement=f_k.copy(), residual_spe=remaining_spe
            )
        )
        used.add(best_od)
        cols = theta_columns(best_od, n_od_flows)
        current = current.copy()
        current[cols] -= f_k
        h_res = project_residual(current)
        spe = float(h_res @ h_res)
    return identified
