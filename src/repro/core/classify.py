"""Anomaly classification in entropy space (paper Section 7).

Each detected anomaly is a point in four-dimensional *entropy space*
with coordinates ``h_tilde = [H~(srcIP), H~(srcPort), H~(dstIP),
H~(dstPort)]`` — the per-feature residual-entropy displacement of the
identified OD flow.  Points are rescaled to unit norm ("to focus on the
relationship between entropies rather than their absolute values"),
clustered, and clusters are summarised by a +/0/- *signature* per
feature (paper Tables 7 and 8): ``+`` when the cluster mean on that
axis is positive and more than ``z`` standard deviations from zero,
``-`` when negative and more than ``z`` away, ``0`` otherwise.

The signature is what makes clusters *meaningful*: e.g. a port scan is
(srcIP -, srcPort 0/-, dstIP -, dstPort +) — concentrated source and
victim, dispersed destination ports.  :func:`signature_label` encodes
the paper's Table 6 semantics as a nearest-template rule so Geant-style
clusters can be auto-annotated from Abilene knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import ClusteringResult
from repro.flows.features import FEATURES, N_FEATURES

__all__ = [
    "ANOMALY_LABELS",
    "unit_normalize",
    "ClusterSummary",
    "summarize_clusters",
    "signature_string",
    "signature_label",
    "label_statistics",
    "plurality_label",
]

#: Canonical anomaly labels (paper Table 1 plus bookkeeping labels).
ANOMALY_LABELS = (
    "alpha",
    "dos",
    "ddos",
    "flash_crowd",
    "port_scan",
    "network_scan",
    "worm",
    "outage",
    "point_multipoint",
    "unknown",
    "false_alarm",
)


def unit_normalize(points: np.ndarray) -> np.ndarray:
    """Rescale each row to unit Euclidean norm (zero rows left as zero)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    return points / safe


@dataclass
class ClusterSummary:
    """Statistics of one cluster in entropy space.

    Attributes:
        cluster: Cluster index.
        size: Number of anomalies in the cluster.
        mean: ``(4,)`` mean position.
        std: ``(4,)`` per-axis standard deviation.
        signature: Per-axis code in {+, 0, -} (see module docstring).
        plurality_label: Most common ground-truth label among members
            (empty string when labels were not supplied).
        plurality_count: How many members carry the plurality label.
        n_unknown: Members labelled "unknown".
        members: Indices of member anomalies.
    """

    cluster: int
    size: int
    mean: np.ndarray
    std: np.ndarray
    signature: tuple[str, ...]
    plurality_label: str = ""
    plurality_count: int = 0
    n_unknown: int = 0
    members: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def signature_str(self) -> str:
        """Signature as a compact string like ``"-0-+"``."""
        return "".join(self.signature)


def _axis_code(mean: float, std: float, z: float) -> str:
    """+/0/- code for one axis."""
    if std == 0:
        std = 1e-12
    if mean > z * std:
        return "+"
    if mean < -z * std:
        return "-"
    return "0"


def summarize_clusters(
    points: np.ndarray,
    clustering: ClusteringResult,
    labels: list[str] | None = None,
    z: float = 3.0,
) -> list[ClusterSummary]:
    """Summarise every cluster (paper Tables 7/8 rows), largest first.

    Args:
        points: ``(n, 4)`` unit-normalised entropy vectors.
        clustering: Result of k-means or hierarchical clustering on
            ``points``.
        labels: Optional ground-truth label per point; enables the
            plurality-label and unknown-count columns.
        z: Signature threshold in standard-deviation units (the paper
            uses 3 for Abilene's Table 7 and 2 for Geant's Table 8).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.shape[1] != N_FEATURES:
        raise ValueError(f"points must have {N_FEATURES} columns")
    summaries = []
    for c in range(clustering.k):
        members = clustering.members(c)
        if members.size == 0:
            continue
        sub = points[members]
        mean = sub.mean(axis=0)
        std = sub.std(axis=0)
        signature = tuple(
            _axis_code(float(mean[i]), float(std[i]), z) for i in range(N_FEATURES)
        )
        plurality = ""
        plurality_count = 0
        n_unknown = 0
        if labels is not None:
            member_labels = [labels[i] for i in members]
            n_unknown = sum(1 for lab in member_labels if lab == "unknown")
            counts: dict[str, int] = {}
            for lab in member_labels:
                counts[lab] = counts.get(lab, 0) + 1
            plurality, plurality_count = max(counts.items(), key=lambda kv: kv[1])
        summaries.append(
            ClusterSummary(
                cluster=c,
                size=int(members.size),
                mean=mean,
                std=std,
                signature=signature,
                plurality_label=plurality,
                plurality_count=plurality_count,
                n_unknown=n_unknown,
                members=members,
            )
        )
    summaries.sort(key=lambda s: s.size, reverse=True)
    return summaries


def signature_string(signature: tuple[str, ...]) -> str:
    """Readable signature, e.g. ``"srcIP:- srcPort:0 dstIP:- dstPort:+"``."""
    names = ("srcIP", "srcPort", "dstIP", "dstPort")
    return " ".join(f"{n}:{s}" for n, s in zip(names, signature))


#: Entropy-space templates per anomaly type, distilled from the paper's
#: Table 6 (asterisked means) and Section 7.3.2 prose.  Order matches
#: FEATURES = (src_ip, src_port, dst_ip, dst_port).
_TEMPLATES: dict[str, np.ndarray] = {
    # Alpha: concentrated src and dst addresses (and usually ports).
    "alpha": np.array([-0.5, -0.25, -0.5, -0.45]),
    # DOS: concentrated destination address; sources may disperse (DDOS).
    "dos": np.array([-0.05, -0.2, -0.6, -0.1]),
    "ddos": np.array([0.45, 0.2, -0.6, -0.1]),
    # Flash crowd: dispersed source ports, concentrated destination.
    "flash_crowd": np.array([0.2, 0.5, -0.4, 0.1]),
    # Port scan: concentrated srcIP/dstIP, strongly dispersed dstPort.
    "port_scan": np.array([-0.35, 0.05, -0.45, 0.7]),
    # Network scan: dispersed srcPort, dispersed dstIP, concentrated dstPort.
    "network_scan": np.array([-0.2, 0.55, 0.35, -0.35]),
    "worm": np.array([-0.3, 0.4, 0.55, -0.4]),
    # Outage: dispersed source and destination addresses.
    "outage": np.array([0.5, 0.3, 0.5, 0.25]),
    # Point to multipoint: dispersed destination addresses and ports.
    "point_multipoint": np.array([-0.2, -0.15, 0.65, 0.65]),
}


def signature_label(mean: np.ndarray) -> str:
    """Nearest-template label for a cluster-mean entropy vector.

    This encodes the paper's "rely on the Abilene cluster locations to
    obtain a label for Geant clusters" step as a cosine-similarity
    nearest template over Table 6 semantics.
    """
    mean = np.asarray(mean, dtype=np.float64)
    if mean.shape != (N_FEATURES,):
        raise ValueError(f"mean must be a {N_FEATURES}-vector")
    norm = np.linalg.norm(mean)
    if norm == 0:
        return "unknown"
    unit = mean / norm
    best_label, best_sim = "unknown", -np.inf
    for label, template in _TEMPLATES.items():
        sim = float(unit @ (template / np.linalg.norm(template)))
        if sim > best_sim:
            best_label, best_sim = label, sim
    # A weak best match means the cluster sits in a region no known
    # anomaly occupies — the paper's "new anomaly type" case.
    if best_sim < 0.5:
        return "unknown"
    return best_label


def label_statistics(
    points: np.ndarray, labels: list[str]
) -> dict[str, tuple[int, np.ndarray, np.ndarray]]:
    """Per-label (count, mean, std) in entropy space (paper Table 6)."""
    points = np.asarray(points, dtype=np.float64)
    if len(labels) != points.shape[0]:
        raise ValueError("labels length must match points")
    stats: dict[str, tuple[int, np.ndarray, np.ndarray]] = {}
    for label in sorted(set(labels)):
        mask = np.array([lab == label for lab in labels])
        sub = points[mask]
        stats[label] = (int(mask.sum()), sub.mean(axis=0), sub.std(axis=0))
    return stats


def plurality_label(labels: list[str]) -> tuple[str, int]:
    """Most common label and its count ('' for an empty list)."""
    if not labels:
        return "", 0
    counts: dict[str, int] = {}
    for lab in labels:
        counts[lab] = counts.get(lab, 0) + 1
    label, count = max(counts.items(), key=lambda kv: kv[1])
    return label, count


# Re-export the feature order for callers formatting tables.
FEATURE_NAMES = FEATURES
