"""Detection-quality metrics and threshold sweeps.

The paper evaluates detection quality informally (manual inspection for
false alarms, injection for detection rate).  With a ground-truth
schedule we can do it properly: precision/recall/F1 of flagged bins
against scheduled anomaly bins, and full ROC-style sweeps over the
detection confidence level alpha (the operating knob the paper exposes
via the Q threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["ConfusionCounts", "score_detections", "alpha_sweep", "auc_of_sweep"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Bin-level confusion between detections and ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was flagged."""
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was scheduled."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_alarm_rate(self) -> float:
        """FP / (FP + TN) — probability a clean bin is flagged."""
        clean = self.false_positives + self.true_negatives
        return self.false_positives / clean if clean else 0.0


def score_detections(
    detected_bins: Iterable[int],
    truth_bins: Iterable[int],
    n_bins: int,
    tolerance: int = 0,
) -> ConfusionCounts:
    """Score flagged bins against ground-truth anomaly bins.

    Args:
        detected_bins: Bins the detector flagged.
        truth_bins: Bins with scheduled anomalies.
        n_bins: Total bins in the trace.
        tolerance: A detection within ``tolerance`` bins of a truth bin
            counts as a hit (operators rarely care about one-bin
            misalignment).

    Returns:
        Bin-level confusion counts.
    """
    detected = set(int(b) for b in detected_bins)
    truth = set(int(b) for b in truth_bins)
    if any(b < 0 or b >= n_bins for b in detected | truth):
        raise ValueError("bin index outside the trace")

    if tolerance > 0:
        expanded = set()
        for b in truth:
            expanded.update(range(max(0, b - tolerance), min(n_bins, b + tolerance + 1)))
    else:
        expanded = truth

    tp_truth = {
        b for b in truth
        if any(d in range(max(0, b - tolerance), min(n_bins, b + tolerance + 1))
               for d in detected)
    } if tolerance else (truth & detected)
    fp = len(detected - expanded)
    tp = len(tp_truth)
    fn = len(truth) - tp
    tn = n_bins - len(truth) - fp
    return ConfusionCounts(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=max(tn, 0),
    )


def alpha_sweep(
    spe: np.ndarray,
    threshold_fn,
    truth_bins: Iterable[int],
    alphas: Iterable[float] = (0.9, 0.95, 0.99, 0.995, 0.999, 0.9999),
) -> list[tuple[float, ConfusionCounts]]:
    """Quality as a function of the detection confidence level.

    Args:
        spe: ``(t,)`` squared prediction errors of a fitted detector.
        threshold_fn: ``alpha -> Q_alpha`` (e.g. ``model.threshold``).
        truth_bins: Ground-truth anomaly bins.
        alphas: Confidence levels to sweep.

    Returns:
        ``[(alpha, counts), ...]`` in the order given.
    """
    spe = np.asarray(spe, dtype=np.float64)
    out = []
    truth = list(truth_bins)
    for alpha in alphas:
        detected = np.flatnonzero(spe > threshold_fn(alpha))
        out.append((alpha, score_detections(detected, truth, len(spe))))
    return out


def auc_of_sweep(sweep: list[tuple[float, ConfusionCounts]]) -> float:
    """Trapezoidal area under the (false-alarm rate, recall) curve.

    The sweep samples a handful of operating points; the curve is
    anchored at (0, 0) and (1, 1).  Values near 1 mean the detector
    separates anomalous bins almost perfectly at some threshold.
    """
    points = sorted(
        [(0.0, 0.0)]
        + [(c.false_alarm_rate, c.recall) for _, c in sweep]
        + [(1.0, 1.0)]
    )
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    return float(np.trapezoid(ys, xs))
