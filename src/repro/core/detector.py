"""End-to-end anomaly diagnosis pipeline (paper Section 4).

:class:`AnomalyDiagnosis` chains the pieces together the way the paper
does:

1. **volume detection** — the subspace method on the ``(t, p)`` byte
   and packet matrices (the Lakhina-2004 baseline); a bin is
   volume-detected when either metric flags it,
2. **entropy detection** — the multiway subspace method on the
   ``(t, p, 4)`` entropy tensor, with multi-attribute identification,
3. **classification** — unit-normalised residual-entropy vectors of all
   entropy detections, clustered and summarised.

The output is a list of :class:`DiagnosedAnomaly` records carrying
everything the paper's tables need: which metrics detected each bin,
the implicated OD flow(s), the entropy-space position, and the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import ClusterSummary, summarize_clusters, unit_normalize
from repro.core.clustering import ClusteringResult, hierarchical, kmeans, relabel_by_size
from repro.core.multiway import MultiwayDetection, MultiwaySubspaceDetector
from repro.core.subspace import DEFAULT_ALPHA, DEFAULT_N_COMPONENTS, SubspaceDetector
from repro.flows.odflows import TrafficCube

__all__ = ["DiagnosedAnomaly", "DiagnosisReport", "AnomalyDiagnosis"]


@dataclass
class DiagnosedAnomaly:
    """One diagnosed anomalous (bin, OD flow) event.

    Attributes:
        bin: Time-bin index.
        od: Primary identified OD flow (-1 when identification is off
            or found nothing).
        detected_by_volume: Bin flagged by bytes or packets subspace.
        detected_by_entropy: Bin flagged by the multiway method.
        entropy_vector: ``(4,)`` residual-entropy displacement (raw).
        unit_vector: The unit-normalised version used for clustering.
        spe_entropy: Multiway SPE at the bin (0 if not entropy-detected).
        cluster: Cluster index after classification (-1 before/without).
        label: Ground-truth or assigned label when available.
    """

    bin: int
    od: int
    detected_by_volume: bool
    detected_by_entropy: bool
    entropy_vector: np.ndarray
    unit_vector: np.ndarray
    spe_entropy: float = 0.0
    cluster: int = -1
    label: str = ""


@dataclass
class DiagnosisReport:
    """Full output of :meth:`AnomalyDiagnosis.diagnose`.

    Attributes:
        anomalies: All diagnosed events (entropy detections first, then
            volume-only bins as vectorless events).
        volume_bins: Bins flagged by volume metrics.
        entropy_bins: Bins flagged by the multiway entropy method.
        clustering: Clustering of entropy-detected anomalies (None when
            classification was skipped or there were too few points).
        clusters: Per-cluster summaries, largest first.
        meta: Free-form provenance (scenario name, source kind, trace
            path, deployment mode) carried from whichever pipeline mode
            produced the report, so exports from different modes stay
            distinguishable and comparable.
    """

    anomalies: list[DiagnosedAnomaly]
    volume_bins: np.ndarray
    entropy_bins: np.ndarray
    clustering: ClusteringResult | None = None
    clusters: list[ClusterSummary] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def both_bins(self) -> np.ndarray:
        """Bins detected by both volume and entropy (Table 2 overlap)."""
        return np.intersect1d(self.volume_bins, self.entropy_bins)

    @property
    def volume_only_bins(self) -> np.ndarray:
        """Bins detected only by volume metrics."""
        return np.setdiff1d(self.volume_bins, self.entropy_bins)

    @property
    def entropy_only_bins(self) -> np.ndarray:
        """Bins detected only by entropy."""
        return np.setdiff1d(self.entropy_bins, self.volume_bins)

    def counts(self) -> dict[str, int]:
        """Table-2 style counts."""
        return {
            "volume_only": int(self.volume_only_bins.size),
            "entropy_only": int(self.entropy_only_bins.size),
            "both": int(self.both_bins.size),
            "total": int(
                self.volume_only_bins.size
                + self.entropy_only_bins.size
                + self.both_bins.size
            ),
        }


class AnomalyDiagnosis:
    """Configuration + orchestration of the full diagnosis pipeline."""

    def __init__(
        self,
        n_components: int | None = DEFAULT_N_COMPONENTS,
        alpha: float = DEFAULT_ALPHA,
        normalization: str = "variance",
        cluster_algorithm: str = "hierarchical",
        linkage: str = "average",
        n_clusters: int = 10,
        identify: bool = True,
        rng_seed: int = 0,
    ) -> None:
        self.n_components = n_components
        self.alpha = alpha
        self.normalization = normalization
        self.cluster_algorithm = cluster_algorithm
        self.linkage = linkage
        self.n_clusters = n_clusters
        self.identify = identify
        self.rng_seed = rng_seed

    # -- stages ----------------------------------------------------------

    def detect_volume(self, cube: TrafficCube, alpha: float | None = None) -> np.ndarray:
        """Bins flagged by the volume baseline (bytes OR packets)."""
        a = self.alpha if alpha is None else alpha
        flagged: set[int] = set()
        for matrix in (cube.bytes, cube.packets):
            det = SubspaceDetector(n_components=self.n_components, alpha=a)
            result = det.fit_detect(matrix)
            flagged.update(int(b) for b in result.anomalous_bins)
        return np.array(sorted(flagged), dtype=np.int64)

    def detect_entropy(
        self, cube: TrafficCube, alpha: float | None = None
    ) -> list[MultiwayDetection]:
        """Multiway entropy detections with identification."""
        a = self.alpha if alpha is None else alpha
        det = MultiwaySubspaceDetector(
            n_components=self.n_components,
            alpha=a,
            normalization=self.normalization,
            identify=self.identify,
        )
        return det.fit_detect(cube.entropy)

    def cluster(
        self, points: np.ndarray
    ) -> tuple[ClusteringResult, np.ndarray]:
        """Cluster unit vectors; returns (result, size-ordered labels)."""
        k = min(self.n_clusters, len(points))
        if self.cluster_algorithm == "kmeans":
            result = kmeans(points, k, rng=self.rng_seed)
        elif self.cluster_algorithm == "hierarchical":
            result = hierarchical(points, k, linkage=self.linkage)
        else:
            raise ValueError(f"unknown cluster algorithm {self.cluster_algorithm!r}")
        return result, relabel_by_size(result.labels)

    # -- pipeline ----------------------------------------------------------

    def diagnose(
        self,
        cube: TrafficCube,
        classify: bool = True,
        labels_by_bin: dict[int, str] | None = None,
    ) -> DiagnosisReport:
        """Run detection, identification and (optionally) classification.

        Args:
            cube: The traffic cube to diagnose.
            classify: Whether to cluster entropy detections.
            labels_by_bin: Optional ground-truth labels keyed by bin
                index (from a dataset's anomaly schedule); attached to
                diagnosed events and used in cluster summaries.
        """
        volume_bins = self.detect_volume(cube)
        volume_set = set(int(b) for b in volume_bins)
        detections = self.detect_entropy(cube)
        entropy_bins = np.array(sorted(d.bin for d in detections), dtype=np.int64)
        entropy_set = set(int(b) for b in entropy_bins)

        anomalies: list[DiagnosedAnomaly] = []
        vectors = []
        for det in detections:
            vec = det.entropy_vector()
            vectors.append(vec)
            label = labels_by_bin.get(det.bin, "unknown") if labels_by_bin else ""
            anomalies.append(
                DiagnosedAnomaly(
                    bin=det.bin,
                    od=det.primary_od if det.primary_od is not None else -1,
                    detected_by_volume=det.bin in volume_set,
                    detected_by_entropy=True,
                    entropy_vector=vec,
                    unit_vector=np.zeros_like(vec),
                    spe_entropy=det.spe,
                    label=label,
                )
            )
        for b in volume_bins:
            if int(b) in entropy_set:
                continue
            label = labels_by_bin.get(int(b), "unknown") if labels_by_bin else ""
            zero = np.zeros(4)
            anomalies.append(
                DiagnosedAnomaly(
                    bin=int(b),
                    od=-1,
                    detected_by_volume=True,
                    detected_by_entropy=False,
                    entropy_vector=zero,
                    unit_vector=zero,
                    label=label,
                )
            )

        report = DiagnosisReport(
            anomalies=anomalies,
            volume_bins=volume_bins,
            entropy_bins=entropy_bins,
        )

        if classify and len(vectors) >= 2:
            points = unit_normalize(np.vstack(vectors))
            entropy_anoms = [a for a in anomalies if a.detected_by_entropy]
            for anom, unit in zip(entropy_anoms, points):
                anom.unit_vector = unit
            result, ordered = self.cluster(points)
            for anom, c in zip(entropy_anoms, ordered):
                anom.cluster = int(c)
            centers = np.vstack(
                [points[ordered == c].mean(axis=0) for c in range(result.k)]
            )
            relabeled = ClusteringResult(
                labels=ordered,
                centers=centers,
                k=result.k,
                inertia=result.inertia,
                algorithm=result.algorithm,
            )
            member_labels = (
                [a.label or "unknown" for a in entropy_anoms]
                if labels_by_bin is not None
                else None
            )
            report.clustering = relabeled
            report.clusters = summarize_clusters(
                points, relabeled, labels=member_labels
            )
        return report
