"""Online extensions (paper Section 8, "ongoing work").

The paper closes by noting that online extensions of the methods are
being studied.  This module provides two:

* :class:`OnlineMultiwayDetector` — freeze a multiway subspace model
  trained on a historical window and score new entropy observations
  bin-by-bin in O(p·m) per bin, with optional periodic refit from a
  sliding buffer.
* :class:`OnlineClassifier` — incremental nearest-centroid assignment
  of newly detected anomalies to existing clusters, spawning a new
  cluster when an anomaly is farther than ``spawn_distance`` from every
  centroid (so genuinely new anomaly types surface as new clusters
  rather than polluting old ones).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.identification import IdentifiedFlow, identify_flows
from repro.core.multiway import MultiwaySubspaceDetector
from repro.flows.features import N_FEATURES

__all__ = ["OnlineDetection", "OnlineMultiwayDetector", "OnlineClassifier"]


@dataclass
class OnlineDetection:
    """One online detection: bin counter, SPE, and identified flows."""

    bin: int
    spe: float
    flows: list[IdentifiedFlow]


class OnlineMultiwayDetector:
    """Streaming wrapper around the multiway subspace method.

    Usage::

        online = OnlineMultiwayDetector(window=2016)
        online.warm_up(history_tensor)            # (t0, p, 4)
        for new_bin in stream:                    # (p, 4) each
            hit = online.observe(new_bin)
            if hit is not None:
                ...

    ``refit_every`` controls periodic retraining from the sliding
    window (0 disables refits; the subspace stays frozen).
    """

    def __init__(
        self,
        window: int = 2016,
        refit_every: int = 288,
        n_components: int | None = 10,
        alpha: float = 0.999,
        normalization: str = "variance",
        identify: bool = True,
        drift_reset_after: int = 12,
    ) -> None:
        if window < 8:
            raise ValueError("window too small to fit a subspace")
        self.window = window
        self.refit_every = refit_every
        self.alpha = alpha
        self.identify = identify
        # Anomalous bins are excluded from the sliding buffer so attacks
        # cannot poison the normal model — but under genuine concept
        # drift that policy locks up (every bin looks anomalous and the
        # buffer never advances).  After this many *consecutive*
        # detections the detector assumes drift, absorbs the bin, and
        # refits.  Set 0 to disable.
        self.drift_reset_after = drift_reset_after
        self._consecutive_hits = 0
        self._detector = MultiwaySubspaceDetector(
            n_components=n_components,
            alpha=alpha,
            normalization=normalization,
            identify=False,
        )
        self._buffer: np.ndarray | None = None
        self._seen = 0
        self._since_refit = 0
        self._id_cache: dict[int, np.ndarray] = {}

    @property
    def is_warm(self) -> bool:
        """Whether the detector has been fitted."""
        return self._detector.model is not None

    def warm_up(self, history: np.ndarray) -> None:
        """Fit on a historical tensor and seed the sliding buffer."""
        history = np.asarray(history, dtype=np.float64)
        if history.ndim != 3:
            raise ValueError("history must be (t, p, k)")
        if history.shape[0] < 8:
            raise ValueError("history too short")
        self._buffer = history[-self.window :].copy()
        self._detector.fit(self._buffer)
        self._id_cache.clear()
        self._seen = history.shape[0]
        self._since_refit = 0

    def observe(self, bin_entropy: np.ndarray) -> OnlineDetection | None:
        """Score one new bin; returns a detection or None.

        The new observation also enters the sliding buffer, and a refit
        happens every ``refit_every`` clean bins (anomalous bins are
        *not* added to the buffer, so detected anomalies do not poison
        the normal subspace).
        """
        if not self.is_warm or self._buffer is None:
            raise RuntimeError("call warm_up() first")
        obs = np.asarray(bin_entropy, dtype=np.float64)
        if obs.shape != self._buffer.shape[1:]:
            raise ValueError(
                f"observation shape {obs.shape} != {self._buffer.shape[1:]}"
            )
        tensor = obs[None, :, :]
        result = self._detector.score(tensor)
        bin_index = self._seen
        self._seen += 1
        spe = float(result.spe[0])
        if spe > result.threshold:
            self._consecutive_hits += 1
            flows: list[IdentifiedFlow] = []
            if self.identify:
                model = self._detector.model
                Hn = self._detector._normalize(tensor)
                flows = identify_flows(
                    Hn[0] - model.pca.mean,
                    model.normal_basis,
                    self._detector.n_od_flows,
                    threshold=result.threshold,
                    cache=self._id_cache,
                )
            if (
                self.drift_reset_after
                and self._consecutive_hits >= self.drift_reset_after
            ):
                # Concept drift, not a burst of anomalies: absorb and refit.
                self._absorb_and_maybe_refit(tensor, force_refit=True)
                self._consecutive_hits = 0
            return OnlineDetection(bin=bin_index, spe=spe, flows=flows)
        # Clean bin: slide the buffer and maybe refit.
        self._consecutive_hits = 0
        self._absorb_and_maybe_refit(tensor)
        return None

    def _absorb_and_maybe_refit(
        self, tensor: np.ndarray, force_refit: bool = False
    ) -> None:
        self._buffer = np.concatenate([self._buffer[1:], tensor], axis=0)
        self._since_refit += 1
        due = self.refit_every and self._since_refit >= self.refit_every
        if force_refit or due:
            self._detector.fit(self._buffer)
            self._id_cache.clear()
            self._since_refit = 0


class OnlineClassifier:
    """Incremental nearest-centroid classification of anomaly vectors.

    Seeded with the centroids of an offline clustering; each new
    unit-normalised anomaly vector is assigned to the nearest centroid
    (running-mean update) unless it is farther than ``spawn_distance``
    from all of them, in which case it founds a new cluster.
    """

    def __init__(self, centroids: np.ndarray, spawn_distance: float = 0.7) -> None:
        centroids = np.asarray(centroids, dtype=np.float64)
        if centroids.ndim != 2 or centroids.shape[1] != N_FEATURES:
            raise ValueError(f"centroids must be (k, {N_FEATURES})")
        self._centroids = [c.copy() for c in centroids]
        self._counts = [1] * len(self._centroids)
        self.spawn_distance = spawn_distance

    @property
    def n_clusters(self) -> int:
        """Current number of clusters (can grow over time)."""
        return len(self._centroids)

    @property
    def centroids(self) -> np.ndarray:
        """Current centroids, ``(k, 4)``."""
        return np.vstack(self._centroids)

    def assign(self, vector: np.ndarray, update: bool = True) -> int:
        """Assign a vector to a cluster (possibly a brand-new one).

        Args:
            vector: ``(4,)`` unit-normalised entropy vector.
            update: When True (default) the matched centroid moves
                toward the vector by the running-mean rule.

        Returns:
            The assigned cluster index.
        """
        v = np.asarray(vector, dtype=np.float64)
        if v.shape != (N_FEATURES,):
            raise ValueError(f"vector must be a {N_FEATURES}-vector")
        dists = [float(np.linalg.norm(v - c)) for c in self._centroids]
        best = int(np.argmin(dists))
        if dists[best] > self.spawn_distance:
            self._centroids.append(v.copy())
            self._counts.append(1)
            return len(self._centroids) - 1
        if update:
            n = self._counts[best] + 1
            self._centroids[best] += (v - self._centroids[best]) / n
            self._counts[best] = n
        return best
