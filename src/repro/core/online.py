"""Online extensions (paper Section 8, "ongoing work").

The paper closes by noting that online extensions of the methods are
being studied.  This module provides two:

* :class:`OnlineMultiwayDetector` — freeze a multiway subspace model
  trained on a historical window and score new entropy observations
  bin-by-bin in O(p·m) per bin, with optional periodic refit from a
  sliding buffer.
* :class:`OnlineVolumeDetector` — the same frozen-model streaming
  treatment for a single ``(t, p)`` volume matrix (bytes or packets),
  i.e. the online form of the volume baseline (Lakhina et al. 2004
  [24]) the paper contrasts entropy detections against.
* :class:`OnlineClassifier` — incremental nearest-centroid assignment
  of newly detected anomalies to existing clusters, spawning a new
  cluster when an anomaly is farther than ``spawn_distance`` from every
  centroid (so genuinely new anomaly types surface as new clusters
  rather than polluting old ones).

Both detectors refit from a sliding buffer of clean observations:
volume and entropy ensembles are diurnally nonstationary, so a model
frozen forever drifts out of its own threshold (every bin starts to
flag).  Detected bins are excluded from the buffer so anomalies cannot
poison the normal model, with a drift-reset escape hatch for genuine
regime changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.identification import IdentifiedFlow, identify_flows
from repro.core.multiway import MultiwaySubspaceDetector
from repro.core.subspace import SubspaceModel
from repro.flows.features import N_FEATURES

__all__ = [
    "OnlineDetection",
    "OnlineMultiwayDetector",
    "OnlineVolumeDetector",
    "OnlineClassifier",
]


@dataclass
class OnlineDetection:
    """One online detection: bin counter, SPE, and identified flows."""

    bin: int
    spe: float
    flows: list[IdentifiedFlow]


class OnlineMultiwayDetector:
    """Streaming wrapper around the multiway subspace method.

    Usage::

        online = OnlineMultiwayDetector(window=2016)
        online.warm_up(history_tensor)            # (t0, p, 4)
        for new_bin in stream:                    # (p, 4) each
            hit = online.observe(new_bin)
            if hit is not None:
                ...

    ``refit_every`` controls periodic retraining from the sliding
    window (0 disables refits; the subspace stays frozen).
    """

    def __init__(
        self,
        window: int = 2016,
        refit_every: int = 288,
        n_components: int | None = 10,
        alpha: float = 0.999,
        normalization: str = "variance",
        identify: bool = True,
        drift_reset_after: int = 12,
        calibration_margin: float = 0.0,
    ) -> None:
        if window < 8:
            raise ValueError("window too small to fit a subspace")
        self.window = window
        self.refit_every = refit_every
        self.alpha = alpha
        self.identify = identify
        # The Jackson-Mudholkar Q_alpha underestimates out-of-sample SPE
        # when the window is short relative to the dimension (the PCA
        # partially fits the noise).  A positive margin floors the
        # threshold at margin * the maximum SPE the fitted model assigns
        # to its own (clean) window — an empirical everything-in-window-
        # is-normal calibration.  0 disables it (pure Q_alpha, the
        # paper's threshold).
        self.calibration_margin = calibration_margin
        self._empirical_threshold = 0.0
        # Anomalous bins are excluded from the sliding buffer so attacks
        # cannot poison the normal model — but under genuine concept
        # drift that policy locks up (every bin looks anomalous and the
        # buffer never advances).  After this many *consecutive*
        # detections the detector assumes drift, absorbs the bin, and
        # refits.  Set 0 to disable.
        self.drift_reset_after = drift_reset_after
        self._consecutive_hits = 0
        self._detector = MultiwaySubspaceDetector(
            n_components=n_components,
            alpha=alpha,
            normalization=normalization,
            identify=False,
        )
        self._buffer: np.ndarray | None = None
        self._seen = 0
        self._since_refit = 0
        self._id_cache: dict[int, np.ndarray] = {}

    @property
    def is_warm(self) -> bool:
        """Whether the detector has been fitted."""
        return self._detector.model is not None

    @property
    def threshold(self) -> float:
        """Current detection threshold (Q_alpha, calibration-floored)."""
        if self._detector.model is None:
            raise RuntimeError("call warm_up() first")
        return max(
            self._detector.model.threshold(self.alpha), self._empirical_threshold
        )

    def warm_up(self, history: np.ndarray) -> None:
        """Fit on a historical tensor and seed the sliding buffer."""
        history = np.asarray(history, dtype=np.float64)
        if history.ndim != 3:
            raise ValueError("history must be (t, p, k)")
        if history.shape[0] < 8:
            raise ValueError("history too short")
        self._buffer = history[-self.window :].copy()
        self._detector.fit(self._buffer)
        self._calibrate()
        self._id_cache.clear()
        self._seen = history.shape[0]
        self._since_refit = 0

    def _calibrate(self) -> None:
        """Empirical threshold floor: margin * max in-window SPE."""
        self._empirical_threshold = 0.0
        if not self.calibration_margin:
            return
        window_spe = self._detector.score(self._buffer).spe
        self._empirical_threshold = float(self.calibration_margin * window_spe.max())

    def observe(self, bin_entropy: np.ndarray) -> OnlineDetection | None:
        """Score one new bin; returns a detection or None.

        The new observation also enters the sliding buffer, and a refit
        happens every ``refit_every`` clean bins (anomalous bins are
        *not* added to the buffer, so detected anomalies do not poison
        the normal subspace).
        """
        if not self.is_warm or self._buffer is None:
            raise RuntimeError("call warm_up() first")
        obs = np.asarray(bin_entropy, dtype=np.float64)
        if obs.shape != self._buffer.shape[1:]:
            raise ValueError(
                f"observation shape {obs.shape} != {self._buffer.shape[1:]}"
            )
        tensor = obs[None, :, :]
        result = self._detector.score(tensor)
        threshold = max(result.threshold, self._empirical_threshold)
        bin_index = self._seen
        self._seen += 1
        spe = float(result.spe[0])
        if spe > threshold:
            self._consecutive_hits += 1
            flows: list[IdentifiedFlow] = []
            if self.identify:
                model = self._detector.model
                Hn = self._detector._normalize(tensor)
                flows = identify_flows(
                    Hn[0] - model.pca.mean,
                    model.normal_basis,
                    self._detector.n_od_flows,
                    threshold=threshold,
                    cache=self._id_cache,
                )
            if (
                self.drift_reset_after
                and self._consecutive_hits >= self.drift_reset_after
            ):
                # Concept drift, not a burst of anomalies: absorb and refit.
                self._absorb_and_maybe_refit(tensor, force_refit=True)
                self._consecutive_hits = 0
            return OnlineDetection(bin=bin_index, spe=spe, flows=flows)
        # Clean bin: slide the buffer and maybe refit.
        self._consecutive_hits = 0
        self._absorb_and_maybe_refit(tensor)
        return None

    def _absorb_and_maybe_refit(
        self, tensor: np.ndarray, force_refit: bool = False
    ) -> None:
        self._buffer = np.concatenate([self._buffer[1:], tensor], axis=0)
        self._since_refit += 1
        due = self.refit_every and self._since_refit >= self.refit_every
        if force_refit or due:
            self._detector.fit(self._buffer)
            self._calibrate()
            self._id_cache.clear()
            self._since_refit = 0


class OnlineVolumeDetector:
    """Streaming subspace detection on one ``(t, p)`` volume matrix.

    The online counterpart of the volume baseline
    (:meth:`repro.core.detector.AnomalyDiagnosis.detect_volume` runs
    one of these per metric, batch-fitted).  Semantics mirror
    :class:`OnlineMultiwayDetector`: frozen-model scoring in O(p*m) per
    bin, clean bins enter a sliding buffer, periodic refit, and a
    consecutive-detection drift reset.

    Volume ensembles are much less stationary than entropy ensembles —
    diurnal load both shifts the mean and (Poisson-like) inflates the
    noise as rates rise — so a model frozen on a sub-diurnal window
    flags every later bin.  Three optional stabilisers address this; by
    default all are off, which makes the detector score *exactly* like
    the batch baseline on in-window data:

    * ``transform="sqrt"`` — variance-stabilise counts before PCA.
    * ``detrend="holt"`` — score residuals against a per-OD Holt
      (level + trend) one-step forecast instead of raw rows.
    * ``calibration_margin > 0`` — floor the threshold at
      margin * max SPE of a held-out warm-up tail (see
      :class:`OnlineMultiwayDetector.calibration_margin`).
    """

    def __init__(
        self,
        window: int = 2016,
        refit_every: int = 288,
        n_components: int | None = 10,
        alpha: float = 0.999,
        drift_reset_after: int = 12,
        transform: str = "none",
        detrend: str = "none",
        holt_level: float = 0.4,
        holt_trend: float = 0.2,
        calibration_margin: float = 0.0,
    ) -> None:
        if window < 8:
            raise ValueError("window too small to fit a subspace")
        if transform not in ("none", "sqrt"):
            raise ValueError(f"unknown transform {transform!r}")
        if detrend not in ("none", "holt"):
            raise ValueError(f"unknown detrend {detrend!r}")
        self.window = window
        self.refit_every = refit_every
        self.n_components = n_components
        self.alpha = alpha
        self.drift_reset_after = drift_reset_after
        self.transform = transform
        self.detrend = detrend
        self.holt_level = holt_level
        self.holt_trend = holt_trend
        self.calibration_margin = calibration_margin
        self._consecutive_hits = 0
        self._model: SubspaceModel | None = None
        self._threshold = 0.0
        self._buffer: np.ndarray | None = None  # residual-space rows
        self._since_refit = 0
        self._level: np.ndarray | None = None
        self._trend: np.ndarray | None = None
        self._residual_scale: np.ndarray | None = None

    @property
    def is_warm(self) -> bool:
        """Whether the detector has been fitted."""
        return self._model is not None

    @property
    def threshold(self) -> float:
        """Current detection threshold (Q_alpha, calibration-floored)."""
        if self._model is None:
            raise RuntimeError("call warm_up() first")
        return self._threshold

    def _transform(self, rows: np.ndarray) -> np.ndarray:
        if self.transform == "sqrt":
            return np.sqrt(np.maximum(rows, 0.0))
        return rows

    def _holt_update(self, row: np.ndarray) -> np.ndarray:
        """One-step Holt forecast residual; advances the state.

        The state update is *winsorized*: each OD's residual is clipped
        at 4 standard deviations (of the window's forecast residuals)
        before it enters the level/trend estimate.  An attack spike on
        one OD therefore barely moves that OD's forecast, while the
        other ODs keep tracking diurnal curvature — without this, one
        detection freezes the forecast and every following bin deviates
        further (a runaway detection cascade).
        """
        prediction = self._level + self._trend
        residual = row - prediction
        update_residual = residual
        if self._residual_scale is not None:
            bound = 4.0 * self._residual_scale
            update_residual = np.clip(residual, -bound, bound)
        effective = prediction + update_residual
        new_level = self.holt_level * effective + (1 - self.holt_level) * prediction
        self._trend = (
            self.holt_trend * (new_level - self._level)
            + (1 - self.holt_trend) * self._trend
        )
        self._level = new_level
        return residual

    def _holt_batch(self, rows: np.ndarray) -> np.ndarray:
        """Whole-history Holt forecast residuals as one batched recurrence.

        During warm-up no residual scale exists yet, so the Holt update
        is unwinsorized and therefore *linear*: the residual sequence is
        the output of a fixed second-order IIR filter of the input,

            r_t - (2 - a - ab) r_{t-1} + (1 - a) r_{t-2}
                = x_t - 2 x_{t-1} + x_{t-2}

        with level gain ``a`` and trend gain ``b``.  One
        :func:`scipy.signal.lfilter` call runs that recurrence over
        every OD column at once — replacing the per-row Python loop —
        and the closing level/trend state is recovered from the last
        two one-step predictions, so subsequent :meth:`observe` calls
        continue exactly where the loop would have left off.  The
        initial state (level = first row, zero trend) corresponds to a
        constant pre-history, i.e. zero past residuals.
        """
        from scipy.signal import lfilter

        a, b = self.holt_level, self.holt_trend
        x0 = rows[0]
        den = np.array([1.0, -(2.0 - a - a * b), 1.0 - a])
        num = np.array([1.0, -2.0, 1.0])
        # Direct-form II transposed initial state for past inputs
        # [x0, x0] and past outputs [0, 0] (the constant pre-history).
        zi = np.stack([-x0, x0])
        # One trailing zero-input step yields the next prediction
        # (r = 0 - p), from which the final level/trend state follows.
        fed = np.vstack([rows[1:], np.zeros_like(x0)[None, :]])
        out, _ = lfilter(num, den, fed, axis=0, zi=zi)
        residuals = out[:-1]
        prediction_next = -out[-1]
        prediction_last = rows[-1] - residuals[-1]
        self._level = a * rows[-1] + (1.0 - a) * prediction_last
        self._trend = prediction_next - self._level
        return residuals

    def warm_up(self, history: np.ndarray) -> None:
        """Fit on a historical ``(t, p)`` matrix and seed the buffer."""
        history = np.asarray(history, dtype=np.float64)
        if history.ndim != 2:
            raise ValueError("history must be (t, p)")
        if history.shape[0] < 8:
            raise ValueError("history too short")
        rows = self._transform(history)
        if self.detrend == "holt":
            residuals = self._holt_batch(rows)
        else:
            residuals = rows
        self._buffer = residuals[-self.window :].copy()
        self._fit()

    def _fit(self) -> None:
        self._model = SubspaceModel.fit(self._buffer, n_components=self.n_components)
        self._threshold = self._model.threshold(self.alpha)
        if self.calibration_margin:
            window_spe = self._model.spe(self._buffer)
            self._threshold = max(
                self._threshold, float(self.calibration_margin * window_spe.max())
            )
        self._residual_scale = np.maximum(self._buffer.std(axis=0), 1e-9)
        self._since_refit = 0

    def observe(self, row: np.ndarray) -> tuple[bool, float]:
        """Score one new ``(p,)`` volume row; returns (detected, spe).

        Detected rows are excluded from the refit buffer and enter the
        Holt forecast only winsorized (see :meth:`_holt_update`), until
        ``drift_reset_after`` consecutive detections force the drift
        interpretation (absorb + refit).
        """
        if self._model is None or self._buffer is None:
            raise RuntimeError("call warm_up() first")
        row = np.asarray(row, dtype=np.float64)
        if row.shape != self._buffer.shape[1:]:
            raise ValueError(f"row shape {row.shape} != {self._buffer.shape[1:]}")
        transformed = self._transform(row)
        if self.detrend == "holt":
            residual = self._holt_update(transformed)
        else:
            residual = transformed
        spe = float(self._model.spe(residual)[0])
        detected = spe > self._threshold
        if detected:
            self._consecutive_hits += 1
            if self.drift_reset_after and self._consecutive_hits >= self.drift_reset_after:
                self._absorb(residual, force_refit=True)
                self._consecutive_hits = 0
        else:
            self._consecutive_hits = 0
            self._absorb(residual)
        return detected, spe

    def _absorb(self, residual: np.ndarray, force_refit: bool = False) -> None:
        self._buffer = np.concatenate([self._buffer[1:], residual[None, :]], axis=0)
        self._since_refit += 1
        if force_refit or (self.refit_every and self._since_refit >= self.refit_every):
            self._fit()


class OnlineClassifier:
    """Incremental nearest-centroid classification of anomaly vectors.

    Seeded with the centroids of an offline clustering; each new
    unit-normalised anomaly vector is assigned to the nearest centroid
    (running-mean update) unless it is farther than ``spawn_distance``
    from all of them, in which case it founds a new cluster.
    """

    def __init__(
        self, centroids: np.ndarray | None = None, spawn_distance: float = 0.7
    ) -> None:
        if centroids is None:
            centroids = np.zeros((0, N_FEATURES))
        centroids = np.asarray(centroids, dtype=np.float64)
        if centroids.ndim != 2 or centroids.shape[1] != N_FEATURES:
            raise ValueError(f"centroids must be (k, {N_FEATURES})")
        self._centroids = [c.copy() for c in centroids]
        self._counts = [1] * len(self._centroids)
        self.spawn_distance = spawn_distance

    @property
    def n_clusters(self) -> int:
        """Current number of clusters (can grow over time)."""
        return len(self._centroids)

    @property
    def centroids(self) -> np.ndarray:
        """Current centroids, ``(k, 4)``."""
        if not self._centroids:
            return np.zeros((0, N_FEATURES))
        return np.vstack(self._centroids)

    def assign(self, vector: np.ndarray, update: bool = True) -> int:
        """Assign a vector to a cluster (possibly a brand-new one).

        Args:
            vector: ``(4,)`` unit-normalised entropy vector.
            update: When True (default) the matched centroid moves
                toward the vector by the running-mean rule.

        Returns:
            The assigned cluster index.
        """
        v = np.asarray(vector, dtype=np.float64)
        if v.shape != (N_FEATURES,):
            raise ValueError(f"vector must be a {N_FEATURES}-vector")
        if not self._centroids:
            # Cold start: the first anomaly founds the first cluster.
            self._centroids.append(v.copy())
            self._counts.append(1)
            return 0
        dists = np.linalg.norm(np.vstack(self._centroids) - v, axis=1)
        best = int(np.argmin(dists))
        if dists[best] > self.spawn_distance:
            self._centroids.append(v.copy())
            self._counts.append(1)
            return len(self._centroids) - 1
        if update:
            n = self._counts[best] + 1
            self._centroids[best] += (v - self._centroids[best]) / n
            self._counts[best] = n
        return best
