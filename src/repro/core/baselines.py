"""Classical volume-anomaly detectors from the paper's related work.

Section 2 situates the subspace method against earlier volume-based
schemes: exponential smoothing / Holt-Winters forecasting ("aberrant
behavior detection", Brutlag, LISA 2000 [4]) and signal-analysis /
wavelet approaches (Barford et al., IMW 2002 [3]).  A credible release
of the paper's system ships those baselines so users can compare; the
``experiments/baseline_comparison.py`` ablation does exactly that.

All detectors consume a single timeseries (one OD flow's packet or
byte counts) and flag bins; :func:`detect_matrix` unions flags across
OD flows for a network-wide verdict comparable to the subspace
detectors' output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BaselineResult",
    "EWMADetector",
    "HoltWintersDetector",
    "WaveletVarianceDetector",
    "detect_matrix",
]


@dataclass
class BaselineResult:
    """Flags and diagnostics from a baseline detector on one series."""

    flags: np.ndarray          # (t,) bool
    score: np.ndarray          # (t,) standardised deviation
    threshold: float

    @property
    def anomalous_bins(self) -> np.ndarray:
        """Indices of flagged bins."""
        return np.flatnonzero(self.flags)


class EWMADetector:
    """Exponentially-weighted moving average residual detector.

    Forecast ``s_t = a*x_{t-1} + (1-a)*s_{t-1}``; the residual
    ``x_t - s_t`` is standardised by an EWMA of its absolute value and
    flagged beyond ``n_sigmas``.  The simplest thing an operator
    deploys; good at step changes, blind to slow drifts and structure.
    """

    def __init__(self, alpha: float = 0.2, n_sigmas: float = 5.0) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if n_sigmas <= 0:
            raise ValueError("n_sigmas must be positive")
        self.alpha = alpha
        self.n_sigmas = n_sigmas

    def detect(self, series: np.ndarray) -> BaselineResult:
        """Run the detector over one timeseries."""
        x = np.asarray(series, dtype=np.float64)
        if x.ndim != 1 or x.size < 3:
            raise ValueError("series must be 1-D with >= 3 points")
        level = x[0]
        scale = max(abs(x[0]) * 0.1, 1e-9)
        score = np.zeros_like(x)
        for t in range(1, x.size):
            residual = x[t] - level
            score[t] = residual / scale
            # Update scale first with clipped residual so a single huge
            # anomaly does not inflate the scale and mask successors.
            clipped = min(abs(residual), self.n_sigmas * scale)
            scale = (1 - self.alpha) * scale + self.alpha * max(clipped, 1e-9)
            level = (1 - self.alpha) * level + self.alpha * x[t]
        flags = np.abs(score) > self.n_sigmas
        return BaselineResult(flags=flags, score=score, threshold=self.n_sigmas)


class HoltWintersDetector:
    """Holt-Winters (triple exponential smoothing) residual detector.

    Level + trend + additive seasonality with the paper-era defaults
    (Brutlag's aberrant-behaviour detection for network monitoring):
    a confidence band tracks the smoothed absolute deviation per
    seasonal slot and observations outside ``n_sigmas`` bands flag.
    """

    def __init__(
        self,
        season: int = 288,
        alpha: float = 0.1,
        beta: float = 0.01,
        gamma: float = 0.1,
        n_sigmas: float = 4.0,
    ) -> None:
        if season < 2:
            raise ValueError("season must be >= 2")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0 < value < 1:
                raise ValueError(f"{name} must be in (0, 1)")
        self.season = season
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.n_sigmas = n_sigmas

    def detect(self, series: np.ndarray) -> BaselineResult:
        """Run the detector; the first season is warm-up (never flagged)."""
        x = np.asarray(series, dtype=np.float64)
        m = self.season
        if x.ndim != 1 or x.size < 2 * m:
            raise ValueError("series must cover at least two seasons")
        level = x[:m].mean()
        trend = (x[m : 2 * m].mean() - x[:m].mean()) / m
        seasonal = x[:m] - level
        deviation = np.full(m, max(np.abs(x[:m] - level).mean(), 1e-9))

        score = np.zeros_like(x)
        for t in range(m, x.size):
            slot = t % m
            forecast = level + trend + seasonal[slot]
            residual = x[t] - forecast
            score[t] = residual / deviation[slot]
            clipped = min(abs(residual), self.n_sigmas * deviation[slot])
            deviation[slot] = (
                self.gamma * max(clipped, 1e-9) + (1 - self.gamma) * deviation[slot]
            )
            new_level = self.alpha * (x[t] - seasonal[slot]) + (1 - self.alpha) * (
                level + trend
            )
            trend = self.beta * (new_level - level) + (1 - self.beta) * trend
            seasonal[slot] = self.gamma * (x[t] - new_level) + (1 - self.gamma) * seasonal[slot]
            level = new_level
        flags = np.abs(score) > self.n_sigmas
        return BaselineResult(flags=flags, score=score, threshold=self.n_sigmas)


class WaveletVarianceDetector:
    """Multiscale (Haar wavelet) deviation detector.

    A light-weight stand-in for the signal-analysis approach of [3]:
    the series is decomposed into Haar detail coefficients at several
    scales; per-scale coefficient energy is standardised (median/MAD)
    and a bin flags when its combined detail energy across scales is an
    outlier.  Good at localised spikes at any of the analysed scales.
    """

    def __init__(self, levels: int = 3, n_sigmas: float = 6.0) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = levels
        self.n_sigmas = n_sigmas

    @staticmethod
    def _haar_details(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        even = x[0::2][: len(x) // 2]
        odd = x[1::2][: len(x) // 2]
        approx = (even + odd) / np.sqrt(2.0)
        detail = (even - odd) / np.sqrt(2.0)
        return approx, detail

    def detect(self, series: np.ndarray) -> BaselineResult:
        """Run the detector over one timeseries."""
        x = np.asarray(series, dtype=np.float64)
        if x.ndim != 1 or x.size < 2 ** (self.levels + 1):
            raise ValueError("series too short for the requested levels")
        t = x.size
        combined = np.zeros(t)
        approx = x.copy()
        for level in range(1, self.levels + 1):
            approx, detail = self._haar_details(approx)
            if detail.size < 4:
                break
            med = np.median(detail)
            mad = np.median(np.abs(detail - med)) + 1e-12
            z = np.abs(detail - med) / (1.4826 * mad)
            # Spread each coefficient's z back over the 2^level bins it
            # covers, keeping the max across scales per bin.
            span = 2 ** level
            for i, zi in enumerate(z):
                lo = i * span
                hi = min(lo + span, t)
                combined[lo:hi] = np.maximum(combined[lo:hi], zi)
        flags = combined > self.n_sigmas
        return BaselineResult(flags=flags, score=combined, threshold=self.n_sigmas)


def detect_matrix(detector, matrix: np.ndarray) -> np.ndarray:
    """Union a per-series baseline detector across OD flows.

    Args:
        detector: Any object with ``detect(series) -> BaselineResult``.
        matrix: ``(t, p)`` volume matrix (one column per OD flow).

    Returns:
        ``(t,)`` bool array: bin flagged when any OD flow flags it.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    flags = np.zeros(matrix.shape[0], dtype=bool)
    for j in range(matrix.shape[1]):
        flags |= detector.detect(matrix[:, j]).flags
    return flags
