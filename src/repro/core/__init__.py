"""Core methods: entropy, subspace detection, identification, classification."""

from repro.core.classify import (
    ANOMALY_LABELS,
    ClusterSummary,
    label_statistics,
    plurality_label,
    signature_label,
    signature_string,
    summarize_clusters,
    unit_normalize,
)
from repro.core.clustering import (
    ClusteringResult,
    agreement_rate,
    choose_k_curves,
    cluster_variation,
    hierarchical,
    kmeans,
    pairwise_distances,
    relabel_by_size,
)
from repro.core.baselines import (
    EWMADetector,
    HoltWintersDetector,
    WaveletVarianceDetector,
    detect_matrix,
)
from repro.core.detector import AnomalyDiagnosis, DiagnosedAnomaly, DiagnosisReport
from repro.core.dispersion import (
    DISPERSION_METRICS,
    gini_coefficient,
    renyi_entropy,
    simpson_index,
    top_k_share,
)
from repro.core.metrics import ConfusionCounts, alpha_sweep, auc_of_sweep, score_detections
from repro.core.entropy import (
    entropy_rows,
    max_entropy,
    normalized_entropy,
    sample_entropy,
)
from repro.core.identification import IdentifiedFlow, identify_flows, theta_columns
from repro.core.multiway import (
    MultiwayDetection,
    MultiwaySubspaceDetector,
    fold_row,
    normalize_unit_energy,
    unfold,
)
from repro.core.online import (
    OnlineClassifier,
    OnlineDetection,
    OnlineMultiwayDetector,
    OnlineVolumeDetector,
)
from repro.core.subspace import (
    DetectionResult,
    PCAModel,
    SubspaceDetector,
    SubspaceModel,
    q_threshold,
)

__all__ = [
    "ANOMALY_LABELS",
    "ClusterSummary",
    "label_statistics",
    "plurality_label",
    "signature_label",
    "signature_string",
    "summarize_clusters",
    "unit_normalize",
    "ClusteringResult",
    "agreement_rate",
    "choose_k_curves",
    "cluster_variation",
    "hierarchical",
    "kmeans",
    "pairwise_distances",
    "relabel_by_size",
    "EWMADetector",
    "HoltWintersDetector",
    "WaveletVarianceDetector",
    "detect_matrix",
    "AnomalyDiagnosis",
    "DiagnosedAnomaly",
    "DiagnosisReport",
    "DISPERSION_METRICS",
    "gini_coefficient",
    "renyi_entropy",
    "simpson_index",
    "top_k_share",
    "ConfusionCounts",
    "alpha_sweep",
    "auc_of_sweep",
    "score_detections",
    "entropy_rows",
    "max_entropy",
    "normalized_entropy",
    "sample_entropy",
    "IdentifiedFlow",
    "identify_flows",
    "theta_columns",
    "MultiwayDetection",
    "MultiwaySubspaceDetector",
    "fold_row",
    "normalize_unit_energy",
    "unfold",
    "OnlineClassifier",
    "OnlineDetection",
    "OnlineMultiwayDetector",
    "OnlineVolumeDetector",
    "DetectionResult",
    "PCAModel",
    "SubspaceDetector",
    "SubspaceModel",
    "q_threshold",
]
