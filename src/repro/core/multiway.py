"""The multiway subspace method (paper Section 4.2).

The entropy data form a three-way tensor ``H(t, p, k)`` — time x OD
flow x feature.  The multiway method:

1. **unfolds** the tensor into a single ``t x 4p`` matrix by arranging
   the four ``t x p`` feature submatrices side by side
   (``[H_srcIP | H_srcPort | H_dstIP | H_dstPort]``),
2. **normalises** each feature submatrix to unit energy so no one
   feature dominates, and
3. applies the standard subspace method to the merged matrix.

Detections are timepoints whose residual ``||h_tilde||^2`` exceeds the
Q threshold; each detection carries the full 4p-dimensional residual
vector, which identification (:mod:`repro.core.identification`) folds
back into per-OD-flow, per-feature entropy displacements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.identification import IdentifiedFlow, identify_flows
from repro.core.subspace import (
    DEFAULT_ALPHA,
    DEFAULT_N_COMPONENTS,
    DetectionResult,
    SubspaceModel,
)
from repro.flows.features import N_FEATURES

__all__ = [
    "unfold",
    "fold_row",
    "normalize_unit_energy",
    "MultiwayDetection",
    "MultiwaySubspaceDetector",
]


def unfold(tensor: np.ndarray) -> np.ndarray:
    """Unfold ``(t, p, k)`` into ``(t, k*p)`` with feature-major blocks.

    Column layout matches the paper: columns ``[0, p)`` are feature 0
    (srcIP) for all p OD flows, columns ``[p, 2p)`` feature 1 (srcPort),
    and so on.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim != 3:
        raise ValueError("expected a 3-way tensor (t, p, k)")
    t, p, k = tensor.shape
    # transpose to (t, k, p) then flatten the last two axes
    return tensor.transpose(0, 2, 1).reshape(t, k * p)


def fold_row(row: np.ndarray, n_od_flows: int) -> np.ndarray:
    """Reshape one unfolded ``(k*p,)`` row back to ``(p, k)``.

    ``fold_row(h, p)[od, k]`` is the feature-``k`` entry of OD flow
    ``od`` — the inverse of :func:`unfold` for a single timepoint.
    """
    row = np.asarray(row, dtype=np.float64)
    if row.ndim != 1 or row.size % n_od_flows:
        raise ValueError("row length must be a multiple of n_od_flows")
    k = row.size // n_od_flows
    return row.reshape(k, n_od_flows).T


def normalize_unit_energy(
    H: np.ndarray, n_od_flows: int, mode: str = "variance"
) -> tuple[np.ndarray, np.ndarray]:
    """Scale each feature submatrix of an unfolded matrix to unit energy.

    Args:
        H: ``(t, k*p)`` unfolded matrix.
        n_od_flows: Block width p.
        mode: ``"variance"`` (default) scales each block by the Frobenius
            norm of its *mean-centred* values — every feature then
            contributes equal total variance to the PCA, which is the
            paper's stated intent ("so that no one feature dominates").
            ``"raw"`` scales by the Frobenius norm of the raw block, the
            literal reading of "total energy".

    Returns:
        ``(normalized, scales)`` where ``scales`` has one entry per
        feature block (the divisor used); zero-energy blocks get scale 1.
    """
    H = np.asarray(H, dtype=np.float64)
    if H.ndim != 2 or H.shape[1] % n_od_flows:
        raise ValueError("H must be (t, k*p) with p = n_od_flows")
    k = H.shape[1] // n_od_flows
    out = H.copy()
    scales = np.ones(k)
    for j in range(k):
        block = out[:, j * n_od_flows : (j + 1) * n_od_flows]
        if mode == "variance":
            energy = np.linalg.norm(block - block.mean(axis=0))
        elif mode == "raw":
            energy = np.linalg.norm(block)
        else:
            raise ValueError(f"unknown normalization mode {mode!r}")
        if energy > 0:
            block /= energy
            scales[j] = energy
    return out, scales


@dataclass
class MultiwayDetection:
    """A detected anomalous timepoint with its identified OD flows.

    Attributes:
        bin: Time-bin index.
        spe: Squared prediction error at that bin.
        residual: Full ``(4p,)`` residual vector ``h_tilde``.
        flows: Identified flows (possibly several), each with its
            4-vector of per-feature entropy displacement ``f_k``.
    """

    bin: int
    spe: float
    residual: np.ndarray
    flows: list[IdentifiedFlow] = field(default_factory=list)

    @property
    def primary_od(self) -> int | None:
        """OD flow of the strongest identified component."""
        return self.flows[0].od if self.flows else None

    def entropy_vector(self, od: int | None = None) -> np.ndarray:
        """Per-feature residual-entropy 4-vector for classification.

        Uses the identified displacement ``f_k`` of the given (or
        primary) flow; falls back to the residual folded onto the
        strongest flow when identification found nothing.
        """
        if self.flows:
            if od is None:
                return self.flows[0].displacement
            for flow in self.flows:
                if flow.od == od:
                    return flow.displacement
            raise KeyError(f"OD flow {od} was not identified in this detection")
        folded = fold_row(self.residual, self.residual.size // N_FEATURES)
        strongest = int(np.argmax((folded ** 2).sum(axis=1)))
        return folded[strongest]


class MultiwaySubspaceDetector:
    """End-to-end multiway detection on an entropy tensor.

    Typical use::

        det = MultiwaySubspaceDetector().fit(cube.entropy)
        detections = det.detect(cube.entropy, alpha=0.999)

    The fitted state (normalisation scales + subspace model) can score
    tensors other than the one fitted on — the fixed-subspace mode used
    by the injection sweeps.
    """

    def __init__(
        self,
        n_components: int | None = DEFAULT_N_COMPONENTS,
        variance_threshold: float | None = None,
        alpha: float = DEFAULT_ALPHA,
        normalization: str = "variance",
        identify: bool = True,
        max_identified_flows: int = 5,
    ) -> None:
        self.n_components = n_components
        self.variance_threshold = variance_threshold
        self.alpha = alpha
        self.normalization = normalization
        self.identify = identify
        self.max_identified_flows = max_identified_flows
        self.model: SubspaceModel | None = None
        self.scales: np.ndarray | None = None
        self.n_od_flows: int | None = None

    # -- fitting ---------------------------------------------------------

    def fit(self, entropy_tensor: np.ndarray) -> "MultiwaySubspaceDetector":
        """Fit normalisation scales and the normal subspace."""
        tensor = np.asarray(entropy_tensor, dtype=np.float64)
        if tensor.ndim != 3:
            raise ValueError("entropy tensor must be (t, p, k)")
        self.n_od_flows = tensor.shape[1]
        H = unfold(tensor)
        Hn, self.scales = normalize_unit_energy(
            H, self.n_od_flows, mode=self.normalization
        )
        self.model = SubspaceModel.fit(
            Hn,
            n_components=self.n_components,
            variance_threshold=self.variance_threshold,
        )
        return self

    def _normalize(self, tensor: np.ndarray) -> np.ndarray:
        """Unfold and apply the *fitted* scales (not refit)."""
        if self.scales is None or self.n_od_flows is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        H = unfold(np.asarray(tensor, dtype=np.float64))
        if H.shape[1] != self.scales.size * self.n_od_flows:
            raise ValueError("tensor shape does not match fitted detector")
        out = H.copy()
        p = self.n_od_flows
        for j, scale in enumerate(self.scales):
            out[:, j * p : (j + 1) * p] /= scale
        return out

    # -- scoring -----------------------------------------------------------

    def score(self, entropy_tensor: np.ndarray) -> DetectionResult:
        """Raw subspace scoring (SPE + residuals) of a tensor."""
        if self.model is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        Hn = self._normalize(entropy_tensor)
        residuals = np.atleast_2d(self.model.residual(Hn))
        spe = (residuals ** 2).sum(axis=1)
        return DetectionResult(
            spe=spe,
            threshold=self.model.threshold(self.alpha),
            alpha=self.alpha,
            residuals=residuals,
        )

    def detect(
        self, entropy_tensor: np.ndarray, alpha: float | None = None
    ) -> list[MultiwayDetection]:
        """Detect anomalous bins and identify the OD flows involved."""
        if self.model is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        a = self.alpha if alpha is None else alpha
        Hn = self._normalize(entropy_tensor)
        residuals = np.atleast_2d(self.model.residual(Hn))
        spe = (residuals ** 2).sum(axis=1)
        threshold = self.model.threshold(a)
        detections = []
        id_cache: dict[int, np.ndarray] = {}
        for b in np.flatnonzero(spe > threshold):
            flows: list[IdentifiedFlow] = []
            if self.identify:
                flows = identify_flows(
                    Hn[b] - self.model.pca.mean,
                    self.model.normal_basis,
                    self.n_od_flows,
                    threshold=threshold,
                    max_flows=self.max_identified_flows,
                    cache=id_cache,
                )
            detections.append(
                MultiwayDetection(
                    bin=int(b),
                    spe=float(spe[b]),
                    residual=residuals[b],
                    flows=flows,
                )
            )
        return detections

    def fit_detect(
        self, entropy_tensor: np.ndarray, alpha: float | None = None
    ) -> list[MultiwayDetection]:
        """Fit on the tensor and detect on the same tensor."""
        return self.fit(entropy_tensor).detect(entropy_tensor, alpha=alpha)
