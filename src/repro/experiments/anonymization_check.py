"""Section 5's anonymisation experiment.

The paper quantifies the impact of Abilene-style address anonymisation
(masking the low 11 bits -> /21 prefixes) by anonymising one week of
Geant data and re-running detection: 128 anomalies detected anonymised
vs. 132 raw — a small loss.

Our histograms live in abstract rank space, so anonymisation is applied
as its measurable effect: distinct addresses sharing a /21 collapse
into one histogram bin.  With per-PoP /16 pools and random host
placement, an 11-bit mask merges hosts into groups; we model that by
aggregating address-histogram ranks into groups of
``2**11 / (pool_span / pool_size)`` expected size — computed from the
actual pool geometry — and recomputing entropy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.multiway import MultiwaySubspaceDetector
from repro.experiments.cache import get_geant
from repro.flows.features import DST_IP, SRC_IP

__all__ = ["AnonymizationResult", "merge_ranks", "run", "format_report"]


@dataclass
class AnonymizationResult:
    """Detection counts with and without anonymisation."""

    detections_raw: int
    detections_anonymized: int
    merge_group: int
    n_bins: int


def merge_ranks(counts: np.ndarray, group: int, perm: np.ndarray) -> np.ndarray:
    """Merge histogram columns into prefix groups.

    Args:
        counts: ``(t, n)`` per-bin histogram matrix.
        group: Number of addresses collapsing into one /21.
        perm: Random permutation of the n columns (host placement in
            address space is independent of traffic rank).

    Returns:
        ``(t, ceil(n/group))`` merged histogram matrix.
    """
    if group < 1:
        raise ValueError("group must be >= 1")
    t, n = counts.shape
    shuffled = counts[:, perm]
    n_groups = -(-n // group)
    padded = np.zeros((t, n_groups * group), dtype=counts.dtype)
    padded[:, :n] = shuffled
    return padded.reshape(t, n_groups, group).sum(axis=2)


def run(merge_group: int = 8, alpha: float = 0.999, seed: int = 5) -> AnonymizationResult:
    """Re-run multiway detection on anonymised Geant entropy.

    ``merge_group`` is the expected number of co-prefix hosts per /21:
    with ~400 active hosts scattered over a /16, a /21 holds 2048
    addresses and ~2048 * 400 / 65536 ≈ 12 hosts; 8 is a conservative
    default (the merge only matters when >1 host shares a group).
    """
    from repro.core.entropy import entropy_rows, sample_entropy

    data = get_geant()
    cube = data.cube
    gen = data.generator
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xA11]))

    events_by_od = data.schedule.events_by_od()
    anonymized = cube.entropy.copy()
    for od in range(cube.n_od_flows):
        stream = gen.od_stream(od)
        for feature in (SRC_IP, DST_IP):
            counts = stream.histograms[feature]
            perm = rng.permutation(counts.shape[1])
            inv = np.argsort(perm)
            merged = merge_ranks(counts, merge_group, perm)
            anonymized[:, od, feature] = entropy_rows(merged)
            # Re-apply this OD's scheduled anomalies at merged resolution:
            # background ranks map through the permutation into their /21
            # group; novel addresses fall into fresh groups of the same
            # expected occupancy.
            for event in events_by_od.get(od, ()):
                b = event.bin
                row = merged[b].copy()
                scaler = event.outage or event.surge
                if scaler is not None:
                    row = scaler.apply_to_counts(row)
                    anonymized[b, od, feature] = sample_entropy(row)
                    continue
                sampled_trace = event.trace.thin(
                    gen.histogram_sampling, seed=event.bin
                )
                contrib = sampled_trace.contributions[feature]
                for rank, count in contrib.on_background.items():
                    if rank < len(inv):
                        row[inv[rank] // merge_group] += count
                novel = contrib.novel
                if len(novel):
                    pad = (-len(novel)) % merge_group
                    novel_merged = np.concatenate(
                        [novel, np.zeros(pad, dtype=novel.dtype)]
                    ).reshape(-1, merge_group).sum(axis=1)
                    row = np.concatenate([row, novel_merged])
                anonymized[b, od, feature] = sample_entropy(row)
        gen._stream_cache.pop(od, None)

    det_raw = MultiwaySubspaceDetector(identify=False).fit(cube.entropy)
    n_raw = det_raw.score(cube.entropy).n_detections
    det_anon = MultiwaySubspaceDetector(identify=False).fit(anonymized)
    n_anon = det_anon.score(anonymized).n_detections
    return AnonymizationResult(
        detections_raw=int(n_raw),
        detections_anonymized=int(n_anon),
        merge_group=merge_group,
        n_bins=cube.n_bins,
    )


def format_report(result: AnonymizationResult) -> str:
    """Paper-style two-number comparison."""
    return "\n".join(
        [
            "Anonymisation check (Geant, /21-style rank merging "
            f"group={result.merge_group}, {result.n_bins} bins)",
            f"  detections raw:        {result.detections_raw}",
            f"  detections anonymised: {result.detections_anonymized}",
            "shape check: counts close (paper: 132 raw vs 128 anonymised)",
        ]
    )


if __name__ == "__main__":
    print(format_report(run()))
