"""Table 8: the 10 Geant anomaly clusters and their Abilene correspondence.

The paper clusters the Geant detections (10 clusters, hierarchical),
summarises each cluster's +/0/- signature (at 2 standard deviations,
vs. 3 for Abilene), and maps each Geant cluster to the Abilene cluster
occupying a similar region of entropy space — or marks it "none" when
it sits in a region never seen in Abilene (new anomaly types: outage
dips, single-port point-to-multipoint, small uncoordinated DOS).

Correspondence here is computed as cosine similarity between cluster
means, with a threshold below which a Geant cluster matches no Abilene
cluster.  Each cluster is also auto-annotated via the Table-6 template
rule (:func:`repro.core.classify.signature_label`) — the codified
version of the paper's "spot-check five anomalies" step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import ClusterSummary, signature_label, summarize_clusters
from repro.experiments.cache import get_abilene_diagnosis, get_geant_diagnosis

__all__ = ["Table8Row", "Table8Result", "run", "format_report"]


@dataclass
class Table8Row:
    """One Geant cluster with its Abilene correspondence."""

    summary: ClusterSummary
    abilene_match: int  # 1-based Abilene cluster index, or -1 for "none"
    similarity: float
    auto_label: str
    truth_label: str


@dataclass
class Table8Result:
    """All Table-8 rows."""

    rows: list[Table8Row] = field(default_factory=list)
    n_anomalies: int = 0


def run(n_clusters: int = 10, match_threshold: float = 0.80) -> Table8Result:
    """Cluster Geant detections and map clusters onto Abilene's."""
    geant_report = get_geant_diagnosis(n_clusters=n_clusters)
    abilene_report = get_abilene_diagnosis(n_clusters=n_clusters)

    # Re-summarise Geant clusters at the paper's z=2 threshold.
    anomalies = [a for a in geant_report.anomalies if a.detected_by_entropy]
    points = np.vstack([a.unit_vector for a in anomalies])
    labels = [a.label or "unknown" for a in anomalies]
    geant_clusters = summarize_clusters(
        points, geant_report.clustering, labels=labels, z=2.0
    )

    abilene_means = [c.mean for c in abilene_report.clusters]
    rows = []
    for summary in geant_clusters:
        best, best_sim = -1, -np.inf
        for i, mean in enumerate(abilene_means):
            denom = np.linalg.norm(summary.mean) * np.linalg.norm(mean)
            sim = float(summary.mean @ mean / denom) if denom > 0 else -1.0
            if sim > best_sim:
                best, best_sim = i, sim
        matched = best + 1 if best_sim >= match_threshold else -1
        rows.append(
            Table8Row(
                summary=summary,
                abilene_match=matched,
                similarity=best_sim,
                auto_label=signature_label(summary.mean),
                truth_label=summary.plurality_label,
            )
        )
    return Table8Result(rows=rows, n_anomalies=len(anomalies))


def format_report(result: Table8Result) -> str:
    """Table-8 layout."""
    lines = [
        f"Table 8 — anomaly clusters in Geant data ({result.n_anomalies} anomalies)",
        f"{'#':>2} {'size':>5}  {'srcIP':>5} {'srcPort':>7} {'dstIP':>5} {'dstPort':>7}  "
        f"{'abilene#':>8} {'auto label':<17} {'ground truth':<16}",
    ]
    for i, row in enumerate(result.rows, start=1):
        s = row.summary
        match = str(row.abilene_match) if row.abilene_match > 0 else "none"
        lines.append(
            f"{i:>2} {s.size:>5}  {s.signature[0]:>5} {s.signature[1]:>7} "
            f"{s.signature[2]:>5} {s.signature[3]:>7}  {match:>8} "
            f"{row.auto_label:<17} {row.truth_label:<16}"
        )
    n_matched = sum(1 for r in result.rows if r.abilene_match > 0)
    agree = sum(
        1
        for r in result.rows
        if r.auto_label == r.truth_label
        or (r.auto_label in ("network_scan", "worm") and r.truth_label in ("network_scan", "worm"))
        or (r.auto_label in ("dos", "ddos") and r.truth_label in ("dos", "ddos"))
    )
    lines.append(
        f"shape check: {n_matched}/{len(result.rows)} Geant clusters match an "
        f"Abilene region (paper: most, some 'none'); auto-label agrees with "
        f"ground truth for {agree}/{len(result.rows)} clusters"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
