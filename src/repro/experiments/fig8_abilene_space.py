"""Figure 8: Abilene anomalies form clusters in entropy space.

The paper's Figure 8 shows two 2-D projections — (H~srcIP, H~srcPort)
and (H~dstIP, H~dstPort) — of all anomalies detected in one week of
Abilene, with clustering symbols.  The qualitative content: anomalies
spread very irregularly, forming clear clusters that are narrowly
bounded in at least two dimensions.

We report the projected coordinates with cluster assignments plus a
dispersion diagnostic per cluster (how tightly bounded each cluster is
per axis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.cache import get_abilene_diagnosis

__all__ = ["Fig8Result", "run", "format_report"]


@dataclass
class Fig8Result:
    """Entropy-space positions + clusters of Abilene anomalies.

    Attributes:
        points: ``(n, 4)`` unit-normalised entropy vectors
            (srcIP, srcPort, dstIP, dstPort).
        clusters: Cluster index per anomaly.
        tight_axes_per_cluster: For each cluster, the number of axes on
            which its std is < 0.15 (the "narrowly bounded" check).
    """

    points: np.ndarray
    clusters: np.ndarray
    tight_axes_per_cluster: dict[int, int]


def run(tight_std: float = 0.15) -> Fig8Result:
    """Extract entropy-space positions from the Abilene diagnosis."""
    report = get_abilene_diagnosis()
    anomalies = [a for a in report.anomalies if a.detected_by_entropy]
    points = np.vstack([a.unit_vector for a in anomalies])
    clusters = np.array([a.cluster for a in anomalies])
    tight = {}
    for c in np.unique(clusters):
        sub = points[clusters == c]
        if len(sub) >= 2:
            tight[int(c)] = int((sub.std(axis=0) < tight_std).sum())
        else:
            tight[int(c)] = 4
    return Fig8Result(points=points, clusters=clusters, tight_axes_per_cluster=tight)


def format_report(result: Fig8Result) -> str:
    """Cluster positions in the two paper projections."""
    lines = [
        f"Figure 8 — Abilene anomalies in entropy space ({len(result.points)} points)",
        f"{'cluster':>8} {'n':>5} {'srcIP':>7} {'srcPort':>8} {'dstIP':>7} "
        f"{'dstPort':>8} {'tight axes':>11}",
    ]
    for c in sorted(set(result.clusters.tolist())):
        sub = result.points[result.clusters == c]
        mean = sub.mean(axis=0)
        lines.append(
            f"{c:>8} {len(sub):>5} {mean[0]:>7.2f} {mean[1]:>8.2f} "
            f"{mean[2]:>7.2f} {mean[3]:>8.2f} {result.tight_axes_per_cluster[c]:>11}"
        )
    n_tight = sum(1 for v in result.tight_axes_per_cluster.values() if v >= 2)
    lines.append(
        f"shape check: {n_tight}/{len(result.tight_axes_per_cluster)} clusters "
        "tightly bounded in >=2 dimensions (paper: most clusters)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
