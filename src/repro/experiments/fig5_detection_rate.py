"""Figure 5: detection rate vs. thinning for the injected known anomalies.

The paper injects each known trace (single DOS, multi DOS, worm scan)
into every Abilene OD flow in turn, at each thinning factor, and
reports the detection rate over OD flows — for volume metrics alone and
for volume+entropy, at detection thresholds alpha = 0.999 and 0.995.

Key shapes to reproduce: all traces detected at full intensity; at low
intensities entropy sustains high detection rates where volume-alone
collapses (most dramatically for the worm scan, which volume metrics
essentially never see).

Detectors are fit once on the clean cube and injections scored against
the frozen subspaces (DESIGN.md §2, fixed-subspace note).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anomalies.builders import known_traces
from repro.anomalies.injector import InjectionScorer
from repro.experiments.cache import get_clean_abilene_week
from repro.experiments.table5_thinning import THINNING_GRID

__all__ = ["Fig5Point", "Fig5Result", "run", "format_report"]

DEFAULT_ALPHAS = (0.999, 0.995)


@dataclass
class Fig5Point:
    """Detection rates for one (trace, thinning, alpha) setting."""

    trace: str
    thinning: int
    pps: float
    alpha: float
    rate_volume_alone: float
    rate_volume_plus_entropy: float
    n_injections: int


@dataclass
class Fig5Result:
    """All curve points of Figure 5 (a), (b), (c)."""

    points: list[Fig5Point] = field(default_factory=list)

    def curve(self, trace: str, alpha: float, which: str) -> list[tuple[int, float]]:
        """(thinning, rate) series for one curve of the figure."""
        out = []
        for p in self.points:
            if p.trace == trace and p.alpha == alpha:
                rate = (
                    p.rate_volume_alone
                    if which == "volume"
                    else p.rate_volume_plus_entropy
                )
                out.append((p.thinning, rate))
        return sorted(out)


def run(
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    injection_bin: int = 400,
    seed: int = 0,
    od_stride: int = 1,
) -> Fig5Result:
    """Run the full injection sweep.

    Args:
        alphas: Detection confidence levels.
        injection_bin: Clean bin receiving the injections.
        seed: Trace construction / thinning seed.
        od_stride: Inject into every ``od_stride``-th OD flow (1 = all
            121, as in the paper; larger strides for quick runs).
    """
    cube, generator = get_clean_abilene_week()
    scorer = InjectionScorer(cube, generator, alphas=alphas)
    traces = known_traces(seed=seed)
    ods = range(0, cube.n_od_flows, od_stride)
    points = []
    for name, grid in THINNING_GRID.items():
        base = traces[name]
        for factor in grid:
            thinned = base.thin(factor, seed=seed)
            if thinned.packets == 0:
                continue
            outcomes = {alpha: [0, 0] for alpha in alphas}
            n = 0
            for od in ods:
                n += 1
                for alpha in alphas:
                    out = scorer.score(injection_bin, [(od, thinned)], alpha=alpha)
                    outcomes[alpha][0] += out.detected_volume
                    outcomes[alpha][1] += out.detected_any
            for alpha in alphas:
                vol, any_ = outcomes[alpha]
                points.append(
                    Fig5Point(
                        trace=name,
                        thinning=factor,
                        pps=thinned.pps,
                        alpha=alpha,
                        rate_volume_alone=vol / n,
                        rate_volume_plus_entropy=any_ / n,
                        n_injections=n,
                    )
                )
    return Fig5Result(points=points)


def format_report(result: Fig5Result) -> str:
    """Figure-5 curves as rows."""
    lines = [
        "Figure 5 — detection rate vs thinning (injections into every OD flow)",
        f"{'Trace':<6} {'Thin':>7} {'pps':>11} {'alpha':>6} "
        f"{'VolAlone':>9} {'Vol+Ent':>8}",
    ]
    for p in result.points:
        lines.append(
            f"{p.trace:<6} {p.thinning:>7} {p.pps:>11.4g} {p.alpha:>6} "
            f"{p.rate_volume_alone:>9.2f} {p.rate_volume_plus_entropy:>8.2f}"
        )
    # Shape check: entropy's advantage at low volume.
    worm_full = result.curve("worm", 0.995, "combined")
    worm_vol = result.curve("worm", 0.995, "volume")
    if worm_full and worm_vol:
        lines.append(
            "shape check (worm @0.995): volume-alone max rate "
            f"{max(r for _, r in worm_vol):.2f}; volume+entropy at thinning 10 "
            f"{dict(worm_full).get(10, float('nan')):.2f} (paper: ~0.8 at 0.63% intensity)"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
