"""Table 3: anomaly types found in volume vs. additional in entropy.

The paper manually inspected all 444 Abilene detections and tabulated,
per anomaly type, how many were found by volume metrics and how many
*additional* ones only entropy exposed.  Headline findings: port scans,
network scans and point-to-multipoint transfers were detected *only*
via entropy (all low-volume), and ~10% of detections were false alarms.

Our ground truth comes from the dataset's schedule instead of manual
inspection (DESIGN.md §2): every detected bin is matched against the
scheduled event at that bin; detections at clean bins are false alarms.
The table also reports each type's detection (recall) rate, which the
paper could not measure on wild data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.detector import AnomalyDiagnosis
from repro.experiments.cache import get_abilene

__all__ = ["Table3Row", "Table3Result", "run", "format_report"]

_LABEL_ORDER = (
    "alpha",
    "dos",
    "ddos",
    "flash_crowd",
    "port_scan",
    "network_scan",
    "worm",
    "outage",
    "point_multipoint",
)


@dataclass
class Table3Row:
    """One anomaly type's detection breakdown."""

    label: str
    scheduled: int
    found_in_volume: int
    additional_in_entropy: int
    missed: int

    @property
    def recall(self) -> float:
        """Fraction of scheduled events detected by either metric."""
        if self.scheduled == 0:
            return 0.0
        return (self.found_in_volume + self.additional_in_entropy) / self.scheduled


@dataclass
class Table3Result:
    """The full Table-3 breakdown."""

    rows: list[Table3Row] = field(default_factory=list)
    false_alarms: int = 0
    total_detections: int = 0


def run(alpha: float = 0.999) -> Table3Result:
    """Diagnose the Abilene dataset and score against ground truth."""
    data = get_abilene()
    diag = AnomalyDiagnosis(alpha=alpha, identify=False)
    report = diag.diagnose(data.cube, classify=False)
    volume_bins = set(int(b) for b in report.volume_bins)
    entropy_bins = set(int(b) for b in report.entropy_bins)
    detected_bins = volume_bins | entropy_bins

    rows = []
    for label in _LABEL_ORDER:
        events = [e for e in data.schedule.events if e.label == label]
        in_volume = sum(1 for e in events if e.bin in volume_bins)
        additional = sum(
            1 for e in events if e.bin in entropy_bins and e.bin not in volume_bins
        )
        missed = sum(1 for e in events if e.bin not in detected_bins)
        rows.append(
            Table3Row(
                label=label,
                scheduled=len(events),
                found_in_volume=in_volume,
                additional_in_entropy=additional,
                missed=missed,
            )
        )
    scheduled_bins = {e.bin for e in data.schedule.events}
    false_alarms = len(detected_bins - scheduled_bins)
    return Table3Result(
        rows=rows,
        false_alarms=false_alarms,
        total_detections=len(detected_bins),
    )


def format_report(result: Table3Result) -> str:
    """Table-3 layout plus recall and the false-alarm rate."""
    lines = [
        "Table 3 — range of anomalies found in Abilene (vs ground truth)",
        f"{'Label':<18} {'Sched':>6} {'InVolume':>9} {'AddlEntropy':>12} "
        f"{'Missed':>7} {'Recall':>7}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.label:<18} {row.scheduled:>6} {row.found_in_volume:>9} "
            f"{row.additional_in_entropy:>12} {row.missed:>7} {row.recall:>6.0%}"
        )
    lines.append(f"{'false alarms':<18} {'':>6} {'':>9} {'':>12} {'':>7} "
                 f"n={result.false_alarms}")
    fa_rate = result.false_alarms / max(result.total_detections, 1)
    lines.append(
        f"total detected bins: {result.total_detections}  "
        f"(false-alarm share {fa_rate:.0%}; paper reports ~10%)"
    )
    scans = [r for r in result.rows if r.label in ("port_scan", "network_scan",
                                                   "worm", "point_multipoint")]
    vol_scans = sum(r.found_in_volume for r in scans)
    ent_scans = sum(r.additional_in_entropy for r in scans)
    lines.append(
        "shape check: scans/point-to-multipoint found (almost) only via "
        f"entropy — volume {vol_scans}, entropy-additional {ent_scans}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
