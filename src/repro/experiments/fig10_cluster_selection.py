"""Figure 10: choosing the number of clusters.

The paper plots intra-cluster variation trace(W) and inter-cluster
variation trace(B) against the number of clusters, for both clustering
algorithms (k-means and hierarchical agglomerative) on both datasets
(Abilene and Geant anomalies).  All eight curves agree: a knee around
8-12 clusters, after which adding clusters explains little more — the
basis for fixing k=10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import choose_k_curves
from repro.experiments.cache import get_abilene_diagnosis, get_geant_diagnosis

__all__ = ["Fig10Result", "run", "format_report", "knee_of"]

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25)


@dataclass
class Fig10Result:
    """trace(W)/trace(B) curves per (dataset, algorithm)."""

    curves: dict[tuple[str, str], dict[int, tuple[float, float]]] = field(
        default_factory=dict
    )


def knee_of(curve: dict[int, tuple[float, float]], fraction: float = 0.85) -> int:
    """Smallest k at which trace(W) has fallen by ``fraction`` of its range."""
    ks = sorted(curve)
    w = np.array([curve[k][0] for k in ks])
    if w[0] == w[-1]:
        return ks[0]
    drop = (w[0] - w) / (w[0] - w[-1])
    return ks[int(np.searchsorted(drop, fraction))]


def run(k_values: tuple[int, ...] = DEFAULT_K_VALUES, rng_seed: int = 0) -> Fig10Result:
    """Compute all eight variation curves."""
    points = {}
    for name, getter in (("abilene", get_abilene_diagnosis), ("geant", get_geant_diagnosis)):
        report = getter()
        anomalies = [a for a in report.anomalies if a.detected_by_entropy]
        points[name] = np.vstack([a.unit_vector for a in anomalies])

    curves = {}
    for name, X in points.items():
        ks = tuple(k for k in k_values if k <= len(X))
        for algo in ("hierarchical", "kmeans"):
            curves[(name, algo)] = choose_k_curves(
                X, ks, algorithm=algo, linkage="average", rng=rng_seed
            )
    return Fig10Result(curves=curves)


def format_report(result: Fig10Result) -> str:
    """All curves + knee positions."""
    lines = ["Figure 10 — selecting the number of clusters (trace(W) / trace(B))"]
    for (dataset, algo), curve in result.curves.items():
        knee = knee_of(curve)
        lines.append(f"{dataset}/{algo}  (knee ~ k={knee}):")
        for k in sorted(curve):
            w, b = curve[k]
            lines.append(f"   k={k:>2}  within={w:9.3f}  between={b:9.3f}")
    knees = [knee_of(c) for c in result.curves.values()]
    lines.append(
        f"shape check: knees at k={sorted(knees)} (paper: 8-12 across all "
        "algorithm/dataset combinations; k fixed at 10)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
