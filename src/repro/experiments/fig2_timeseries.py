"""Figure 2: a port scan seen through volume vs. entropy timeseries.

The paper's Figure 2 plots, around the port-scan anomaly of Figure 1,
four timeseries of the containing OD flow: #bytes, #packets, H(dstIP),
H(dstPort).  The scan is invisible in the volume series but produces a
sharp dip in destination-IP entropy and a sharp spike in
destination-port entropy.

The experiment reports the four series plus z-scores of the anomalous
bin within each series — the quantitative version of "stands out
clearly".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomalies.builders import port_scan
from repro.anomalies.injector import inject_trace
from repro.experiments.cache import get_clean_abilene_week
from repro.flows.features import DST_IP, DST_PORT

__all__ = ["Fig2Result", "run", "format_report"]


@dataclass
class Fig2Result:
    """The four timeseries and the anomaly's z-score in each."""

    bytes: np.ndarray
    packets: np.ndarray
    h_dst_ip: np.ndarray
    h_dst_port: np.ndarray
    anomaly_index: int
    z_scores: dict[str, float]
    od: int


def _zscore(series: np.ndarray, index: int) -> float:
    others = np.delete(series, index)
    std = others.std()
    if std == 0:
        return 0.0
    return float((series[index] - others.mean()) / std)


def run(
    od: int | None = None,
    b: int = 700,
    scan_pps: float = 60.0,
    window: int = 144,
    seed: int = 3,
) -> Fig2Result:
    """Inject the Figure-1 port scan and extract surrounding timeseries.

    Args:
        od: Target OD flow; defaults to the quietest one (see Figure 1).
        window: Half-width (in bins) of the reported window around the
            anomaly (144 bins = 12 hours each side).
    """
    cube, generator = get_clean_abilene_week()
    if od is None:
        od = int(np.argmin(generator.mean_rates))
    dirty = cube.copy()
    trace = port_scan(np.random.default_rng(seed), pps=scan_pps, victim_rank=0)
    inject_trace(dirty, generator, od, b, trace)

    lo, hi = max(0, b - window), min(dirty.n_bins, b + window)
    idx = b - lo
    series = {
        "bytes": dirty.bytes[lo:hi, od],
        "packets": dirty.packets[lo:hi, od],
        "H(dstIP)": dirty.entropy[lo:hi, od, DST_IP],
        "H(dstPort)": dirty.entropy[lo:hi, od, DST_PORT],
    }
    z = {name: _zscore(s, idx) for name, s in series.items()}
    return Fig2Result(
        bytes=series["bytes"],
        packets=series["packets"],
        h_dst_ip=series["H(dstIP)"],
        h_dst_port=series["H(dstPort)"],
        anomaly_index=idx,
        z_scores=z,
        od=od,
    )


def format_report(result: Fig2Result) -> str:
    """Summary matching the paper's qualitative reading of Figure 2."""
    lines = [
        f"Figure 2 — port scan viewed in volume vs entropy (OD {result.od})",
        "z-score of the anomalous bin within each timeseries:",
    ]
    for name, z in result.z_scores.items():
        visibility = "stands out" if abs(z) > 4 else "buried in noise"
        lines.append(f"  {name:<11} z = {z:+7.2f}   ({visibility})")
    lines.append(
        "shape check: |z| small for bytes/packets, large negative for "
        "H(dstIP) (concentration), large positive for H(dstPort) (dispersal)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
