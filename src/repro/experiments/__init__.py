"""Experiments: one module per table and figure of the paper.

Each module exposes ``run(...)`` returning a structured result and
``format_report(result)`` returning the paper-style rows as text.  The
mapping from paper artefacts to modules is DESIGN.md §4; the measured
outcomes are recorded in EXPERIMENTS.md.
"""

from repro.experiments import (
    ablation_metrics,
    ablations,
    baseline_comparison,
    anonymization_check,
    cache,
    fig1_histograms,
    fig2_timeseries,
    fig4_volume_vs_entropy,
    fig5_detection_rate,
    fig6_multiflow,
    fig7_known_clusters,
    fig8_abilene_space,
    fig9_geant_space,
    fig10_cluster_selection,
    table2_detections,
    table3_breakdown,
    table4_traces,
    table5_thinning,
    table6_label_space,
    table7_abilene_clusters,
    table8_geant_clusters,
)

__all__ = [
    "ablation_metrics",
    "ablations",
    "baseline_comparison",
    "anonymization_check",
    "cache",
    "fig1_histograms",
    "fig2_timeseries",
    "fig4_volume_vs_entropy",
    "fig5_detection_rate",
    "fig6_multiflow",
    "fig7_known_clusters",
    "fig8_abilene_space",
    "fig9_geant_space",
    "fig10_cluster_selection",
    "table2_detections",
    "table3_breakdown",
    "table4_traces",
    "table5_thinning",
    "table6_label_space",
    "table7_abilene_clusters",
    "table8_geant_clusters",
]
