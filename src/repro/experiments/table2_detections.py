"""Table 2: detections in entropy and volume metrics, both networks.

The paper's Table 2 counts, for Geant and Abilene, how many anomalous
timebins were found only by volume metrics, only by entropy, and by
both — the quantitative statement that the two metric families
complement each other (small overlap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import AnomalyDiagnosis, DiagnosisReport
from repro.experiments.cache import get_abilene, get_geant

__all__ = ["Table2Result", "run", "format_report"]


@dataclass
class Table2Result:
    """Per-network detection counts (Table 2 rows)."""

    abilene: dict[str, int]
    geant: dict[str, int]
    abilene_report: DiagnosisReport
    geant_report: DiagnosisReport
    abilene_weeks: float
    geant_weeks: float


def run(alpha: float = 0.999) -> Table2Result:
    """Diagnose both labeled datasets and tabulate detection overlap."""
    abilene = get_abilene()
    geant = get_geant()
    diag = AnomalyDiagnosis(alpha=alpha, identify=False)
    rep_a = diag.diagnose(abilene.cube, classify=False)
    rep_g = diag.diagnose(geant.cube, classify=False)
    return Table2Result(
        abilene=rep_a.counts(),
        geant=rep_g.counts(),
        abilene_report=rep_a,
        geant_report=rep_g,
        abilene_weeks=abilene.cube.n_bins / 2016,
        geant_weeks=geant.cube.n_bins / 2016,
    )


def format_report(result: Table2Result) -> str:
    """Table-2 layout: volume-only / entropy-only / both / total."""
    lines = [
        "Table 2 — number of detections in entropy and volume metrics",
        f"{'Network':<10} {'VolumeOnly':>11} {'EntropyOnly':>12} {'Both':>6} {'Total':>7}",
    ]
    for name, counts, weeks in (
        ("Geant", result.geant, result.geant_weeks),
        ("Abilene", result.abilene, result.abilene_weeks),
    ):
        lines.append(
            f"{name:<10} {counts['volume_only']:>11} {counts['entropy_only']:>12} "
            f"{counts['both']:>6} {counts['total']:>7}   ({weeks:.1f} weeks)"
        )
    for name, counts in (("Geant", result.geant), ("Abilene", result.abilene)):
        total = max(counts["total"], 1)
        lines.append(
            f"shape check {name}: overlap 'both' is small "
            f"({counts['both']}/{total} = {counts['both'] / total:.0%}); "
            "entropy adds a substantial set beyond volume "
            f"({counts['entropy_only']} additional)"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
