"""Figure 7: clustering known (injected) anomalies in entropy space.

The paper injects the three known anomaly types at varying intensities,
plots their residual-entropy vectors in entropy space (three 2-D
projections against H~(srcIP)), and shows that hierarchical clustering
with k=3 recovers the types almost perfectly: 4 misassignments out of
296 anomalies.

We inject ~100 instances of each type (random OD flows, random
thinnings), compute each injection's residual-entropy 4-vector against
the clean-fit multiway subspace, unit-normalise, cluster with k=3
hierarchical agglomerative clustering, and count disagreements with the
ground-truth types under the best cluster->type assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.anomalies.builders import ddos, dos_single, worm_scan
from repro.anomalies.injector import InjectionScorer
from repro.core.classify import unit_normalize
from repro.core.clustering import hierarchical
from repro.experiments.cache import get_clean_abilene_week

__all__ = ["Fig7Result", "run", "format_report"]

_TYPES = ("dos", "ddos", "worm")


@dataclass
class Fig7Result:
    """Clustered known anomalies.

    Attributes:
        points: ``(n, 4)`` unit-normalised entropy vectors.
        true_labels: Ground-truth type per point.
        cluster_labels: Cluster index per point.
        n_misassigned: Points whose cluster does not match their type
            (under the best cluster->type bijection).
        n_points: Total anomalies.
    """

    points: np.ndarray
    true_labels: list[str]
    cluster_labels: np.ndarray
    n_misassigned: int
    n_points: int


def _best_assignment_errors(
    true_labels: list[str], clusters: np.ndarray
) -> int:
    """Minimum disagreements over bijections cluster -> type."""
    best = len(true_labels)
    for perm in permutations(_TYPES):
        errors = sum(
            1
            for label, c in zip(true_labels, clusters)
            if label != perm[c % len(perm)]
        )
        best = min(best, errors)
    return best


def run(
    per_type: int = 100,
    injection_bin: int = 400,
    seed: int = 0,
    linkage: str = "average",
) -> Fig7Result:
    """Inject, embed, and cluster the known anomaly types.

    Intensity variation: each instance is thinned by a random factor in
    {1, 2, 5, 10} (DOS types also 100) so clusters must be recovered
    across an intensity range, as in the paper.
    """
    cube, generator = get_clean_abilene_week()
    scorer = InjectionScorer(cube, generator)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 77]))

    vectors = []
    labels = []
    for type_name in _TYPES:
        for i in range(per_type):
            trace_rng = np.random.default_rng(np.random.SeedSequence([seed, i, 5]))
            if type_name == "dos":
                trace = dos_single(trace_rng)
                factors = (1, 2, 5, 10, 100)
            elif type_name == "ddos":
                trace = ddos(trace_rng)
                factors = (1, 2, 5, 10, 100)
            else:
                trace = worm_scan(trace_rng)
                factors = (1, 2, 5, 10)
            factor = int(factors[rng.integers(len(factors))])
            trace = trace.thin(factor, seed=i)
            od = int(rng.integers(cube.n_od_flows))
            vectors.append(scorer.entropy_vector(injection_bin, od, trace))
            labels.append(type_name)

    points = unit_normalize(np.vstack(vectors))
    clustering = hierarchical(points, k=len(_TYPES), linkage=linkage)
    errors = _best_assignment_errors(labels, clustering.labels)
    return Fig7Result(
        points=points,
        true_labels=labels,
        cluster_labels=clustering.labels,
        n_misassigned=errors,
        n_points=len(labels),
    )


def format_report(result: Fig7Result) -> str:
    """Cluster quality + per-type mean positions (the 3 projections)."""
    lines = [
        "Figure 7 — clustering known injected anomalies "
        f"({result.n_points} anomalies, 3 clusters)",
        f"misassigned: {result.n_misassigned}/{result.n_points} "
        "(paper: 4/296)",
        f"{'type':<6} {'H~srcIP':>9} {'H~srcPort':>10} {'H~dstIP':>9} {'H~dstPort':>10}",
    ]
    for type_name in _TYPES:
        mask = np.array([lab == type_name for lab in result.true_labels])
        mean = result.points[mask].mean(axis=0)
        lines.append(
            f"{type_name:<6} {mean[0]:>9.2f} {mean[1]:>10.2f} "
            f"{mean[2]:>9.2f} {mean[3]:>10.2f}"
        )
    lines.append(
        "shape check: dos low srcIP & dstIP; ddos high srcIP, low dstIP; "
        "worm high dstIP, low dstPort"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
