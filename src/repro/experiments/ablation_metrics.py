"""Ablation: entropy vs alternative dispersion metrics (paper Section 3).

The paper asserts that entropy "works well in practice" among the
metrics capturing concentration/dispersal.  We rebuild the multiway
tensor under each registered dispersion metric (on a reduced slice of
the Abilene dataset — metric evaluation is per-histogram) and compare
detection quality against ground truth.

Expected shape: entropy and its close relatives (Renyi-2 / Simpson /
Gini) land in the same quality band; raw distinct counts are noisier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dispersion import DISPERSION_METRICS, metric_rows
from repro.core.metrics import ConfusionCounts, score_detections
from repro.core.multiway import MultiwaySubspaceDetector
from repro.experiments.cache import get_abilene
from repro.flows.features import N_FEATURES

__all__ = ["MetricRow", "MetricAblation", "run", "format_report"]


@dataclass
class MetricRow:
    """Detection quality for one dispersion metric."""

    metric: str
    counts: ConfusionCounts
    n_detections: int


@dataclass
class MetricAblation:
    """All metric rows plus the evaluated slice."""

    rows: list[MetricRow] = field(default_factory=list)
    n_bins: int = 0
    n_od_flows: int = 0


def run(
    days: float = 4.0,
    n_ods: int = 40,
    alpha: float = 0.999,
    metrics: tuple[str, ...] | None = None,
) -> MetricAblation:
    """Evaluate each metric on a slice of the Abilene dataset.

    Histograms for the slice are regenerated from the dataset's
    generator and re-summarised under each metric; scheduled events are
    re-applied (sampled, as in the dataset build).
    """
    data = get_abilene()
    n_bins = int(days * 288)
    ods = list(range(0, data.cube.n_od_flows, max(1, data.cube.n_od_flows // n_ods)))[
        :n_ods
    ]
    metrics = metrics or tuple(DISPERSION_METRICS)
    events_by_od = data.schedule.events_by_od()

    # Regenerate per-(od, feature) histograms once; summarise per metric.
    tensors = {m: np.zeros((n_bins, len(ods), N_FEATURES)) for m in metrics}
    truth_bins = set()
    for j, od in enumerate(ods):
        stream = data.generator.od_stream(od)
        events = [e for e in events_by_od.get(od, ()) if e.bin < n_bins]
        for e in events:
            truth_bins.add(e.bin)
        for k in range(N_FEATURES):
            counts = stream.histograms[k][:n_bins]
            rows_by_metric = {m: metric_rows(counts, m) for m in metrics}
            # Re-apply this OD's events at histogram level.
            for e in events:
                from repro.anomalies.injector import combined_counts

                row = counts[e.bin]
                if e.outage is not None or e.surge is not None:
                    scaler = e.outage or e.surge
                    new_row = scaler.apply_to_counts(row)
                else:
                    sampled = e.trace.thin(
                        data.generator.histogram_sampling, seed=e.bin
                    )
                    new_row = combined_counts(row, sampled.contributions[k])
                for m in metrics:
                    rows_by_metric[m][e.bin] = DISPERSION_METRICS[m](new_row)
            for m in metrics:
                tensors[m][:, j, k] = rows_by_metric[m]
        data.generator._stream_cache.pop(od, None)

    # Events at bins of ODs outside the slice are not ground truth here.
    all_rows = []
    for m in metrics:
        det = MultiwaySubspaceDetector(identify=False)
        det.fit(tensors[m])
        result = det.score(tensors[m])
        detected = np.flatnonzero(result.spe > det.model.threshold(alpha))
        counts = score_detections(detected, truth_bins, n_bins)
        all_rows.append(
            MetricRow(metric=m, counts=counts, n_detections=len(detected))
        )
    return MetricAblation(rows=all_rows, n_bins=n_bins, n_od_flows=len(ods))


def format_report(result: MetricAblation) -> str:
    """Quality table across dispersion metrics."""
    lines = [
        f"Dispersion-metric ablation ({result.n_bins} bins x "
        f"{result.n_od_flows} OD flows)",
        f"{'Metric':<12} {'Flags':>6} {'Prec':>6} {'Recall':>7} {'F1':>6}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.metric:<12} {row.n_detections:>6} {row.counts.precision:>6.2f} "
            f"{row.counts.recall:>7.2f} {row.counts.f1:>6.2f}"
        )
    entropy_f1 = next(r.counts.f1 for r in result.rows if r.metric == "entropy")
    best = max(result.rows, key=lambda r: r.counts.f1)
    lines.append(
        f"shape check: entropy F1 {entropy_f1:.2f} within the top band "
        f"(best: {best.metric} {best.counts.f1:.2f}) — 'entropy works well in practice'"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
