"""Figure 4: residual entropy vs. residual volume — disjoint detections.

The paper's Figure 4 scatters, per timepoint, the squared residual of
the multiway entropy state against the squared residual of byte counts
(a) and packet counts (b), with detection thresholds at alpha = 0.999.
The point: the anomaly sets detected by volume and by entropy are
largely disjoint — many entropy anomalies carry negligible volume.

This experiment computes the same scatter on one week of the labeled
Abilene dataset and reports the quadrant counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.multiway import MultiwaySubspaceDetector
from repro.core.subspace import SubspaceDetector
from repro.experiments.cache import get_abilene

__all__ = ["Fig4Result", "run", "format_report"]


@dataclass
class Fig4Result:
    """Scatter data + quadrant counts for Figure 4.

    Attributes:
        spe_entropy / spe_bytes / spe_packets: ``(t,)`` residual norms.
        thr_entropy / thr_bytes / thr_packets: alpha=0.999 thresholds.
        quadrants_bytes / quadrants_packets: ``{"neither", "volume_only",
            "entropy_only", "both"}`` bin counts against each volume
            metric.
    """

    spe_entropy: np.ndarray
    spe_bytes: np.ndarray
    spe_packets: np.ndarray
    thr_entropy: float
    thr_bytes: float
    thr_packets: float
    quadrants_bytes: dict[str, int]
    quadrants_packets: dict[str, int]


def _quadrants(spe_vol, thr_vol, spe_ent, thr_ent) -> dict[str, int]:
    vol = spe_vol > thr_vol
    ent = spe_ent > thr_ent
    return {
        "neither": int((~vol & ~ent).sum()),
        "volume_only": int((vol & ~ent).sum()),
        "entropy_only": int((~vol & ent).sum()),
        "both": int((vol & ent).sum()),
    }


def run(weeks: float = 1.0, alpha: float = 0.999) -> Fig4Result:
    """Compute the Figure-4 scatter on a slice of the Abilene dataset."""
    data = get_abilene()
    n_bins = int(weeks * 2016)
    cube = data.cube.slice_bins(0, min(n_bins, data.cube.n_bins))

    entropy_det = MultiwaySubspaceDetector(identify=False).fit(cube.entropy)
    ent = entropy_det.score(cube.entropy)
    bytes_det = SubspaceDetector().fit(cube.bytes)
    byt = bytes_det.detect(cube.bytes, alpha=alpha)
    packets_det = SubspaceDetector().fit(cube.packets)
    pkt = packets_det.detect(cube.packets, alpha=alpha)

    thr_ent = entropy_det.model.threshold(alpha)
    return Fig4Result(
        spe_entropy=ent.spe,
        spe_bytes=byt.spe,
        spe_packets=pkt.spe,
        thr_entropy=thr_ent,
        thr_bytes=byt.threshold,
        thr_packets=pkt.threshold,
        quadrants_bytes=_quadrants(byt.spe, byt.threshold, ent.spe, thr_ent),
        quadrants_packets=_quadrants(pkt.spe, pkt.threshold, ent.spe, thr_ent),
    )


def format_report(result: Fig4Result) -> str:
    """Quadrant counts (the quantitative content of the scatter)."""
    lines = ["Figure 4 — entropy vs volume residuals (Abilene, 1 week, alpha=0.999)"]
    for name, quad in (
        ("bytes", result.quadrants_bytes),
        ("packets", result.quadrants_packets),
    ):
        lines.append(
            f"  vs {name:<8} neither={quad['neither']:>5}  "
            f"volume_only={quad['volume_only']:>4}  "
            f"entropy_only={quad['entropy_only']:>4}  both={quad['both']:>4}"
        )
    qb, qp = result.quadrants_bytes, result.quadrants_packets
    disjoint_b = qb["volume_only"] + qb["entropy_only"]
    disjoint_p = qp["volume_only"] + qp["entropy_only"]
    lines.append(
        "shape check: detection sets largely disjoint — "
        f"vs bytes {disjoint_b}/{disjoint_b + qb['both']} exclusive, "
        f"vs packets {disjoint_p}/{disjoint_p + qp['both']} exclusive"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
