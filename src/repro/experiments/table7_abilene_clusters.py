"""Table 7: the 10 Abilene anomaly clusters.

The paper clusters all Abilene detections into 10 clusters
(hierarchical agglomerative) and tabulates, per cluster: size, the
plurality ground-truth label, how many members are of the plurality
label, how many are unknown, and the +/0/- signature on each entropy
axis.  Findings to reproduce: clusters are internally consistent (the
plurality label dominates), distinct labels lead distinct clusters, and
each cluster occupies a distinct region in entropy space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classify import ClusterSummary
from repro.experiments.cache import get_abilene_diagnosis

__all__ = ["Table7Result", "run", "format_report"]


@dataclass
class Table7Result:
    """Cluster summaries, largest first."""

    clusters: list[ClusterSummary] = field(default_factory=list)
    n_anomalies: int = 0


def run(n_clusters: int = 10) -> Table7Result:
    """Cluster the Abilene detections and summarise (Table 7)."""
    report = get_abilene_diagnosis(n_clusters=n_clusters)
    return Table7Result(
        clusters=report.clusters,
        n_anomalies=int(len(report.entropy_bins)),
    )


def format_report(result: Table7Result) -> str:
    """Table-7 layout."""
    lines = [
        f"Table 7 — anomaly clusters in Abilene data ({result.n_anomalies} anomalies)",
        f"{'#':>2} {'size':>5}  {'plurality':<18} {'n_plur':>6} {'unk':>4}  "
        f"{'srcIP':>5} {'srcPort':>7} {'dstIP':>5} {'dstPort':>7}",
    ]
    for i, c in enumerate(result.clusters, start=1):
        lines.append(
            f"{i:>2} {c.size:>5}  {c.plurality_label:<18} {c.plurality_count:>6} "
            f"{c.n_unknown:>4}  {c.signature[0]:>5} {c.signature[1]:>7} "
            f"{c.signature[2]:>5} {c.signature[3]:>7}"
        )
    consistent = sum(
        1 for c in result.clusters if c.plurality_count >= max(1, c.size // 2)
    )
    distinct_labels = len({c.plurality_label for c in result.clusters})
    lines.append(
        f"shape check: {consistent}/{len(result.clusters)} clusters majority-"
        f"consistent; {distinct_labels} distinct plurality labels "
        "(paper: clusters internally consistent, >=5 distinct labels)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
