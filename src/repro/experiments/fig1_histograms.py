"""Figure 1: feature-distribution change induced by a port scan.

The paper's Figure 1 shows rank-ordered histograms of destination ports
(upper) and destination addresses (lower) for a normal 5-minute bin and
for the bin containing a port-scan anomaly: ports disperse (many more
distinct ports at similar per-port counts) while addresses concentrate
(one address jumps an order of magnitude above the rest).

We reproduce it by injecting a port scan into a synthetic Abilene OD
flow and reporting the same four histograms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomalies.builders import port_scan
from repro.anomalies.injector import combined_counts
from repro.experiments.cache import get_clean_abilene_week
from repro.flows.features import DST_IP, DST_PORT

__all__ = ["Fig1Result", "run", "format_report"]


@dataclass
class Fig1Result:
    """Rank-ordered histograms before/during the port scan.

    Each array holds packet counts in decreasing rank order.
    """

    dst_port_normal: np.ndarray
    dst_port_anomalous: np.ndarray
    dst_ip_normal: np.ndarray
    dst_ip_anomalous: np.ndarray
    od: int
    bin_normal: int
    bin_anomalous: int
    scan_pps: float


def _rank_ordered(counts: np.ndarray) -> np.ndarray:
    counts = counts[counts > 0]
    return np.sort(counts)[::-1]


def run(
    od: int | None = None, b: int = 700, scan_pps: float = 60.0, seed: int = 3
) -> Fig1Result:
    """Build the Figure-1 histograms.

    Args:
        od: Target OD flow; defaults to the quietest OD flow — the
            paper's example is a low-volume flow where the scan
            dominates the bin (its histogram counts peak around 30).
        b: Bin receiving the scan; ``b - 12`` (one hour earlier) serves
            as the "normal" bin.
        scan_pps: Port-scan intensity.
        seed: Scan construction seed.
    """
    cube, generator = get_clean_abilene_week()
    if od is None:
        od = int(np.argmin(generator.mean_rates))
    stream = generator.od_stream(od)
    b_normal = b - 12
    # victim_rank=0: the scan probes the OD flow's most popular host,
    # so the destination-address distribution concentrates sharply.
    trace = port_scan(np.random.default_rng(seed), pps=scan_pps, victim_rank=0)

    port_bg = stream.histograms[DST_PORT][b]
    ip_bg = stream.histograms[DST_IP][b]
    return Fig1Result(
        dst_port_normal=_rank_ordered(stream.histograms[DST_PORT][b_normal].copy()),
        dst_port_anomalous=_rank_ordered(
            combined_counts(port_bg, trace.contributions[DST_PORT])
        ),
        dst_ip_normal=_rank_ordered(stream.histograms[DST_IP][b_normal].copy()),
        dst_ip_anomalous=_rank_ordered(
            combined_counts(ip_bg, trace.contributions[DST_IP])
        ),
        od=od,
        bin_normal=b_normal,
        bin_anomalous=b,
        scan_pps=scan_pps,
    )


def _summary(name: str, counts: np.ndarray) -> str:
    return (
        f"  {name:<28} distinct={len(counts):>6}  max={counts.max():>9}  "
        f"median={int(np.median(counts)):>6}  total={counts.sum():>9}"
    )


def format_report(result: Fig1Result) -> str:
    """Paper-style summary of the four histograms."""
    lines = [
        "Figure 1 — distribution changes induced by a port scan "
        f"(OD {result.od}, scan {result.scan_pps:.0f} pps)",
        _summary("dstPort  normal", result.dst_port_normal),
        _summary("dstPort  during scan", result.dst_port_anomalous),
        _summary("dstIP    normal", result.dst_ip_normal),
        _summary("dstIP    during scan", result.dst_ip_anomalous),
        "shape check: ports disperse (many more distinct ports), "
        "addresses concentrate (max count explodes):",
        f"  distinct ports  x{len(result.dst_port_anomalous) / len(result.dst_port_normal):.1f}",
        f"  max ip count    x{result.dst_ip_anomalous.max() / result.dst_ip_normal.max():.1f}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
