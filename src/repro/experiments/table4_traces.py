"""Table 4: the known anomaly traces used for injection.

The paper injects three documented attack traces (Table 4): a
single-source DOS at 3.47e5 pps and a multi-source DDOS at 2.75e4 pps
(both from Los Nettos, Hussain et al. [11]) and a worm scan at 141 pps
(Utah ISP, Schechter et al. [32]).  We rebuild each as a parametric
trace at the documented intensity (DESIGN.md §2) and verify the
documented structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anomalies.base import AnomalyTrace
from repro.anomalies.builders import known_traces
from repro.flows.features import DST_IP, SRC_IP

__all__ = ["Table4Row", "run", "format_report"]

_SOURCES = {
    "dos": "Los Nettos 2003 [11] (rebuilt parametrically)",
    "ddos": "Los Nettos 2003 [11] (rebuilt parametrically)",
    "worm": "Utah ISP April 2003 [32] (rebuilt parametrically)",
}

_PAPER_PPS = {"dos": 3.47e5, "ddos": 2.75e4, "worm": 141.0}


@dataclass
class Table4Row:
    """One known trace's headline properties."""

    name: str
    pps: float
    packets: int
    n_sources: int
    n_destinations: int
    data_source: str


def run(seed: int = 0) -> list[Table4Row]:
    """Materialise the Table-4 traces and summarise their structure."""
    rows = []
    for name, trace in known_traces(seed=seed).items():
        rows.append(
            Table4Row(
                name=name,
                pps=trace.pps,
                packets=trace.packets,
                n_sources=trace.contributions[SRC_IP].n_values,
                n_destinations=trace.contributions[DST_IP].n_values,
                data_source=_SOURCES[name],
            )
        )
    return rows


def verify_intensities(rows: list[Table4Row], tolerance: float = 0.01) -> bool:
    """Whether the rebuilt traces match the paper's intensities."""
    for row in rows:
        expected = _PAPER_PPS[row.name]
        if abs(row.pps - expected) / expected > tolerance:
            return False
    return True


def format_report(rows: list[Table4Row]) -> str:
    """Table-4 layout: type, intensity, data source."""
    lines = [
        "Table 4 — known anomaly traces injected",
        f"{'Anomaly':<22} {'pps':>10} {'packets/bin':>12} {'srcs':>6} {'dsts':>6}  source",
    ]
    names = {
        "dos": "Single-Source DOS",
        "ddos": "Multi-Source DDOS",
        "worm": "Worm scan",
    }
    for row in rows:
        lines.append(
            f"{names[row.name]:<22} {row.pps:>10.4g} {row.packets:>12} "
            f"{row.n_sources:>6} {row.n_destinations:>6}  {row.data_source}"
        )
    lines.append(
        f"intensity check vs paper (3.47e5 / 2.75e4 / 141 pps): "
        f"{'PASS' if verify_intensities(rows) else 'FAIL'}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
