"""Figure 6: detecting multi-OD-flow DDOS attacks.

The paper splits the DDOS trace's sources into k groups (k = 2..11),
injects the k sub-traces into k OD flows that share the victim's
destination PoP, and measures the detection rate over all C(11, k)
origin combinations x 11 destination PoPs, at several thinning rates.
Headline result: detection rates *increase* with k — attacks invisible
in any single OD flow are caught network-wide (e.g. 100% detection of
a 1000x-thinned DDOS split over all 11 origins, ~2.5 pps per flow).

We reproduce the construction exactly, sampling origin combinations
when their number exceeds ``max_combos`` (the full enumeration is
C(11,k)*11 experiments per thinning; sampling is noted in the output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.anomalies.builders import ddos
from repro.anomalies.injector import InjectionScorer
from repro.experiments.cache import get_clean_abilene_week
from repro.net.topology import abilene

__all__ = ["Fig6Point", "Fig6Result", "run", "format_report"]

DEFAULT_THINNINGS = (1, 100, 1000, 10_000)


@dataclass
class Fig6Point:
    """Detection rate for one (k, thinning, alpha)."""

    k: int
    thinning: int
    alpha: float
    rate: float
    per_flow_pps: float
    n_experiments: int


@dataclass
class Fig6Result:
    """All Figure-6 curves."""

    points: list[Fig6Point] = field(default_factory=list)

    def curve(self, k: int, alpha: float) -> list[tuple[int, float]]:
        """(thinning, rate) for one k."""
        return sorted(
            (p.thinning, p.rate) for p in self.points if p.k == k and p.alpha == alpha
        )


def run(
    k_values: tuple[int, ...] = tuple(range(2, 12)),
    thinnings: tuple[int, ...] = DEFAULT_THINNINGS,
    alphas: tuple[float, ...] = (0.999, 0.995),
    injection_bin: int = 400,
    max_combos: int = 20,
    seed: int = 0,
) -> Fig6Result:
    """Run the multi-OD DDOS sweep.

    Args:
        k_values: Numbers of participating origin PoPs.
        thinnings: Thinning factors applied to the DDOS trace before
            splitting.
        alphas: Detection confidence levels.
        injection_bin: Clean target bin.
        max_combos: Per (destination, k), at most this many origin
            combinations are evaluated (random subsample, seeded).
        seed: Master seed for trace building, splitting and sampling.
    """
    cube, generator = get_clean_abilene_week()
    topo = abilene()
    scorer = InjectionScorer(cube, generator, alphas=alphas)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 66]))
    base = ddos(np.random.default_rng(seed), pps=2.75e4)

    points = []
    for factor in thinnings:
        thinned = base.thin(factor, seed=seed)
        if thinned.packets < max(k_values):
            continue
        for k in k_values:
            parts = thinned.split_by_sources(k, seed=seed)
            hits = {alpha: 0 for alpha in alphas}
            n = 0
            for dest in range(topo.n_pops):
                # The paper's construction allows any of the 11 PoPs as
                # an origin (including the destination's own PoP).
                combos = list(combinations(range(topo.n_pops), k))
                if len(combos) > max_combos:
                    idx = rng.choice(len(combos), size=max_combos, replace=False)
                    combos = [combos[i] for i in idx]
                for combo in combos:
                    injections = [
                        (topo.od_index(origin, dest), part)
                        for origin, part in zip(combo, parts)
                    ]
                    n += 1
                    for alpha in alphas:
                        out = scorer.score(injection_bin, injections, alpha=alpha)
                        hits[alpha] += out.detected_any
            for alpha in alphas:
                points.append(
                    Fig6Point(
                        k=k,
                        thinning=factor,
                        alpha=alpha,
                        rate=hits[alpha] / max(n, 1),
                        per_flow_pps=thinned.pps / k,
                        n_experiments=n,
                    )
                )
    return Fig6Result(points=points)


def format_report(result: Fig6Result) -> str:
    """Figure-6 curves as rows (one per k, thinning, alpha)."""
    lines = [
        "Figure 6 — multi-OD-flow DDOS detection (k-way source split)",
        f"{'k':>3} {'Thin':>7} {'alpha':>6} {'pps/flow':>10} {'Rate':>6} {'N':>5}",
    ]
    for p in sorted(result.points, key=lambda p: (p.thinning, p.alpha, p.k)):
        lines.append(
            f"{p.k:>3} {p.thinning:>7} {p.alpha:>6} {p.per_flow_pps:>10.3g} "
            f"{p.rate:>6.2f} {p.n_experiments:>5}"
        )
    # Shape check: for a fixed thinning, rate should not decrease with k.
    for alpha in {p.alpha for p in result.points}:
        for thin in {p.thinning for p in result.points}:
            series = [
                p.rate
                for p in sorted(result.points, key=lambda q: q.k)
                if p.alpha == alpha and p.thinning == thin
            ]
            if len(series) >= 2:
                trend = "rising" if series[-1] >= series[0] else "falling"
                lines.append(
                    f"shape check thin={thin} alpha={alpha}: rate k=min..max "
                    f"{series[0]:.2f}->{series[-1]:.2f} ({trend}; paper: larger k detects better)"
                )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
