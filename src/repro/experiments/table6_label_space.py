"""Table 6: where each anomaly type lives in entropy space.

The paper's Table 6 gives, per manually-assigned label, the mean +/-
standard deviation of the anomalies' positions along each residual-
entropy axis, with asterisks marking means more than one (two) standard
deviations from zero.  It is the evidence that labels occupy distinct,
semantically sensible regions (port scans: dispersed dstPort and
concentrated dstIP; network scans: dispersed srcPort, concentrated
dstPort; etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import label_statistics
from repro.experiments.cache import get_abilene_diagnosis

__all__ = ["Table6Row", "Table6Result", "run", "format_report"]


@dataclass
class Table6Row:
    """One label's distribution in entropy space."""

    label: str
    count: int
    mean: np.ndarray
    std: np.ndarray

    def stars(self, axis: int) -> str:
        """'' / '*' / '**' as the mean exceeds 1 / 2 stds from zero."""
        std = self.std[axis] if self.std[axis] > 0 else 1e-12
        ratio = abs(self.mean[axis]) / std
        if ratio > 2:
            return "**"
        if ratio > 1:
            return "*"
        return ""


@dataclass
class Table6Result:
    """All Table-6 rows."""

    rows: list[Table6Row] = field(default_factory=list)


def run() -> Table6Result:
    """Compute per-label entropy-space statistics on Abilene detections."""
    report = get_abilene_diagnosis()
    anomalies = [a for a in report.anomalies if a.detected_by_entropy]
    points = np.vstack([a.unit_vector for a in anomalies])
    labels = [a.label or "unknown" for a in anomalies]
    stats = label_statistics(points, labels)
    rows = [
        Table6Row(label=label, count=count, mean=mean, std=std)
        for label, (count, mean, std) in stats.items()
    ]
    rows.sort(key=lambda r: r.count, reverse=True)
    return Table6Result(rows=rows)


def format_report(result: Table6Result) -> str:
    """Table-6 layout: center +/- std per axis, with asterisks."""
    lines = [
        "Table 6 — label distributions in entropy space (center +/- std)",
        f"{'Label':<18} {'n':>5}  "
        + "  ".join(f"{name:^16}" for name in ("H~srcIP", "H~srcPort", "H~dstIP", "H~dstPort")),
    ]
    for row in result.rows:
        cells = []
        for axis in range(4):
            cells.append(
                f"{row.mean[axis]:+.2f}±{row.std[axis]:.2f}{row.stars(axis):<2}"
            )
        lines.append(f"{row.label:<18} {row.count:>5}  " + "  ".join(f"{c:^16}" for c in cells))
    by_label = {r.label: r for r in result.rows}
    checks = []
    if "port_scan" in by_label:
        r = by_label["port_scan"]
        checks.append(f"port_scan dstPort mean {r.mean[3]:+.2f} (paper: strongly +)")
        checks.append(f"port_scan dstIP mean {r.mean[2]:+.2f} (paper: -)")
    if "network_scan" in by_label:
        r = by_label["network_scan"]
        checks.append(f"network_scan srcPort mean {r.mean[1]:+.2f} (paper: strongly +)")
    if "alpha" in by_label:
        r = by_label["alpha"]
        checks.append(f"alpha srcIP mean {r.mean[0]:+.2f} (paper: -)")
    lines.append("shape check: " + "; ".join(checks))
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
