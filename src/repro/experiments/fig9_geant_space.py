"""Figure 9: Geant anomalies in entropy space (3-D views, 10 clusters).

The paper's Figure 9 shows the Geant anomalies in four 3-D projections
of entropy space with 10-cluster hierarchical clustering; clusters
appear as tight "clumps" (bounded in three dimensions) or "bands"
(bounded in two).  We reproduce the clustering and classify each
cluster as clump/band/diffuse by counting its tightly-bounded axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.cache import get_geant_diagnosis

__all__ = ["Fig9Result", "run", "format_report"]


@dataclass
class Fig9Result:
    """Geant anomalies with 10-way clustering.

    Attributes:
        points: ``(n, 4)`` unit vectors.
        clusters: Cluster per anomaly.
        kinds: Per-cluster geometry: "clump" (tight in >=3 axes),
            "band" (tight in 2), "diffuse" otherwise.
    """

    points: np.ndarray
    clusters: np.ndarray
    kinds: dict[int, str]


def run(tight_std: float = 0.2) -> Fig9Result:
    """Cluster the Geant detections and classify cluster geometry."""
    report = get_geant_diagnosis()
    anomalies = [a for a in report.anomalies if a.detected_by_entropy]
    points = np.vstack([a.unit_vector for a in anomalies])
    clusters = np.array([a.cluster for a in anomalies])
    kinds = {}
    for c in np.unique(clusters):
        sub = points[clusters == c]
        tight = int((sub.std(axis=0) < tight_std).sum()) if len(sub) > 1 else 4
        kinds[int(c)] = "clump" if tight >= 3 else ("band" if tight == 2 else "diffuse")
    return Fig9Result(points=points, clusters=clusters, kinds=kinds)


def format_report(result: Fig9Result) -> str:
    """Cluster geometry table for the 3-D views."""
    lines = [
        f"Figure 9 — Geant anomalies in entropy space ({len(result.points)} points, "
        f"{len(result.kinds)} clusters)",
        f"{'cluster':>8} {'n':>5} {'geometry':>9}  centre (srcIP, srcPort, dstIP, dstPort)",
    ]
    for c in sorted(result.kinds):
        sub = result.points[result.clusters == c]
        mean = sub.mean(axis=0)
        lines.append(
            f"{c:>8} {len(sub):>5} {result.kinds[c]:>9}  "
            f"({mean[0]:+.2f}, {mean[1]:+.2f}, {mean[2]:+.2f}, {mean[3]:+.2f})"
        )
    n_localized = sum(1 for kind in result.kinds.values() if kind != "diffuse")
    lines.append(
        f"shape check: {n_localized}/{len(result.kinds)} clusters localized "
        "(clumps/bands), as in the paper's 3-D views"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
