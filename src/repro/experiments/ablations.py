"""Ablations on the design choices DESIGN.md calls out.

Three studies beyond the paper's headline experiments:

* **normalisation** — unit-energy scaling of the unfolded matrix
  computed on raw vs. mean-centred blocks (the paper's wording admits
  both readings; DESIGN.md §2 explains our default).
* **subspace dimension** — detections vs. the number of normal
  components m (the paper picked m=10 at the variance knee).
* **clustering robustness** — the paper claims results are insensitive
  to the clustering algorithm; we quantify via the Rand agreement rate
  between k-means and hierarchical clusterings (and across linkages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import agreement_rate, hierarchical, kmeans
from repro.core.multiway import MultiwaySubspaceDetector
from repro.experiments.cache import get_abilene, get_abilene_diagnosis

__all__ = [
    "NormalizationAblation",
    "SubspaceDimAblation",
    "ClusteringAblation",
    "run_normalization",
    "run_subspace_dim",
    "run_clustering",
    "format_report",
]


@dataclass
class NormalizationAblation:
    """Detections and variance profile under each normalisation mode."""

    detections: dict[str, int] = field(default_factory=dict)
    variance_at_10: dict[str, float] = field(default_factory=dict)


def run_normalization(alpha: float = 0.999) -> NormalizationAblation:
    """Compare "variance" vs "raw" unit-energy normalisation."""
    cube = get_abilene().cube
    result = NormalizationAblation()
    for mode in ("variance", "raw"):
        det = MultiwaySubspaceDetector(normalization=mode, identify=False)
        det.fit(cube.entropy)
        result.detections[mode] = int(det.score(cube.entropy).n_detections)
        result.variance_at_10[mode] = float(det.model.pca.variance_captured(10))
    return result


@dataclass
class SubspaceDimAblation:
    """Detections as a function of the normal-subspace dimension m."""

    detections_by_m: dict[int, int] = field(default_factory=dict)
    variance_by_m: dict[int, float] = field(default_factory=dict)
    knee_85: int = 0


def run_subspace_dim(
    m_values: tuple[int, ...] = (2, 4, 6, 8, 10, 14, 20, 30),
    alpha: float = 0.999,
) -> SubspaceDimAblation:
    """Sweep the number of normal components."""
    cube = get_abilene().cube
    result = SubspaceDimAblation()
    for m in m_values:
        det = MultiwaySubspaceDetector(n_components=m, identify=False)
        det.fit(cube.entropy)
        result.detections_by_m[m] = int(det.score(cube.entropy).n_detections)
        result.variance_by_m[m] = float(det.model.pca.variance_captured(m))
    det = MultiwaySubspaceDetector(identify=False).fit(cube.entropy)
    result.knee_85 = int(det.model.pca.knee(0.85))
    return result


@dataclass
class ClusteringAblation:
    """Pairwise Rand agreement between clustering configurations."""

    agreements: dict[tuple[str, str], float] = field(default_factory=dict)
    k: int = 10


def run_clustering(k: int = 10, rng_seed: int = 0) -> ClusteringAblation:
    """Cluster the same anomalies with every algorithm/linkage pair."""
    report = get_abilene_diagnosis()
    anomalies = [a for a in report.anomalies if a.detected_by_entropy]
    X = np.vstack([a.unit_vector for a in anomalies])
    k = min(k, len(X))
    labelings = {
        "kmeans": kmeans(X, k, rng=rng_seed).labels,
        "hier/single": hierarchical(X, k, linkage="single").labels,
        "hier/average": hierarchical(X, k, linkage="average").labels,
        "hier/complete": hierarchical(X, k, linkage="complete").labels,
        "hier/ward": hierarchical(X, k, linkage="ward").labels,
    }
    result = ClusteringAblation(k=k)
    names = sorted(labelings)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            result.agreements[(a, b)] = agreement_rate(labelings[a], labelings[b])
    return result


def format_report(
    norm: NormalizationAblation,
    dims: SubspaceDimAblation,
    clust: ClusteringAblation,
) -> str:
    """All three ablations in one report."""
    lines = ["Ablations"]
    lines.append("1. unit-energy normalisation mode:")
    for mode in norm.detections:
        lines.append(
            f"   {mode:<9} detections={norm.detections[mode]:>5}  "
            f"variance@10PCs={norm.variance_at_10[mode]:.3f}"
        )
    lines.append("2. normal-subspace dimension (paper: m=10, 85% variance knee):")
    for m, n in dims.detections_by_m.items():
        lines.append(
            f"   m={m:>2}  detections={n:>5}  variance={dims.variance_by_m[m]:.3f}"
        )
    lines.append(f"   85%-variance knee at m={dims.knee_85}")
    lines.append(
        f"3. clustering algorithm agreement (Rand index, k={clust.k}; "
        "paper: results insensitive to algorithm):"
    )
    for (a, b), rate in clust.agreements.items():
        lines.append(f"   {a:<14} vs {b:<14} {rate:.3f}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run_normalization(), run_subspace_dim(), run_clustering()))
