"""Table 5: injected anomaly intensity at each thinning factor.

The paper thins each known trace by keeping 1 of every N packets and
reports the resulting intensity in pps and as a percentage of the
average OD flow's traffic (2068 pps for the chosen Abilene timebin).
The thinning grid differs per trace: the worm (already tiny) uses
{0, 10, 100, 500, 1000}; the DOS traces go to 1e5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anomalies.builders import known_traces
from repro.experiments.cache import get_clean_abilene_week

__all__ = ["Table5Cell", "Table5Result", "THINNING_GRID", "run", "format_report"]

#: Thinning factors per trace, as in the paper's Table 5 (0 = no thinning).
THINNING_GRID: dict[str, tuple[int, ...]] = {
    "dos": (1, 10, 100, 1000, 10_000, 100_000),
    "ddos": (1, 10, 100, 1000, 10_000, 100_000),
    "worm": (1, 10, 100, 500, 1000),
}


@dataclass
class Table5Cell:
    """Intensity of one (trace, thinning) combination."""

    trace: str
    thinning: int
    pps: float
    percent_of_od: float


@dataclass
class Table5Result:
    """All Table-5 cells plus the background OD rate used."""

    cells: list[Table5Cell] = field(default_factory=list)
    mean_od_pps: float = 0.0


def run(seed: int = 0) -> Table5Result:
    """Thin each known trace over its grid and compute intensities."""
    cube, _ = get_clean_abilene_week()
    mean_pps = cube.mean_od_pps()
    traces = known_traces(seed=seed)
    cells = []
    for name, grid in THINNING_GRID.items():
        trace = traces[name]
        for factor in grid:
            thinned = trace.thin(factor, seed=seed)
            pps = thinned.pps
            cells.append(
                Table5Cell(
                    trace=name,
                    thinning=factor,
                    pps=pps,
                    percent_of_od=100.0 * pps / (pps + mean_pps),
                )
            )
    return Table5Result(cells=cells, mean_od_pps=mean_pps)


def format_report(result: Table5Result) -> str:
    """Table-5 layout: per thinning factor, pps and % of OD traffic."""
    lines = [
        "Table 5 — intensity of injected anomalies vs thinning "
        f"(mean OD rate {result.mean_od_pps:.0f} pps; paper: 2068 pps)",
        f"{'Trace':<8} {'Thinning':>9} {'pps':>12} {'% of OD':>9}",
    ]
    for cell in result.cells:
        lines.append(
            f"{cell.trace:<8} {cell.thinning:>9} {cell.pps:>12.4g} "
            f"{cell.percent_of_od:>8.3g}%"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
