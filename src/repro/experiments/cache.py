"""Shared, memoised datasets for the experiment suite.

Several experiments (and their benchmarks) consume the same labeled
datasets; generating one takes tens of seconds, so they are built once
per process and reused.  Scales follow DESIGN.md: Abilene at the
paper's full 3 weeks, Geant at 1 week (its 484 OD flows make the full
3 weeks ~5x more expensive; the experiment modules accept ``weeks``
overrides for full-scale runs).
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.labeled import LabeledDataset, abilene_dataset, geant_dataset
from repro.flows.binning import TimeBins
from repro.net.topology import abilene
from repro.traffic.generator import TrafficGenerator

__all__ = [
    "ABILENE_WEEKS",
    "GEANT_WEEKS",
    "get_abilene",
    "get_geant",
    "get_clean_abilene_week",
]

ABILENE_WEEKS = 3.0
GEANT_WEEKS = 1.0


@lru_cache(maxsize=2)
def get_abilene(weeks: float = ABILENE_WEEKS, seed: int = 0) -> LabeledDataset:
    """The labeled Abilene-like dataset (memoised)."""
    return abilene_dataset(weeks=weeks, seed=seed)


@lru_cache(maxsize=2)
def get_geant(weeks: float = GEANT_WEEKS, seed: int = 100) -> LabeledDataset:
    """The labeled Geant-like dataset (memoised)."""
    return geant_dataset(weeks=weeks, seed=seed)


@lru_cache(maxsize=2)
def get_abilene_diagnosis(alpha: float = 0.999, n_clusters: int = 10):
    """Full diagnosis (detect + identify + classify) of the Abilene dataset."""
    from repro.core.detector import AnomalyDiagnosis

    data = get_abilene()
    diag = AnomalyDiagnosis(alpha=alpha, n_clusters=n_clusters)
    return diag.diagnose(data.cube, labels_by_bin=data.labels_by_bin)


@lru_cache(maxsize=2)
def get_geant_diagnosis(alpha: float = 0.999, n_clusters: int = 10):
    """Full diagnosis of the Geant dataset."""
    from repro.core.detector import AnomalyDiagnosis

    data = get_geant()
    diag = AnomalyDiagnosis(alpha=alpha, n_clusters=n_clusters)
    return diag.diagnose(data.cube, labels_by_bin=data.labels_by_bin)


@lru_cache(maxsize=1)
def get_clean_abilene_week(seed: int = 7):
    """A clean (anomaly-free) 1-week Abilene cube + its generator.

    Used by the injection sweeps (Figures 5-7), which need a clean
    baseline to fit detectors on.
    """
    generator = TrafficGenerator(abilene(), TimeBins.for_weeks(1), seed=seed)
    cube = generator.generate()
    return cube, generator
