"""Baseline comparison: subspace + entropy vs classical volume detectors.

The paper's related work (Section 2) argues that volume-based schemes
— time-series forecasting a la Brutlag [4], signal analysis a la
Barford et al. [3] — catch large volume changes but miss the
distributional anomalies entropy exposes.  This experiment makes the
claim quantitative on the labeled Abilene dataset: every detector is
scored against ground truth (precision / recall / per-type recall).

Expected shape: the classical baselines behave like the volume
subspace (good on alphas/DOS/outages, blind to scans and
point-to-multipoint); only the entropy pipeline reaches the low-volume
types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import EWMADetector, HoltWintersDetector, WaveletVarianceDetector, detect_matrix
from repro.core.detector import AnomalyDiagnosis
from repro.core.metrics import ConfusionCounts, score_detections
from repro.experiments.cache import get_abilene

__all__ = ["BaselineRow", "BaselineComparison", "run", "format_report"]

_LOW_VOLUME_TYPES = ("port_scan", "network_scan", "worm", "point_multipoint")


@dataclass
class BaselineRow:
    """Scores for one detector."""

    name: str
    counts: ConfusionCounts
    low_volume_recall: float
    n_detections: int


@dataclass
class BaselineComparison:
    """All detector rows."""

    rows: list[BaselineRow] = field(default_factory=list)


def _recall_on(events, detected: set[int]) -> float:
    if not events:
        return 0.0
    return sum(1 for e in events if e.bin in detected) / len(events)


def run(alpha: float = 0.999) -> BaselineComparison:
    """Score subspace volume / multiway entropy / EWMA / HW / wavelet."""
    data = get_abilene()
    cube = data.cube
    truth_bins = [e.bin for e in data.schedule.events]
    low_volume = [e for e in data.schedule.events if e.label in _LOW_VOLUME_TYPES]

    diag = AnomalyDiagnosis(alpha=alpha, identify=False)
    volume_bins = set(int(b) for b in diag.detect_volume(cube))
    entropy_bins = {d.bin for d in diag.detect_entropy(cube)}

    detectors = {
        "ewma(volume)": EWMADetector(alpha=0.2, n_sigmas=5.0),
        "holt-winters(volume)": HoltWintersDetector(),
        "wavelet(volume)": WaveletVarianceDetector(),
    }
    flagged = {
        name: set(np.flatnonzero(detect_matrix(det, cube.packets)).tolist())
        for name, det in detectors.items()
    }
    flagged["subspace(volume)"] = volume_bins
    flagged["multiway(entropy)"] = entropy_bins
    flagged["volume+entropy"] = volume_bins | entropy_bins

    rows = []
    for name in (
        "ewma(volume)",
        "holt-winters(volume)",
        "wavelet(volume)",
        "subspace(volume)",
        "multiway(entropy)",
        "volume+entropy",
    ):
        detected = flagged[name]
        rows.append(
            BaselineRow(
                name=name,
                counts=score_detections(detected, truth_bins, cube.n_bins),
                low_volume_recall=_recall_on(low_volume, detected),
                n_detections=len(detected),
            )
        )
    return BaselineComparison(rows=rows)


def format_report(result: BaselineComparison) -> str:
    """Precision / recall table across detectors."""
    lines = [
        "Baseline comparison on labeled Abilene (bin-level vs ground truth)",
        f"{'Detector':<22} {'Flags':>6} {'Prec':>6} {'Recall':>7} "
        f"{'F1':>6} {'LowVolRecall':>13}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.name:<22} {row.n_detections:>6} {row.counts.precision:>6.2f} "
            f"{row.counts.recall:>7.2f} {row.counts.f1:>6.2f} "
            f"{row.low_volume_recall:>13.2f}"
        )
    by_name = {r.name: r for r in result.rows}
    naive = [r for r in result.rows if r.name.split("(")[0] in ("ewma", "holt-winters", "wavelet")]
    lines.append(
        "shape check: per-flow forecasting baselines only reach the "
        "low-volume anomalies by flooding the operator "
        f"(precision {min(r.counts.precision for r in naive):.2f}-"
        f"{max(r.counts.precision for r in naive):.2f}); the network-wide "
        f"subspace methods keep precision ~{by_name['volume+entropy'].counts.precision:.2f} "
        f"and entropy supplies the low-volume recall "
        f"({by_name['subspace(volume)'].low_volume_recall:.2f} -> "
        f"{by_name['volume+entropy'].low_volume_recall:.2f})"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_report(run()))
