"""I/O layer: persistent artifacts of the measurement pipeline.

Three kinds of artifact live here:

* **traffic cubes** (:mod:`repro.io.cube`) — the reduced ``(t, p)``
  volume matrices and ``(t, p, 4)`` entropy tensor, one ``.npz`` file;
* **diagnosis reports** (:mod:`repro.io.cube`) — CSV / JSON exports of
  diagnosed anomalies for downstream tooling;
* **flow-record traces** (:mod:`repro.io.trace`) — the raw measurement
  input itself, stored once in a columnar binary format and replayed
  zero-copy through ``mmap`` by any number of consumers (the streaming
  engine, the batch pipeline, every shard of a cluster).

Importing from ``repro.io`` keeps working exactly as it did when this
was a single module.
"""

from repro.io.cube import (
    load_cube,
    report_summary,
    report_to_rows,
    save_cube,
    write_report_csv,
    write_report_json,
)
from repro.io.trace import (
    TraceError,
    TraceInfo,
    TraceReader,
    TraceWriter,
    trace_info,
    verify_trace,
    write_trace,
)

__all__ = [
    "save_cube",
    "load_cube",
    "report_to_rows",
    "write_report_csv",
    "report_summary",
    "write_report_json",
    "TraceError",
    "TraceInfo",
    "TraceReader",
    "TraceWriter",
    "trace_info",
    "verify_trace",
    "write_trace",
]
