"""Persistence: save/load traffic cubes and export diagnosis reports.

A downstream user wants to generate a dataset once, keep it on disk,
and export detections for their ticketing/monitoring stack.  Formats:

* traffic cubes  -> a single ``.npz`` (arrays + bin grid + name),
* diagnosis reports -> CSV (one row per diagnosed anomaly) and a
  JSON-serialisable dict (summary + clusters) for dashboards.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.core.detector import DiagnosisReport
from repro.flows.binning import TimeBins
from repro.flows.odflows import TrafficCube

__all__ = ["save_cube", "load_cube", "report_to_rows", "write_report_csv", "report_summary", "write_report_json"]

_FORMAT_VERSION = 1


def save_cube(cube: TrafficCube, path: str | Path) -> Path:
    """Save a cube to ``.npz`` (appends the suffix if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        version=np.array([_FORMAT_VERSION]),
        packets=cube.packets,
        bytes=cube.bytes,
        entropy=cube.entropy,
        bins=np.array([cube.bins.n_bins, cube.bins.width, cube.bins.start]),
        network=np.array([cube.network]),
    )
    return path


def load_cube(path: str | Path) -> TrafficCube:
    """Load a cube saved by :func:`save_cube`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported cube format version {version}")
        n_bins, width, start = data["bins"]
        bins = TimeBins(n_bins=int(n_bins), width=float(width), start=float(start))
        return TrafficCube(
            bins=bins,
            n_od_flows=data["packets"].shape[1],
            packets=data["packets"],
            bytes=data["bytes"],
            entropy=data["entropy"],
            network=str(data["network"][0]),
        )


def report_to_rows(report: DiagnosisReport) -> list[dict]:
    """Flatten a diagnosis report to one dict per anomaly (CSV-ready)."""
    rows = []
    for anom in report.anomalies:
        rows.append(
            {
                "bin": anom.bin,
                "od": anom.od,
                "detected_by_volume": int(anom.detected_by_volume),
                "detected_by_entropy": int(anom.detected_by_entropy),
                "spe_entropy": f"{anom.spe_entropy:.6g}",
                "cluster": anom.cluster,
                "label": anom.label,
                "h_src_ip": f"{anom.unit_vector[0]:.4f}",
                "h_src_port": f"{anom.unit_vector[1]:.4f}",
                "h_dst_ip": f"{anom.unit_vector[2]:.4f}",
                "h_dst_port": f"{anom.unit_vector[3]:.4f}",
            }
        )
    return rows


def write_report_csv(report: DiagnosisReport, path: str | Path) -> Path:
    """Write the per-anomaly rows as CSV; returns the path."""
    path = Path(path)
    rows = report_to_rows(report)
    fieldnames = list(rows[0].keys()) if rows else ["bin"]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def report_summary(report: DiagnosisReport) -> dict:
    """JSON-serialisable summary: counts + per-cluster descriptions."""
    clusters = []
    for summary in report.clusters:
        clusters.append(
            {
                "size": summary.size,
                "signature": "".join(summary.signature),
                "mean": [round(float(v), 4) for v in summary.mean],
                "plurality_label": summary.plurality_label,
                "plurality_count": summary.plurality_count,
                "n_unknown": summary.n_unknown,
            }
        )
    summary = {"counts": report.counts(), "clusters": clusters}
    if report.meta:
        summary["meta"] = dict(report.meta)
    return summary


def write_report_json(report: DiagnosisReport, path: str | Path) -> Path:
    """Write the JSON summary; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report_summary(report), indent=2) + "\n")
    return path
