"""Columnar flow-record trace store with zero-copy mmap replay.

The measurement pipeline consumes NetFlow-style records at network-wide
scale; regenerating them synthetically for every run (and in every
cluster worker) made record *production* the end-to-end bottleneck once
the kernel-backed reduction crossed ~2M records/s.  This module makes a
trace a first-class on-disk artifact: write it once, replay it as many
times as needed — from one process or from every shard of a cluster —
at memory-bandwidth speed.

File layout (all integers little-endian)::

    offset 0   : magic  b"RPROTRC1"
    offset 8   : uint64 header length H (JSON bytes, space-padded to 8)
    offset 16  : header JSON (version, n_records, n_bins, bin grid,
                 column dtype table, network + provenance metadata)
    offset 16+H: bin-offset index, int64[n_bins + 1] — records of bin b
                 occupy rows [index[b], index[b+1])
    then       : the nine FlowRecordBatch columns, each one contiguous
                 packed array of n_records values, in column order
    then       : (version 2 only) five derived columns — the resolved
                 OD index and, per feature, the record's bin-local run
                 index in the kernel's canonical (od, value) grouped
                 order — declared by the header's additive ``derived``
                 table (column names, dtypes, CRCs, anonymization
                 depth), same slab layout as the base columns

The derived columns are what :mod:`repro.stream.replay` consumes to
skip longest-prefix OD attribution and the per-bin stable sort during
detection replay; version-1 traces stay fully readable (replay falls
back to computing both on the fly) and :func:`upgrade_trace` /
``repro trace upgrade`` backfills them in place.

Because every column is a single contiguous slab, a reader can
``mmap`` the file and hand out :class:`FlowRecordBatch` chunks whose
columns are array *views* into the mapping — no copies, no
deserialization, RSS bounded by the touched pages regardless of trace
size.

Fault tolerance: the writer records a CRC32 per column slab in the
header (``column_crcs``; an additive key — older traces parse fine,
they just can't be verified), and :func:`verify_trace` /
``repro trace info --verify`` recompute them to catch silent
corruption.  A trace cut off mid-write — a capture that lost power, a
copy that died — normally fails the size check, but
``TraceReader(path, allow_partial=True)`` (and ``--allow-partial`` on
the CLI) instead recovers every bin whose rows survive in *all nine*
column slabs: truncation eats the file tail, so the damage lands at
the end of the last slabs and the recoverable prefix is the minimum
complete row count across columns, rounded down to a whole bin.  The writer validates that every appended record's timestamp
falls inside its declared bin (so replay re-bins records exactly where
the index says they are); records within a bin are stored in append
order — time-sorted when written from the synthetic stream, and
order-independent for the downstream reduction either way.

:class:`TraceWriter` keeps its own memory bounded too: appended batches
are spooled column-wise to temporary files and concatenated into the
final single file on close, so writing a trace never holds more than
one batch in RAM.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import zlib
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro import telemetry as tel
from repro.flows.binning import BIN_SECONDS, TimeBins
from repro.flows.features import FEATURES
from repro.flows.records import COLUMN_SPEC, FlowRecordBatch
from repro.kernels import sort_order

__all__ = [
    "TraceError",
    "TraceInfo",
    "TraceWriter",
    "TraceReader",
    "derive_columns",
    "write_trace",
    "trace_info",
    "upgrade_trace",
    "verify_trace",
]

MAGIC = b"RPROTRC1"
TRACE_VERSION = 1
#: Traces carrying the precomputed derived columns (resolved OD index +
#: per-feature bin-local run indices) after the base slabs.  Version-1
#: files remain fully readable; version-2 files add the ``derived``
#: header key the same additive way ``column_crcs`` was added.
TRACE_VERSION_DERIVED = 2
_SUPPORTED_VERSIONS = (TRACE_VERSION, TRACE_VERSION_DERIVED)

#: Wire dtypes per column, little-endian (int64 columns -> "<i8",
#: the timestamp column -> "<f8"), derived from the batch schema.
_WIRE_DTYPES = tuple(
    (name, "<f8" if dtype == np.float64 else "<i8") for name, dtype in COLUMN_SPEC
)

#: Derived (precomputed) columns, stored after the base slabs: the
#: record's resolved OD flow, then — per feature — the record's run
#: index in its bin's canonical (od, value)-sorted grouped order
#: (-1 for zero-packet records the kernel drops).  Replay rebuilds the
#: kernel's exact per-bin histograms from these with one ``bincount``
#: per feature: no longest-prefix attribution, no stable sort.
DERIVED_COLUMNS = ("od",) + tuple(f"runid_{name}" for name in FEATURES)
_DERIVED_DTYPES = tuple((name, "<i8") for name in DERIVED_COLUMNS)
_ITEM_SIZE = 8

#: Telemetry page-fault proxy: one probe per 4 KiB page of int64 items.
_PAGE_STRIDE = 4096 // _ITEM_SIZE


class TraceError(ValueError):
    """A trace file is missing, truncated, or malformed.

    Subclasses ``ValueError`` so existing CLI error handling (exit code
    2 with a one-line message) applies without special cases.
    """


class TraceInfo:
    """Parsed header of a trace file (cheap; no column data touched).

    Attributes:
        path: The trace file.
        n_records: Readable records (equals ``declared_records`` unless
            the trace was recovered from a truncated tail).
        n_bins: Readable complete time bins.
        bins: The :class:`TimeBins` grid records were binned on.
        network: Generating topology name ("" when unknown).
        meta: Free-form provenance dict (generator seed, record caps,
            config fingerprint, ...).
        bin_counts: ``(n_bins,)`` records per bin.
        declared_records: Record count the header claims the file holds.
        truncated: The file tail is missing and this info describes the
            recovered complete-bin prefix (``allow_partial=True``).
        dropped_records: Declared records lost to the truncation.
        column_crcs: Per-column slab CRC32s from the header (None for
            traces written before checksums existed).
    """

    def __init__(
        self,
        path: Path,
        header: dict,
        bin_offsets: np.ndarray,
        truncated: bool = False,
    ) -> None:
        self.path = path
        self.declared_records = int(header["n_records"])
        # Under partial recovery the offsets describe the readable
        # complete-bin prefix, not the full declared grid.
        self.n_records = int(bin_offsets[-1])
        self.n_bins = len(bin_offsets) - 1
        self.truncated = bool(truncated)
        self.dropped_records = self.declared_records - self.n_records
        crcs = header.get("column_crcs")
        self.column_crcs = None if crcs is None else [int(c) for c in crcs]
        self.version = int(header.get("version", TRACE_VERSION))
        #: Derived-column header block (column table, CRCs, the
        #: anonymization depth the run ids were computed under), or
        #: None for version-1 traces and truncated tails that lost the
        #: derived slabs.
        self.derived = dict(header["derived"]) if "derived" in header else None
        grid = header["bins"]
        self.bins = TimeBins(
            n_bins=self.n_bins, width=float(grid["width"]), start=float(grid["start"])
        )
        self.network = str(header.get("network", ""))
        self.meta = dict(header.get("meta", {}))
        self.bin_offsets = bin_offsets
        self.bin_counts = np.diff(bin_offsets)

    def ensure_compatible(
        self,
        network: str | None = None,
        min_bins: int | None = None,
        bin_width: float | None = None,
        start: float | None = None,
    ) -> None:
        """Validate this trace against a consumer's expectations.

        The one compatibility check every replay entry point shares
        (engine, cluster runner, CLI) — raising here beats silently
        re-binning another network's (or another grid's) records.

        Args:
            network: Topology name the consumer is configured for
                (skipped when either side is unknown/empty).
            min_bins: Bins the consumer intends to stream.
            bin_width / start: The consumer's bin grid; replaying onto
                a different grid would re-bin records by timestamp and
                silently change every per-bin feature.

        Raises:
            ValueError: On any mismatch, naming trace and expectation.
        """
        if network and self.network and self.network.lower() != network.lower():
            raise ValueError(
                f"trace {self.path} was recorded on {self.network!r}, "
                f"not {network!r}"
            )
        if min_bins is not None and min_bins > self.n_bins:
            raise ValueError(
                f"trace {self.path} covers {self.n_bins} bins, "
                f"cannot stream {min_bins}"
            )
        if bin_width is not None and bin_width != self.bins.width:
            raise ValueError(
                f"trace {self.path} was binned on {self.bins.width:g}s bins, "
                f"consumer expects {bin_width:g}s"
            )
        if start is not None and start != self.bins.start:
            raise ValueError(
                f"trace {self.path} starts at t={self.bins.start:g}, "
                f"consumer expects t={start:g}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceInfo({self.path.name}: {self.n_records} records, "
            f"{self.n_bins} bins, network={self.network!r})"
        )


def _pad_header(payload: bytes) -> bytes:
    """Space-pad the header JSON to an 8-byte boundary.

    Padding with trailing spaces keeps ``json.loads`` happy while the
    column slabs that follow stay 8-byte aligned for aliasing-free
    ``frombuffer`` views.
    """
    pad = (-len(payload)) % _ITEM_SIZE
    return payload + b" " * pad


def derive_columns(
    batch: FlowRecordBatch, router, anonymization_bits: int
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Precompute one bin's derived columns: ``(ods, runids)``.

    ``ods`` is the longest-prefix OD attribution the feature stage would
    resolve for each record; ``runids[k]`` is, per record, the index of
    the record's ``(od, anonymized value)`` run in the bin's canonical
    grouped order for feature ``k`` — the exact order
    :func:`repro.kernels.group_reduce` produces, so replay can rebuild
    each feature's count runs with one ``bincount`` instead of a stable
    sort.  Zero-packet records (dropped by the kernel) get run id -1.

    ``batch`` must be one whole bin: run indices are bin-local.
    """
    ods = np.asarray(
        router.resolve_ods_mixed(batch.ingress_pop, batch.dst_ip), dtype=np.int64
    )
    anon = batch.anonymized(anonymization_bits) if anonymization_bits else batch
    weights = np.asarray(batch.packets, dtype=np.int64)
    keep = weights > 0
    all_kept = bool(keep.all())
    kept_idx = None if all_kept else np.flatnonzero(keep)
    runids: list[np.ndarray] = []
    for name in FEATURES:
        values = np.asarray(getattr(anon, name), dtype=np.int64)
        g = ods if all_kept else ods[kept_idx]
        v = values if all_kept else values[kept_idx]
        order = sort_order(g, v)
        gs, vs = g[order], v[order]
        new_run = np.empty(len(gs), dtype=bool)
        if len(gs):
            new_run[0] = True
            np.logical_or(gs[1:] != gs[:-1], vs[1:] != vs[:-1], out=new_run[1:])
        rid_sorted = np.cumsum(new_run) - 1
        rid = np.full(len(batch), -1, dtype=np.int64)
        if all_kept:
            rid[order] = rid_sorted
        else:
            rid[kept_idx[order]] = rid_sorted
        runids.append(rid)
    return ods, runids


class TraceWriter:
    """Stream record batches into a columnar trace file.

    Batches must arrive in nondecreasing bin order (several appends per
    bin are fine; bins with no records are fine).  Each appended batch
    is spooled to per-column temp files next to the target path, so
    writer RSS stays bounded by one batch; :meth:`close` assembles the
    final single file and removes the spools.

    Usage::

        with TraceWriter(path, n_bins=72, network="abilene") as writer:
            for b, batch in enumerate(per_bin_batches):
                writer.append(b, batch)
        info = writer.info
    """

    def __init__(
        self,
        path: str | Path,
        n_bins: int,
        bin_width: float = BIN_SECONDS,
        start: float = 0.0,
        network: str = "",
        meta: dict | None = None,
        derive: bool = False,
        topology=None,
    ) -> None:
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        self.path = Path(path)
        self.n_bins = int(n_bins)
        self.bin_width = float(bin_width)
        self.start = float(start)
        self.network = network
        self.meta = dict(meta or {})
        self.derive = bool(derive)
        self._router = None
        self._anon_bits = 0
        #: Open bin's batches, buffered until the bin closes: run
        #: indices are bin-local, so derivation needs the whole bin.
        self._pending: list[FlowRecordBatch] = []
        self._pending_bin = -1
        if self.derive:
            from repro.net.routing import Router
            from repro.net.topology import topology_by_name

            if topology is None:
                topology = topology_by_name(network)
            self.network = network or topology.name
            self._router = Router(topology)
            self._anon_bits = int(topology.anonymization_bits)
        n_columns = len(_WIRE_DTYPES) + (len(_DERIVED_DTYPES) if self.derive else 0)
        self._bin_counts = np.zeros(self.n_bins, dtype=np.int64)
        self._last_bin = -1
        self._n_records = 0
        self._closed = False
        self.info: TraceInfo | None = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._spool_paths = [
            self.path.with_name(f".{self.path.name}.col{k}.tmp")
            for k in range(n_columns)
        ]
        self._spools = [p.open("wb") for p in self._spool_paths]
        # Incremental per-column CRC32s, updated as bytes are spooled;
        # spool order equals final slab order, so these are the slab
        # checksums verify_trace() recomputes.
        self._crcs = [0] * n_columns

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- writing ---------------------------------------------------------

    def append(self, bin_index: int, batch: FlowRecordBatch) -> None:
        """Append one bin's records.

        Every record's timestamp must fall inside bin ``bin_index`` on
        the writer's grid — otherwise replay (which re-bins records by
        timestamp) would place it in a different bin than the index
        claims, silently dropping it as late.
        """
        if self._closed:
            raise ValueError("writer is closed")
        b = int(bin_index)
        if not 0 <= b < self.n_bins:
            raise ValueError(f"bin index {b} outside [0, {self.n_bins})")
        if b < self._last_bin:
            raise ValueError(
                f"bins must arrive in nondecreasing order (got {b} after {self._last_bin})"
            )
        self._last_bin = b
        if len(batch) == 0:
            return
        lo = self.start + b * self.bin_width
        hi = lo + self.bin_width
        ts_min, ts_max = float(batch.timestamp.min()), float(batch.timestamp.max())
        if ts_min < lo or ts_max >= hi:
            raise ValueError(
                f"batch timestamps [{ts_min:.3f}, {ts_max:.3f}] fall outside "
                f"bin {b}'s range [{lo:.3f}, {hi:.3f})"
            )
        for k, (spool, (name, dtype)) in enumerate(zip(self._spools, _WIRE_DTYPES)):
            column = np.ascontiguousarray(getattr(batch, name), dtype=dtype)
            view = memoryview(column).cast("B")
            spool.write(view)
            self._crcs[k] = zlib.crc32(view, self._crcs[k])
        if self.derive:
            if b != self._pending_bin:
                self._flush_derived()
                self._pending_bin = b
            self._pending.append(batch)
        self._bin_counts[b] += len(batch)
        self._n_records += len(batch)

    def _flush_derived(self) -> None:
        """Derive and spool the buffered bin's od/runid columns."""
        if not self._pending:
            return
        if len(self._pending) == 1:
            batch = self._pending[0]
        else:
            batch = FlowRecordBatch.concat(self._pending)
        self._pending = []
        ods, runids = derive_columns(batch, self._router, self._anon_bits)
        base = len(_WIRE_DTYPES)
        for j, column in enumerate([ods, *runids]):
            column = np.ascontiguousarray(column, dtype="<i8")
            view = memoryview(column).cast("B")
            self._spools[base + j].write(view)
            self._crcs[base + j] = zlib.crc32(view, self._crcs[base + j])

    def abort(self) -> None:
        """Drop everything written so far (no final file is produced)."""
        self._closed = True
        for spool in self._spools:
            spool.close()
        for spool_path in self._spool_paths:
            spool_path.unlink(missing_ok=True)

    def close(self) -> TraceInfo:
        """Assemble the final trace file; returns its parsed info."""
        if self._closed:
            if self.info is None:
                raise ValueError("writer was aborted")
            return self.info
        self._closed = True
        if self.derive:
            self._flush_derived()
        for spool in self._spools:
            spool.close()
        bin_offsets = np.zeros(self.n_bins + 1, dtype="<i8")
        np.cumsum(self._bin_counts, out=bin_offsets[1:])
        n_base = len(_WIRE_DTYPES)
        header = {
            "version": TRACE_VERSION_DERIVED if self.derive else TRACE_VERSION,
            "n_records": self._n_records,
            "n_bins": self.n_bins,
            "bins": {"width": self.bin_width, "start": self.start},
            "columns": [{"name": n, "dtype": d} for n, d in _WIRE_DTYPES],
            "column_crcs": [crc & 0xFFFFFFFF for crc in self._crcs[:n_base]],
            "network": self.network,
            "meta": self.meta,
        }
        if self.derive:
            header["derived"] = {
                "columns": [{"name": n, "dtype": d} for n, d in _DERIVED_DTYPES],
                "crcs": [crc & 0xFFFFFFFF for crc in self._crcs[n_base:]],
                "anonymization_bits": self._anon_bits,
            }
        payload = _pad_header(json.dumps(header, sort_keys=True).encode())
        tmp_path = self.path.with_name(f".{self.path.name}.assembling.tmp")
        try:
            with tmp_path.open("wb") as out:
                out.write(MAGIC)
                out.write(struct.pack("<Q", len(payload)))
                out.write(payload)
                out.write(memoryview(bin_offsets))
                for spool_path in self._spool_paths:
                    with spool_path.open("rb") as spool:
                        shutil.copyfileobj(spool, out, length=1 << 22)
            os.replace(tmp_path, self.path)
        finally:
            tmp_path.unlink(missing_ok=True)
            for spool_path in self._spool_paths:
                spool_path.unlink(missing_ok=True)
        self.info = TraceInfo(self.path, header, bin_offsets.astype(np.int64))
        return self.info


def _read_header(
    path: Path, allow_partial: bool = False
) -> tuple[dict, np.ndarray, int, int, bool]:
    """Parse and validate a trace header.

    Returns ``(header, offsets, data_start, declared_records,
    truncated)``.  ``offsets`` covers the *readable* bins: the full
    declared grid normally, or — for a truncated file under
    ``allow_partial`` — the longest complete-bin prefix whose rows
    survive in every column slab (``truncated=True``; column ``k``'s
    slab still starts at ``data_start + k * declared_records * 8``).
    """
    try:
        size = path.stat().st_size
        with path.open("rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise TraceError(
                    f"{path}: not a trace file (bad magic {magic!r}; "
                    f"expected {MAGIC!r})"
                )
            raw_len = handle.read(8)
            if len(raw_len) != 8:
                raise TraceError(f"{path}: truncated trace (header length missing)")
            (header_len,) = struct.unpack("<Q", raw_len)
            if header_len > size:
                raise TraceError(
                    f"{path}: corrupt trace (header length {header_len} exceeds "
                    f"file size {size})"
                )
            payload = handle.read(header_len)
            if len(payload) != header_len:
                raise TraceError(f"{path}: truncated trace (incomplete header)")
            try:
                header = json.loads(payload)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}: corrupt trace header ({exc})") from None
            version = header.get("version")
            if version not in _SUPPORTED_VERSIONS:
                raise TraceError(
                    f"{path}: unsupported trace version {version!r} "
                    f"(this reader handles {_SUPPORTED_VERSIONS})"
                )
            declared = [(c["name"], c["dtype"]) for c in header["columns"]]
            if declared != list(_WIRE_DTYPES):
                raise TraceError(
                    f"{path}: column table {declared} does not match the "
                    f"FlowRecordBatch schema {list(_WIRE_DTYPES)}"
                )
            n_derived = 0
            if version == TRACE_VERSION_DERIVED:
                derived = header.get("derived")
                if not isinstance(derived, dict) or "columns" not in derived:
                    raise TraceError(
                        f"{path}: version-{version} trace is missing the "
                        f"derived-column table"
                    )
                declared_derived = [
                    (c["name"], c["dtype"]) for c in derived["columns"]
                ]
                if declared_derived != list(_DERIVED_DTYPES):
                    raise TraceError(
                        f"{path}: derived column table {declared_derived} does "
                        f"not match {list(_DERIVED_DTYPES)}"
                    )
                n_derived = len(declared_derived)
            n_bins = int(header["n_bins"])
            n_records = int(header["n_records"])
            if n_bins < 1 or n_records < 0:
                raise TraceError(f"{path}: corrupt trace (n_bins={n_bins}, "
                                 f"n_records={n_records})")
            index_start = len(MAGIC) + 8 + header_len
            index_bytes = (n_bins + 1) * _ITEM_SIZE
            data_start = index_start + index_bytes
            n_columns = len(_WIRE_DTYPES) + n_derived
            expected = data_start + n_records * _ITEM_SIZE * n_columns
            truncated = size != expected
            if truncated and not (allow_partial and data_start <= size < expected):
                # Padded files, or truncation that ate the index itself,
                # are unrecoverable; plain truncation is recoverable but
                # only on request.
                hint = (
                    "; pass allow_partial=True (--allow-partial) to "
                    "recover its complete bins"
                    if data_start <= size < expected
                    else ""
                )
                raise TraceError(
                    f"{path}: truncated or padded trace (file is {size} bytes, "
                    f"header implies {expected}){hint}"
                )
            handle.seek(index_start)
            offsets = np.frombuffer(
                handle.read(index_bytes), dtype="<i8"
            ).astype(np.int64)
            if (
                offsets[0] != 0
                or offsets[-1] != n_records
                or np.any(np.diff(offsets) < 0)
            ):
                raise TraceError(f"{path}: corrupt bin-offset index")
            if truncated:
                # Rows available per column: truncation eats the file
                # tail, so column k (whose slab starts k * n_records
                # rows into the data region) keeps the first
                # (size - slab_start) / 8 of its rows.  Only rows
                # present in EVERY column are usable, and only whole
                # bins of them.  Derived slabs sit after the base nine,
                # so any truncation loses them first: a recovered trace
                # always drops the derived columns and recovers the
                # base-column prefix.
                if n_derived:
                    header = dict(header)
                    header.pop("derived", None)
                avail = [
                    max(
                        0,
                        min(
                            n_records,
                            (size - data_start - k * n_records * _ITEM_SIZE)
                            // _ITEM_SIZE,
                        ),
                    )
                    for k in range(len(_WIRE_DTYPES))
                ]
                rows = min(avail)
                last_full = int(np.searchsorted(offsets, rows, side="right")) - 1
                if last_full < 1:
                    raise TraceError(
                        f"{path}: truncated trace has no complete bins to "
                        f"recover (only {rows} of {n_records} records "
                        f"survive in every column)"
                    )
                offsets = offsets[: last_full + 1]
            return header, offsets, data_start, n_records, truncated
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc


class TraceReader:
    """Memory-mapped, zero-copy reader for a columnar trace file.

    Columns are exposed as read-only memory-mapped arrays; every batch
    the reader yields holds *views* into those mappings
    (``np.shares_memory`` with the file mapping), so replaying a trace
    of any size keeps RSS bounded by the pages the OS chooses to cache.

    Usage::

        with TraceReader(path) as reader:
            for chunk in reader.iter_chunks(chunk_records=8192):
                engine.ingest(chunk)

    ``allow_partial=True`` opts into reading a truncated trace: the
    reader exposes the longest complete-bin prefix present in every
    column slab (see :func:`_read_header`) instead of raising
    :class:`TraceError`; ``reader.info.truncated`` reports which case
    applied, and column maps keep the *declared* slab stride so the
    surviving rows line up exactly where the writer put them.
    """

    def __init__(
        self,
        path: str | Path,
        allow_partial: bool = False,
        readahead: bool = False,
    ) -> None:
        self.path = Path(path)
        header, offsets, data_start, declared, truncated = _read_header(
            self.path, allow_partial=allow_partial
        )
        self.info = TraceInfo(self.path, header, offsets, truncated=truncated)
        self._columns: dict[str, np.ndarray] = {}
        self._derived_columns: dict[str, np.ndarray] = {}
        #: False until this reader has completed one full chunk sweep;
        #: used to label telemetry spans cold vs warm (page-fault proxy).
        self._swept = False
        n = self.info.n_records
        for k, (name, dtype) in enumerate(_WIRE_DTYPES):
            self._columns[name] = np.memmap(
                self.path,
                dtype=dtype,
                mode="r",
                offset=data_start + k * declared * _ITEM_SIZE,
                shape=(n,),
            )
        if self.info.derived is not None:
            base = len(_WIRE_DTYPES)
            for j, (name, dtype) in enumerate(_DERIVED_DTYPES):
                self._derived_columns[name] = np.memmap(
                    self.path,
                    dtype=dtype,
                    mode="r",
                    offset=data_start + (base + j) * declared * _ITEM_SIZE,
                    shape=(n,),
                )
        if readahead and hasattr(os, "posix_fadvise"):
            # Kick off sequential readahead for the whole file so a cold
            # replay overlaps page-ins with compute instead of paying
            # one major fault per first-touch page.
            fd = os.open(self.path, os.O_RDONLY)
            try:
                os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_WILLNEED)
            finally:
                os.close(fd)

    # -- basic facts ------------------------------------------------------

    @property
    def n_records(self) -> int:
        """Total records in the trace."""
        return self.info.n_records

    @property
    def n_bins(self) -> int:
        """Number of bins the trace covers."""
        return self.info.n_bins

    @property
    def bins(self) -> TimeBins:
        """The bin grid records were produced on."""
        return self.info.bins

    @property
    def network(self) -> str:
        """Generating topology name ("" when unknown)."""
        return self.info.network

    @property
    def meta(self) -> dict:
        """Provenance metadata recorded by the writer."""
        return self.info.meta

    def column(self, name: str) -> np.ndarray:
        """One whole column as a read-only memory-mapped array."""
        return self._columns[name]

    @property
    def has_derived(self) -> bool:
        """Whether this trace carries the precomputed derived columns."""
        return bool(self._derived_columns)

    def derived_column(self, name: str) -> np.ndarray:
        """One derived column (``od`` or ``runid_<feature>``) as a
        read-only memory-mapped array.

        Raises:
            KeyError: For version-1 traces (no derived columns); use
                :func:`upgrade_trace` or re-record with ``derive=True``.
        """
        return self._derived_columns[name]

    def read_derived_bin(self, b: int) -> tuple[np.ndarray, list[np.ndarray]]:
        """One bin's ``(ods, runids)`` derived columns as zero-copy views.

        ``runids`` is a list in :data:`repro.flows.features.FEATURES`
        order, matching what :func:`derive_columns` computes.
        """
        lo, hi = self.bin_range(b)
        ods = self._derived_columns["od"][lo:hi]
        runids = [
            self._derived_columns[f"runid_{name}"][lo:hi] for name in FEATURES
        ]
        return ods, runids

    def __len__(self) -> int:
        return self.n_records

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Drop the column mappings (views already handed out survive)."""
        self._columns = {}
        self._derived_columns = {}

    # -- slicing ----------------------------------------------------------

    def _batch(self, start: int, stop: int) -> FlowRecordBatch:
        return FlowRecordBatch(
            **{name: col[start:stop] for name, col in self._columns.items()}
        )

    def bin_range(self, b: int) -> tuple[int, int]:
        """Row range ``[start, stop)`` of bin ``b``."""
        if not 0 <= b < self.n_bins:
            raise ValueError(f"bin index out of range: {b}")
        offsets = self.info.bin_offsets
        return int(offsets[b]), int(offsets[b + 1])

    def read_bin(self, b: int) -> FlowRecordBatch:
        """One bin's records as a zero-copy view batch."""
        return self._batch(*self.bin_range(b))

    def read_rows(self, start: int, stop: int) -> FlowRecordBatch:
        """An arbitrary row range ``[start, stop)`` as a zero-copy view.

        The unit of cluster row striping: a shard reading only its
        contiguous slice of each bin (see
        :meth:`repro.pipeline.sources.TraceSource.shard_batches`)
        touches 1/N of every column instead of scanning the trace.
        """
        if not 0 <= start <= stop <= self.n_records:
            raise ValueError(
                f"row range [{start}, {stop}) outside trace of "
                f"{self.n_records} record(s)"
            )
        return self._batch(start, stop)

    def iter_chunks(
        self,
        chunk_records: int = 8192,
        bins: Sequence[int] | None = None,
        row_filter=None,
    ) -> Iterator[FlowRecordBatch]:
        """Yield the trace as time-ordered view batches.

        Args:
            chunk_records: Upper bound on records per yielded chunk.
            bins: Bin indices to replay (default: every bin, which
                streams the whole record range in one contiguous sweep).
            row_filter: Optional callable ``batch -> bool mask`` applied
                to every chunk (e.g. a cluster shard keeping only its OD
                slice).  Filtered chunks are copies (selection), plain
                chunks stay views.

        Yields:
            Non-empty :class:`FlowRecordBatch` chunks in record order.
        """
        if chunk_records < 1:
            raise ValueError("chunk_records must be positive")
        if not self._columns:
            raise ValueError("reader is closed")
        if bins is None:
            spans = [(0, self.n_records)]
        else:
            spans = [self.bin_range(int(b)) for b in bins]
        # Telemetry labels chunk production cold vs warm per reader
        # sweep — an mmap page-fault proxy.  With telemetry on, each
        # chunk's pages are touched (one read per 4 KiB page) inside
        # the span, so fault time is attributed here instead of leaking
        # into whatever stage first reads the columns.
        instrumented = tel.enabled()
        label = "trace.chunk.warm" if self._swept else "trace.chunk.cold"
        for start, stop in spans:
            for lo in range(start, stop, chunk_records):
                with tel.span(label):
                    chunk = self._batch(lo, min(lo + chunk_records, stop))
                    if instrumented:
                        for name in self._columns:
                            col = getattr(chunk, name)
                            if len(col):
                                col[::_PAGE_STRIDE].max()
                    if row_filter is not None:
                        mask = row_filter(chunk)
                        if not mask.any():
                            continue
                        chunk = chunk.select(mask)
                if len(chunk):
                    tel.count("trace.records_replayed", len(chunk))
                    yield chunk
        self._swept = True


def write_trace(
    path: str | Path,
    generator,
    bins: Sequence[int] | None = None,
    ods: Sequence[int] | None = None,
    max_records_per_od: int = 400,
    seed: int = 0,
    bin_group: int = 64,
    meta: dict | None = None,
    derive: bool = False,
) -> TraceInfo:
    """Materialise a synthetic trace straight into a trace file.

    Produces records bit-identical to
    :func:`repro.stream.chunks.synthetic_record_stream` with the same
    arguments (the per-(OD flow, bin) draws come from the same
    ``record_rng`` streams), so detections computed from the written
    trace match inline generation exactly.

    Args:
        path: Output trace path.
        generator: A :class:`repro.traffic.generator.TrafficGenerator`.
        bins: Bin indices to materialise (default: the generator's full
            grid), in increasing order.
        ods: OD flows to include (default: all).
        max_records_per_od: Records cap per (OD flow, bin).
        seed: Extra stream seed mixed into each record draw.
        bin_group: Bins materialised per generation pass (memory knob).
        meta: Extra provenance merged into the header metadata.
        derive: Also write the precomputed derived columns (resolved OD
            index + per-feature run ids) so replay skips attribution
            and the per-bin stable sort (trace version 2).

    Returns:
        The written trace's :class:`TraceInfo`.
    """
    if bins is None:
        bins = range(generator.bins.n_bins)
    bins = [int(b) for b in bins]
    if any(b2 <= b1 for b1, b2 in zip(bins, bins[1:])):
        raise ValueError("bins must be strictly increasing")
    if not bins:
        raise ValueError("need at least one bin to write")
    header_meta = {
        "generator_seed": int(generator.config.seed),
        "stream_seed": int(seed),
        "max_records_per_od": int(max_records_per_od),
        "n_od_flows": int(generator.topology.n_od_flows),
        "ods": "all" if ods is None else [int(od) for od in ods],
        "histogram_sampling": int(generator.histogram_sampling),
    }
    header_meta.update(meta or {})
    from repro.stream.chunks import synthetic_record_stream

    source = synthetic_record_stream(
        generator,
        bins,
        ods=ods,
        max_records_per_od=max_records_per_od,
        seed=seed,
        bin_group=bin_group,
    )
    with TraceWriter(
        path,
        n_bins=max(bins) + 1,
        bin_width=generator.bins.width,
        start=generator.bins.start,
        network=generator.topology.name,
        meta=header_meta,
        derive=derive,
        topology=generator.topology if derive else None,
    ) as writer:
        for b, batch in zip(bins, source):
            writer.append(b, batch)
    return writer.info


def upgrade_trace(
    path: str | Path, topology=None, output: str | Path | None = None
) -> TraceInfo:
    """Backfill the derived columns into an existing trace.

    Replays the trace bin by bin through a derive-enabled
    :class:`TraceWriter`: the nine base slabs are copied byte-identical
    (same records, same order, same CRCs) and the od/runid slabs are
    appended, producing a version-2 file.  In-place by default — the
    writer assembles into a temp file and ``os.replace``\\ s it over the
    original, so a crash never corrupts the source trace.  Already
    upgraded traces are returned unchanged.

    Args:
        path: The trace to upgrade.
        topology: The backbone to attribute ODs on; defaults to the
            trace header's ``network`` looked up via
            :func:`repro.net.topology.topology_by_name`.
        output: Write the upgraded trace here instead of in place.

    Returns:
        The upgraded trace's :class:`TraceInfo`.
    """
    path = Path(path)
    with TraceReader(path) as reader:
        if reader.has_derived:
            if output is not None and Path(output) != path:
                shutil.copyfile(path, output)
                return trace_info(output)
            return reader.info
        if topology is None:
            from repro.net.topology import topology_by_name

            topology = topology_by_name(reader.network)
        target = Path(output) if output is not None else path
        with TraceWriter(
            target,
            n_bins=reader.n_bins,
            bin_width=reader.bins.width,
            start=reader.bins.start,
            network=reader.network,
            meta=reader.meta,
            derive=True,
            topology=topology,
        ) as writer:
            for b in range(reader.n_bins):
                batch = reader.read_bin(b)
                if len(batch):
                    writer.append(b, batch)
    return writer.info


def trace_info(path: str | Path, allow_partial: bool = False) -> TraceInfo:
    """Parse a trace header without mapping the columns.

    ``allow_partial=True`` describes a truncated trace's recoverable
    complete-bin prefix instead of raising (``info.truncated`` tells
    which happened).
    """
    path = Path(path)
    header, offsets, _, _, truncated = _read_header(path, allow_partial=allow_partial)
    return TraceInfo(path, header, offsets, truncated=truncated)


def verify_trace(path: str | Path, chunk_bytes: int = 1 << 22) -> dict[str, dict]:
    """Recompute each column slab's CRC32 and compare with the header.

    Catches silent corruption a size check can't: a flipped bit in the
    middle of a slab leaves the file length (and often the replay)
    plausible while every downstream histogram is wrong.

    Returns:
        ``{column_name: {"stored": int, "computed": int, "ok": bool}}``.

    Raises:
        TraceError: If the trace is unreadable, truncated, or predates
            column checksums (no ``column_crcs`` header key).
    """
    path = Path(path)
    header, offsets, data_start, declared, _ = _read_header(path)
    stored = header.get("column_crcs")
    if stored is None:
        raise TraceError(
            f"{path}: trace has no column checksums "
            f"(written before they existed); rewrite it to verify"
        )
    columns: list[str] = [name for name, _ in _WIRE_DTYPES]
    stored = [int(c) for c in stored]
    derived = header.get("derived")
    if derived is not None:
        columns += [c["name"] for c in derived["columns"]]
        stored += [int(c) for c in derived["crcs"]]
    results: dict[str, dict] = {}
    slab_bytes = declared * _ITEM_SIZE
    with path.open("rb") as handle:
        for k, name in enumerate(columns):
            handle.seek(data_start + k * slab_bytes)
            crc = 0
            remaining = slab_bytes
            while remaining:
                block = handle.read(min(chunk_bytes, remaining))
                if not block:
                    raise TraceError(f"{path}: short read in column {name!r}")
                crc = zlib.crc32(block, crc)
                remaining -= len(block)
            crc &= 0xFFFFFFFF
            results[name] = {
                "stored": int(stored[k]),
                "computed": crc,
                "ok": crc == int(stored[k]),
            }
    return results
