"""Packet sampling and trace thinning.

Both measurement systems in the paper sample packets periodically
(Abilene 1/100, Geant 1/1000), and the injection experiments *thin*
attack traces by keeping 1 of every N packets.  Applied to counters,
periodic 1-in-N selection of a count ``c`` keeps ``floor(c/N)`` packets
plus one more with probability ``(c mod N)/N`` — the ``"periodic"``
mode below.  A ``"binomial"`` mode (each packet kept independently with
probability 1/N) is also provided; the paper's conclusions do not
depend on which is used, and tests cover both.
"""

from __future__ import annotations

import numpy as np

from repro.flows.records import FlowRecordBatch

__all__ = ["thin_counts", "thin_batch", "PacketSampler"]


def thin_counts(
    counts: np.ndarray,
    factor: int,
    rng: np.random.Generator,
    mode: str = "periodic",
) -> np.ndarray:
    """Thin packet counts by keeping ~1/``factor`` of the packets.

    Args:
        counts: Non-negative integer array of packet counts.
        factor: Thinning factor N (1 = no thinning).
        rng: Random generator (used for the fractional remainder in
            ``"periodic"`` mode and for all of ``"binomial"`` mode).
        mode: ``"periodic"`` or ``"binomial"`` (see module docstring).

    Returns:
        Integer array of thinned counts, same shape as ``counts``.
    """
    if factor < 1:
        raise ValueError("thinning factor must be >= 1")
    counts = np.asarray(counts)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if factor == 1:
        return counts.astype(np.int64, copy=True)
    if mode == "periodic":
        base = counts // factor
        remainder = counts % factor
        extra = rng.random(counts.shape) < remainder / factor
        return (base + extra).astype(np.int64)
    if mode == "binomial":
        return rng.binomial(counts.astype(np.int64), 1.0 / factor).astype(np.int64)
    raise ValueError(f"unknown thinning mode {mode!r}")


def thin_batch(
    batch: FlowRecordBatch,
    factor: int,
    rng: np.random.Generator,
    mode: str = "periodic",
) -> FlowRecordBatch:
    """Thin a flow-record batch.

    Packet counters are thinned per record; byte counters are scaled by
    the realised per-record survival ratio (sampled packets carry their
    average size).  Records whose packet count drops to zero vanish —
    exactly what a sampled NetFlow export would show.
    """
    if len(batch) == 0 or factor == 1:
        return batch
    new_packets = thin_counts(batch.packets, factor, rng, mode=mode)
    keep = new_packets > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(batch.packets > 0, new_packets / batch.packets, 0.0)
    new_bytes = np.round(batch.bytes * ratio).astype(np.int64)
    thinned = batch.with_columns(packets=new_packets, bytes=new_bytes)
    return thinned.select(keep)


class PacketSampler:
    """Stateful periodic 1-in-N packet sampler.

    Models the router behaviour: a counter increments per packet and
    every N-th packet is exported.  ``sample_batch`` applies the
    equivalent counter-based thinning to a record batch with a random
    phase per call, which is how flow records interleave at a real
    linecard.
    """

    def __init__(self, rate: int, seed: int = 0) -> None:
        if rate < 1:
            raise ValueError("sampling rate must be >= 1")
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def sample_batch(self, batch: FlowRecordBatch, mode: str = "periodic") -> FlowRecordBatch:
        """Sample a batch at 1/rate."""
        return thin_batch(batch, self.rate, self._rng, mode=mode)

    def sample_counts(self, counts: np.ndarray, mode: str = "periodic") -> np.ndarray:
        """Sample raw packet counts at 1/rate."""
        return thin_counts(counts, self.rate, self._rng, mode=mode)
