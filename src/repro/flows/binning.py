"""Time binning: 5-minute flow-export bins (paper Section 2).

:class:`TimeBins` defines a regular grid of bins over the trace, and
:func:`bin_flows` partitions a :class:`FlowRecordBatch` by bin.  Bin
width defaults to the paper's 300 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.records import FlowRecordBatch

__all__ = ["BIN_SECONDS", "BINS_PER_DAY", "BINS_PER_WEEK", "TimeBins", "bin_flows"]

#: The paper's bin width: flow statistics are reported every 5 minutes.
BIN_SECONDS = 300.0

BINS_PER_DAY = int(86400 / BIN_SECONDS)          # 288
BINS_PER_WEEK = 7 * BINS_PER_DAY                 # 2016


@dataclass(frozen=True)
class TimeBins:
    """A regular grid of time bins.

    Attributes:
        n_bins: Number of bins.
        width: Bin width in seconds.
        start: Trace epoch (seconds); bin ``i`` covers
            ``[start + i*width, start + (i+1)*width)``.
    """

    n_bins: int
    width: float = BIN_SECONDS
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.n_bins <= 0:
            raise ValueError("n_bins must be positive")
        if self.width <= 0:
            raise ValueError("width must be positive")

    @classmethod
    def for_days(cls, days: float, width: float = BIN_SECONDS) -> "TimeBins":
        """Bins spanning ``days`` days."""
        return cls(n_bins=int(round(days * 86400 / width)), width=width)

    @classmethod
    def for_weeks(cls, weeks: float, width: float = BIN_SECONDS) -> "TimeBins":
        """Bins spanning ``weeks`` weeks."""
        return cls.for_days(7 * weeks, width=width)

    @property
    def duration(self) -> float:
        """Total covered time in seconds."""
        return self.n_bins * self.width

    @property
    def end(self) -> float:
        """End of the last bin."""
        return self.start + self.duration

    def index(self, timestamp: float) -> int:
        """Bin index of a timestamp (ValueError when outside the grid)."""
        i = int(np.floor((timestamp - self.start) / self.width))
        if not 0 <= i < self.n_bins:
            raise ValueError(f"timestamp {timestamp} outside bins")
        return i

    def indices(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`index`; out-of-range timestamps map to -1."""
        idx = np.floor((np.asarray(timestamps) - self.start) / self.width)
        idx = idx.astype(np.int64)
        idx[(idx < 0) | (idx >= self.n_bins)] = -1
        return idx

    def bin_start(self, i: int) -> float:
        """Start time of bin ``i``."""
        if not 0 <= i < self.n_bins:
            raise ValueError(f"bin index out of range: {i}")
        return self.start + i * self.width

    def centers(self) -> np.ndarray:
        """Center timestamps of all bins (useful for plotting)."""
        return self.start + (np.arange(self.n_bins) + 0.5) * self.width

    def hours(self) -> np.ndarray:
        """Bin centers expressed in hours since trace start."""
        return (self.centers() - self.start) / 3600.0


def bin_flows(batch: FlowRecordBatch, bins: TimeBins) -> list[FlowRecordBatch]:
    """Partition a batch into per-bin batches.

    Records outside the bin grid are dropped (mirroring collectors that
    discard records outside the export window).
    """
    idx = bins.indices(batch.timestamp)
    out = []
    for i in range(bins.n_bins):
        out.append(batch.select(idx == i))
    return out
