"""Flow-measurement substrate: records, binning, sampling, histograms, OD aggregation."""

from repro.flows.binning import BIN_SECONDS, BINS_PER_DAY, BINS_PER_WEEK, TimeBins, bin_flows
from repro.flows.features import (
    DST_IP,
    DST_PORT,
    FEATURES,
    N_FEATURES,
    SRC_IP,
    SRC_PORT,
    BinFeatures,
    FeatureHistogram,
    feature_index,
)
from repro.flows.odflows import ODFlowAggregator, TrafficCube
from repro.flows.records import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowRecord, FlowRecordBatch
from repro.flows.sampling import PacketSampler, thin_batch, thin_counts

__all__ = [
    "BIN_SECONDS",
    "BINS_PER_DAY",
    "BINS_PER_WEEK",
    "TimeBins",
    "bin_flows",
    "FEATURES",
    "N_FEATURES",
    "SRC_IP",
    "SRC_PORT",
    "DST_IP",
    "DST_PORT",
    "BinFeatures",
    "FeatureHistogram",
    "feature_index",
    "ODFlowAggregator",
    "TrafficCube",
    "FlowRecord",
    "FlowRecordBatch",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_ICMP",
    "PacketSampler",
    "thin_batch",
    "thin_counts",
]
