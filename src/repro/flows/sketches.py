"""Sketch substrate: streaming feature summaries without per-value state.

The paper's related work (Krishnamurthy et al. [22]) detects volume
changes with sketches; the natural follow-up — widely explored after
this paper — is estimating *entropy* from compact summaries so the
multiway method can run on links too fast for exact per-value counts.
This module provides that substrate:

* :class:`CountMinSketch` — the classic conservative-update CM sketch
  over feature values, mergeable across routers.
* :func:`entropy_from_sketch` — plug-in entropy estimate from a
  sketch's heavy hitters plus a uniform-tail correction for the mass
  the sketch cannot resolve.

The estimator is biased low for very flat distributions (the tail
correction assumes the unresolved mass is spread over the remaining
observed distinct count), but tracks exact sample entropy closely on
the heavy-tailed histograms backbone traffic produces — which the
tests assert.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry as tel
from repro.core.entropy import sample_entropy

__all__ = [
    "CountMinSketch",
    "SketchBank",
    "aggregate_histogram",
    "canonical_histogram",
    "entropy_from_sketch",
    "entropy_from_sketch_runs",
    "sketch_histogram",
]

_PRIME = (1 << 61) - 1


_HASH_PARAM_CACHE: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}


def _hash_params(width: int, depth: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """The (a, b) row-hash coefficients for a (width, depth, seed) geometry.

    Shared by :class:`CountMinSketch` and :class:`SketchBank` so a bank
    slot and a standalone sketch with the same geometry hash identically
    (and therefore merge / compare exactly).  Memoised — a streaming bin
    close materialises thousands of sketches with the same geometry,
    and regenerating the coefficients dominated that path.  Callers
    must treat the arrays as read-only (they only ever hash with them).
    """
    key = (width, depth, seed)
    params = _HASH_PARAM_CACHE.get(key)
    if params is None:
        rng = np.random.default_rng(np.random.SeedSequence([seed, width, depth]))
        a = rng.integers(1, _PRIME, size=depth, dtype=np.int64)
        b = rng.integers(0, _PRIME, size=depth, dtype=np.int64)
        params = _HASH_PARAM_CACHE[key] = (a, b)
    return params


def aggregate_histogram(
    values: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group a (values, counts) histogram by value (counts summed).

    Returns the input unchanged when all values are already unique.
    """
    values = np.asarray(values, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    uniq, inverse = np.unique(values, return_inverse=True)
    if uniq.size == values.size:
        return values, counts
    agg = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(agg, inverse, counts)
    return uniq, agg


def canonical_histogram(
    values: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group a histogram by value AND sort by value, always.

    Unlike :func:`aggregate_histogram` (which skips the sort when all
    values are already unique), the result is a *canonical form*: any
    two histograms describing the same value->count mapping serialize
    to identical bytes.  The mergeable shard summaries rely on this so
    that every partition of the records yields the same wire payload.
    """
    values = np.asarray(values, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    uniq, inverse = np.unique(values, return_inverse=True)
    agg = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(agg, inverse, counts)
    return uniq, agg


class CountMinSketch:
    """Count-Min sketch with conservative update.

    Args:
        width: Counters per row (error ~ total/width).
        depth: Independent hash rows (failure prob ~ exp(-depth)).
        seed: Hash-function seed; sketches merge only when their
            (width, depth, seed) agree.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 8 or depth < 1:
            raise ValueError("width must be >= 8 and depth >= 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        self._a, self._b = _hash_params(width, depth, seed)
        self.table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0
        self._distinct_estimate: set[int] = set()

    def _rows(self, value: int) -> np.ndarray:
        hashed = (self._a * np.int64(value % _PRIME) + self._b) % _PRIME
        return (hashed % self.width).astype(np.int64)

    def add(self, value: int, count: int = 1) -> None:
        """Add ``count`` packets carrying ``value`` (conservative update)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        cols = self._rows(value)
        rows = np.arange(self.depth)
        current = self.table[rows, cols]
        estimate = current.min()
        # Conservative update: only raise counters that would otherwise
        # under-estimate the new value.
        self.table[rows, cols] = np.maximum(current, estimate + count)
        self.total += count
        if len(self._distinct_estimate) < 4 * self.width:
            self._distinct_estimate.add(value % (1 << 30))

    def query(self, value: int) -> int:
        """Point estimate of a value's count (never under-estimates)."""
        cols = self._rows(value)
        return int(self.table[np.arange(self.depth), cols].min())

    def _cols_many(self, values: np.ndarray) -> np.ndarray:
        """Column indices, ``(depth, n)``, for an array of values."""
        v = np.asarray(values, dtype=np.int64) % _PRIME
        hashed = (self._a[:, None] * v[None, :] + self._b[:, None]) % _PRIME
        return (hashed % self.width).astype(np.int64)

    def add_histogram(self, values: np.ndarray, counts: np.ndarray) -> None:
        """Vectorised bulk add of a (values, counts) histogram.

        Equivalent error guarantees to repeated :meth:`add`: every
        value's counters end at least ``estimate + count``, so point
        queries still never under-estimate.  When two values of the
        batch collide in a cell the cell keeps the larger target
        (a slightly *tighter* counter than sequential conservative
        updates would leave, still never below any true count).
        """
        values = np.asarray(values, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if values.shape != counts.shape or values.ndim != 1:
            raise ValueError("values and counts must be aligned 1-D arrays")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        keep = counts > 0
        if not keep.all():
            values, counts = values[keep], counts[keep]
        if values.size == 0:
            return
        # Aggregate duplicate values first: the conservative update
        # below raises each value's counters to estimate + count *once*,
        # so repeated rows of the same value (routine in record batches)
        # would otherwise leave the counter at a single row's count.
        values, counts = aggregate_histogram(values, counts)
        cols = self._cols_many(values)
        estimates = self.table[np.arange(self.depth)[:, None], cols].min(axis=0)
        targets = estimates + counts
        for r in range(self.depth):
            np.maximum.at(self.table[r], cols[r], targets)
        self.total += int(counts.sum())
        if len(self._distinct_estimate) < 4 * self.width:
            self._distinct_estimate.update(
                int(v) for v in (values % (1 << 30))[: 4 * self.width]
            )

    def query_many(self, values: np.ndarray) -> np.ndarray:
        """Vectorised point estimates for an array of values."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return np.zeros(0, dtype=np.int64)
        cols = self._cols_many(values)
        return self.table[np.arange(self.depth)[:, None], cols].min(axis=0)

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Merge two sketches built with identical parameters."""
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError("sketches are not mergeable (parameter mismatch)")
        merged = CountMinSketch(self.width, self.depth, self.seed)
        merged.table = self.table + other.table
        merged.total = self.total + other.total
        merged._distinct_estimate = self._distinct_estimate | other._distinct_estimate
        return merged

    @property
    def n_distinct_seen(self) -> int:
        """(Capped) number of distinct values observed."""
        return len(self._distinct_estimate)

    def to_bytes(self) -> bytes:
        """Serialize the counter state to a compact little-endian blob.

        The payload carries (width, depth, seed, total, table); the
        distinct-value scratch set is *not* serialized — it only backs
        the advisory :attr:`n_distinct_seen`, and shard deployments
        track candidate values outside the sketch (see
        :mod:`repro.cluster.summary`).
        """
        header = np.array(
            [self.width, self.depth, self.seed, self.total], dtype="<i8"
        )
        return header.tobytes() + self.table.astype("<i8", copy=False).tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "CountMinSketch":
        """Rebuild a sketch serialized by :meth:`to_bytes`."""
        header = np.frombuffer(data[:32], dtype="<i8")
        width, depth, seed, total = (int(x) for x in header)
        sketch = cls(width=width, depth=depth, seed=seed)
        table = np.frombuffer(data[32:], dtype="<i8")
        if table.size != depth * width:
            raise ValueError("truncated CountMinSketch payload")
        sketch.table = table.reshape(depth, width).astype(np.int64)
        sketch.total = total
        return sketch


class SketchBank:
    """Many Count-Min sketches updated as one batched array operation.

    The streaming stage keeps one sketch per (active OD flow, feature);
    updating them one at a time costs a Python call per OD per chunk.
    A bank holds all of a feature's per-group sketches in a single
    ``(slots, depth, width)`` counter array sharing one set of hash
    coefficients, so a whole chunk's grouped runs — any number of
    groups — update in one gather / ``np.maximum.at`` scatter pass.

    Per-group semantics are *identical* to calling
    :meth:`CountMinSketch.add_histogram` once per group with that
    group's aggregated (values, counts): estimates are read before any
    of the batch's updates land, every value's counters are raised to
    ``estimate + count``, and groups never share counters (distinct
    slots), so point queries still never under-estimate.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 8 or depth < 1:
            raise ValueError("width must be >= 8 and depth >= 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        self._a, self._b = _hash_params(width, depth, seed)
        self.tables = np.zeros((0, depth, width), dtype=np.int64)
        self.totals = np.zeros(0, dtype=np.int64)
        self._slot_of: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._slot_of)

    @property
    def group_ids(self) -> list[int]:
        """Groups with a slot, in first-seen order."""
        return list(self._slot_of)

    def _slots_for(self, group_ids: np.ndarray) -> np.ndarray:
        """Slot per group id, allocating (and growing storage) as needed."""
        slots = np.empty(len(group_ids), dtype=np.int64)
        for i, gid in enumerate(group_ids):
            gid = int(gid)
            slot = self._slot_of.get(gid)
            if slot is None:
                slot = len(self._slot_of)
                self._slot_of[gid] = slot
            slots[i] = slot
        n = len(self._slot_of)
        if n > len(self.tables):
            capacity = max(8, 2 * len(self.tables))
            while capacity < n:
                capacity *= 2
            grown = np.zeros((capacity, self.depth, self.width), dtype=np.int64)
            grown[: len(self.tables)] = self.tables
            self.tables = grown
            self.totals = np.concatenate(
                [self.totals, np.zeros(capacity - len(self.totals), dtype=np.int64)]
            )
        return slots

    def update(
        self, group_ids: np.ndarray, starts: np.ndarray,
        values: np.ndarray, counts: np.ndarray,
    ) -> None:
        """Conservative-update all groups of one chunk in one pass.

        Args take the :class:`repro.kernels.GroupedRuns` layout (CSR
        runs with duplicates already aggregated per (group, value) and
        counts positive); pass ``runs.group_ids, runs.starts,
        runs.values, runs.counts`` directly.
        """
        if len(values) == 0:
            return
        with tel.span("sketch.update"):
            lengths = np.diff(starts)
            slots = self._slots_for(group_ids)
            slot_per_run = np.repeat(slots, lengths)
            v = np.asarray(values, dtype=np.int64) % _PRIME
            cols = (self._a[:, None] * v[None, :] + self._b[:, None]) % _PRIME % self.width
            rows = np.arange(self.depth, dtype=np.int64)
            flat = (
                (slot_per_run[None, :] * self.depth + rows[:, None]) * self.width + cols
            )
            flat_tables = self.tables.reshape(-1)
            gathered = flat_tables[flat]
            estimates = gathered.min(axis=0)
            targets = estimates + counts
            # Scatter-max without ``np.maximum.at`` (a per-element ufunc
            # loop, by far the hottest line of sketch mode): the write
            # value already folds in the existing counter, so a plain
            # fancy-index store is correct wherever ``flat`` is unique.
            # Duplicate indices (two values hashing to one counter in
            # the same batch) are rare; the re-gather catches exactly
            # the writes a larger duplicate clobbered and repairs those
            # few with the slow path.  Final counters are identical to
            # ``np.maximum.at``: max(previous, every target landing
            # there).
            flat_1d = flat.reshape(-1)
            write = np.maximum(gathered, targets[None, :]).reshape(-1)
            flat_tables[flat_1d] = write
            clobbered = np.flatnonzero(flat_tables[flat_1d] < write)
            if len(clobbered):
                np.maximum.at(flat_tables, flat_1d[clobbered], write[clobbered])
            if tel.enabled():
                # A row whose counter exceeds the min estimate is shared
                # with some other (group, value): a hash collision the
                # conservative update is skipping.  Counting them makes
                # sketch-width sizing observable instead of guesswork.
                tel.count("sketch.updates", len(values))
                tel.count("sketch.collisions",
                          int((gathered > estimates[None, :]).sum()))
            self.totals[: len(self._slot_of)] += np.bincount(
                slot_per_run, weights=counts, minlength=len(self._slot_of)
            ).astype(np.int64)[: len(self._slot_of)]

    def total(self, group_id: int) -> int:
        """Total weight added for one group (0 when never seen)."""
        slot = self._slot_of.get(int(group_id))
        return 0 if slot is None else int(self.totals[slot])

    def query_runs(
        self, group_ids: np.ndarray, starts: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched point estimates across groups (CSR runs layout).

        ``values[starts[i]:starts[i+1]]`` are probed against group
        ``group_ids[i]``'s sketch; returns ``(estimates, totals)`` —
        per-value estimates plus each group's total, groups never seen
        contributing zeros.  One gather replaces a
        :meth:`CountMinSketch.query_many` call per group.
        """
        values = np.asarray(values, dtype=np.int64)
        lengths = np.diff(np.asarray(starts, dtype=np.int64))
        if len(self._slot_of) == 0:
            return (
                np.zeros(len(values), dtype=np.int64),
                np.zeros(len(group_ids), dtype=np.int64),
            )
        slots = np.asarray(
            [self._slot_of.get(int(g), -1) for g in group_ids], dtype=np.int64
        )
        totals = np.where(slots >= 0, self.totals[np.maximum(slots, 0)], 0)
        if len(values) == 0:
            return np.zeros(0, dtype=np.int64), totals
        slot_per_value = np.repeat(slots, lengths)
        v = values % _PRIME
        cols = (self._a[:, None] * v[None, :] + self._b[:, None]) % _PRIME % self.width
        rows = np.arange(self.depth, dtype=np.int64)
        flat = (
            (np.maximum(slot_per_value, 0)[None, :] * self.depth + rows[:, None])
            * self.width + cols
        )
        estimates = self.tables.reshape(-1)[flat].min(axis=0)
        estimates[slot_per_value < 0] = 0
        return estimates, totals

    def sketch(self, group_id: int, copy: bool = True) -> CountMinSketch:
        """Materialise one group's state as a :class:`CountMinSketch`.

        With ``copy=False`` the sketch's table is a view into the bank
        (cheap; safe once the bank will no longer be updated).
        """
        slot = self._slot_of.get(int(group_id))
        sketch = CountMinSketch(width=self.width, depth=self.depth, seed=self.seed)
        if slot is not None:
            table = self.tables[slot]
            sketch.table = table.copy() if copy else table
            sketch.total = int(self.totals[slot])
        return sketch


def sketch_histogram(
    values: np.ndarray,
    counts: np.ndarray,
    width: int = 1024,
    depth: int = 4,
    seed: int = 0,
) -> CountMinSketch:
    """Build a sketch from a (values, counts) histogram."""
    values = np.asarray(values)
    counts = np.asarray(counts)
    if values.shape != counts.shape:
        raise ValueError("values and counts must align")
    sketch = CountMinSketch(width=width, depth=depth, seed=seed)
    sketch.add_histogram(values, counts)
    return sketch


def entropy_from_sketch(
    sketch: CountMinSketch,
    candidate_values: np.ndarray,
    heavy_fraction: float = 0.001,
) -> float:
    """Estimate sample entropy from a sketch.

    Args:
        sketch: The populated sketch.
        candidate_values: Values to probe as potential heavy hitters
            (in a router deployment this is the tracked-key set; here,
            the feature values that appeared in the bin).
        heavy_fraction: Values whose estimated share exceeds this are
            treated exactly; the rest form the uniform-corrected tail.

    Returns:
        Estimated entropy in bits.
    """
    total = sketch.total
    if total == 0:
        return 0.0
    candidate_values = np.asarray(candidate_values)
    estimates = sketch.query_many(candidate_values).astype(np.float64)
    threshold = max(heavy_fraction * total, 1.0)
    heavy = estimates[estimates >= threshold]
    heavy_mass = min(heavy.sum(), total)
    tail_mass = total - heavy_mass
    tail_values = max(len(candidate_values) - len(heavy), 1)

    p_heavy = heavy[heavy > 0] / total
    entropy = float(-(p_heavy * np.log2(p_heavy)).sum()) if p_heavy.size else 0.0
    if tail_mass > 0:
        p_tail = tail_mass / total / tail_values
        entropy -= tail_values * p_tail * np.log2(p_tail)
    return float(max(entropy, 0.0))


def entropy_from_sketch_runs(
    estimates: np.ndarray,
    totals: np.ndarray,
    starts: np.ndarray,
    heavy_fraction: float = 0.001,
) -> np.ndarray:
    """Vectorised :func:`entropy_from_sketch` over many groups at once.

    ``estimates[starts[i]:starts[i+1]]`` are group ``i``'s candidate
    estimates (as returned by :meth:`SketchBank.query_runs`) and
    ``totals[i]`` its sketch total.  Applies the same heavy-hitter +
    uniform-tail estimator per group in one pass; groups with zero
    total get entropy 0.
    """
    from repro.kernels import segment_sums

    estimates = np.asarray(estimates, dtype=np.float64)
    totals = np.asarray(totals, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.diff(starts)
    safe_totals = np.where(totals > 0, totals, 1.0)
    threshold = np.maximum(heavy_fraction * totals, 1.0)
    per_element_total = np.repeat(safe_totals, lengths)
    heavy = estimates >= np.repeat(threshold, lengths)
    heavy_sum = segment_sums(np.where(heavy, estimates, 0.0), starts)
    heavy_count = segment_sums(heavy.astype(np.float64), starts)
    heavy_mass = np.minimum(heavy_sum, totals)
    tail_mass = totals - heavy_mass
    tail_values = np.maximum(lengths - heavy_count, 1.0)

    p = estimates / per_element_total
    contributing = heavy & (estimates > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(
            contributing, p * np.log2(np.where(p > 0, p, 1.0)), 0.0
        )
        entropy = -segment_sums(terms, starts)
        p_tail = np.where(
            tail_mass > 0, tail_mass / safe_totals / tail_values, 1.0
        )
        entropy -= np.where(
            tail_mass > 0, tail_values * p_tail * np.log2(p_tail), 0.0
        )
    entropy = np.maximum(entropy, 0.0)
    entropy[totals <= 0] = 0.0
    return entropy


def exact_vs_sketch_error(
    counts: np.ndarray, width: int = 1024, seed: int = 0
) -> float:
    """|exact - sketch| entropy error for a histogram (testing helper)."""
    counts = np.asarray(counts, dtype=np.int64)
    values = np.arange(len(counts)) * 2654435761 % (1 << 31)  # spread keys
    sketch = sketch_histogram(values, counts, width=width, seed=seed)
    return abs(sample_entropy(counts) - entropy_from_sketch(sketch, values))
