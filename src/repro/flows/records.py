"""Flow records: the unit of measurement exported by routers (paper Section 2).

Two representations are provided:

* :class:`FlowRecord` — a single five-tuple record with volume counters,
  convenient for construction and inspection.
* :class:`FlowRecordBatch` — a columnar (struct-of-arrays) container
  holding many records in parallel numpy arrays.  Everything downstream
  (binning, sampling, OD aggregation, histogramming) operates on batches
  so that realistic record counts stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Iterator

import numpy as np

from repro.net.addressing import anonymize_array, format_ip

__all__ = [
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_ICMP",
    "COLUMN_SPEC",
    "FlowRecord",
    "FlowRecordBatch",
]

PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1

_COLUMNS = (
    ("src_ip", np.int64),
    ("dst_ip", np.int64),
    ("src_port", np.int64),
    ("dst_port", np.int64),
    ("protocol", np.int64),
    ("packets", np.int64),
    ("bytes", np.int64),
    ("timestamp", np.float64),
    ("ingress_pop", np.int64),
)

#: Public (name, dtype) schema of a batch, in storage order — the
#: contract the columnar trace store (:mod:`repro.io.trace`) serializes.
COLUMN_SPEC = _COLUMNS


@dataclass(frozen=True)
class FlowRecord:
    """A single sampled flow record (NetFlow-style).

    Attributes:
        src_ip / dst_ip: Addresses as ints.
        src_port / dst_port: Transport ports.
        protocol: IP protocol number (6=TCP, 17=UDP, 1=ICMP).
        packets / bytes: Sampled volume counters.
        timestamp: Flow start, seconds since the trace epoch.
        ingress_pop: Index of the PoP the record was sampled at.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = PROTO_TCP
    packets: int = 1
    bytes: int = 0
    timestamp: float = 0.0
    ingress_pop: int = 0

    def __post_init__(self) -> None:
        if self.packets < 0 or self.bytes < 0:
            raise ValueError("volume counters must be non-negative")
        if not 0 <= self.src_port <= 0xFFFF or not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError("port out of range")

    def __str__(self) -> str:
        return (
            f"{format_ip(self.src_ip)}:{self.src_port} -> "
            f"{format_ip(self.dst_ip)}:{self.dst_port} "
            f"proto={self.protocol} pkts={self.packets} bytes={self.bytes} "
            f"t={self.timestamp:.1f} pop={self.ingress_pop}"
        )


class FlowRecordBatch:
    """Columnar batch of flow records.

    All columns are numpy arrays of equal length.  Batches are
    immutable-by-convention: transformations return new batches.
    """

    __slots__ = tuple(name for name, _ in _COLUMNS)

    def __init__(self, **columns: np.ndarray) -> None:
        n = None
        for name, dtype in _COLUMNS:
            col = columns.get(name)
            if col is None:
                col = np.zeros(0 if n is None else n, dtype=dtype)
            col = np.asarray(col, dtype=dtype)
            if col.ndim != 1:
                raise ValueError(f"column {name} must be 1-D")
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise ValueError(
                    f"column {name} has length {len(col)}, expected {n}"
                )
            object.__setattr__(self, name, col)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("FlowRecordBatch columns are read-only")

    # -- construction --------------------------------------------------

    @classmethod
    def empty(cls) -> "FlowRecordBatch":
        """A batch with zero records."""
        return cls()

    @classmethod
    def from_records(cls, records: Iterable[FlowRecord]) -> "FlowRecordBatch":
        """Build a batch from an iterable of :class:`FlowRecord`."""
        records = list(records)
        columns = {
            name: np.array([getattr(r, name) for r in records], dtype=dtype)
            for name, dtype in _COLUMNS
        }
        return cls(**columns)

    @classmethod
    def concat(cls, batches: Iterable["FlowRecordBatch"]) -> "FlowRecordBatch":
        """Concatenate several batches.

        A single non-empty input is returned as-is (batches are
        immutable-by-convention, so sharing is safe) — the hot path when
        a chunker's pending list holds exactly one piece.
        """
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        columns = {
            name: np.concatenate([getattr(b, name) for b in batches])
            for name, _ in _COLUMNS
        }
        return cls(**columns)

    # -- basic container protocol --------------------------------------

    def __len__(self) -> int:
        return len(self.src_ip)

    def __iter__(self) -> Iterator[FlowRecord]:
        for i in range(len(self)):
            yield self.record(i)

    def record(self, i: int) -> FlowRecord:
        """Materialise record ``i`` as a :class:`FlowRecord`."""
        kwargs = {}
        for name, _ in _COLUMNS:
            value = getattr(self, name)[i]
            kwargs[name] = float(value) if name == "timestamp" else int(value)
        return FlowRecord(**kwargs)

    # -- transformations ------------------------------------------------

    def select(self, mask_or_index: np.ndarray | slice) -> "FlowRecordBatch":
        """Select rows by boolean mask, integer index array, or slice.

        Slices produce *view* columns (no copies) — the zero-copy path
        chunked replay of memory-mapped traces depends on; masks and
        index arrays copy, as numpy fancy indexing always does.
        """
        columns = {
            name: getattr(self, name)[mask_or_index] for name, _ in _COLUMNS
        }
        return FlowRecordBatch(**columns)

    def with_columns(self, **overrides: np.ndarray) -> "FlowRecordBatch":
        """Return a copy with some columns replaced."""
        columns = {name: getattr(self, name) for name, _ in _COLUMNS}
        for name, value in overrides.items():
            if name not in columns:
                raise KeyError(f"unknown column {name!r}")
            columns[name] = value
        return FlowRecordBatch(**columns)

    def anonymized(self, bits: int) -> "FlowRecordBatch":
        """Apply address anonymisation (mask low ``bits`` of both IPs)."""
        if bits == 0:
            return self
        return self.with_columns(
            src_ip=anonymize_array(self.src_ip, bits),
            dst_ip=anonymize_array(self.dst_ip, bits),
        )

    def sort_by_time(self) -> "FlowRecordBatch":
        """Return a copy sorted by timestamp (stable)."""
        order = np.argsort(self.timestamp, kind="stable")
        return self.select(order)

    # -- summaries -------------------------------------------------------

    @property
    def total_packets(self) -> int:
        """Sum of the packet counters."""
        return int(self.packets.sum())

    @property
    def total_bytes(self) -> int:
        """Sum of the byte counters."""
        return int(self.bytes.sum())

    def __repr__(self) -> str:
        return (
            f"FlowRecordBatch(n={len(self)}, packets={self.total_packets}, "
            f"bytes={self.total_bytes})"
        )


# Consistency guard: FlowRecord fields and batch columns must agree.
assert tuple(f.name for f in fields(FlowRecord)) == tuple(n for n, _ in _COLUMNS)
