"""Traffic features and per-bin feature histograms (paper Section 3).

A *traffic feature* is a packet-header field; the paper uses four:
source address, destination address, source port, destination port.
For each (OD flow, time bin) we keep an empirical histogram per feature
— "feature value occurred n_i times (in packets)" — which is exactly
the object sample entropy summarises.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.flows.records import FlowRecordBatch
from repro.kernels import group_reduce

__all__ = [
    "grouped_histograms",
    "FEATURES",
    "N_FEATURES",
    "SRC_IP",
    "DST_IP",
    "SRC_PORT",
    "DST_PORT",
    "feature_index",
    "FeatureHistogram",
    "BinFeatures",
]

#: Feature order used everywhere (matrices, unfolded blocks, vectors).
#: This matches the paper's ``h = [H(srcIP), H(srcPort), H(dstIP), H(dstPort)]``
#: vector layout in Section 4.2.
FEATURES = ("src_ip", "src_port", "dst_ip", "dst_port")
N_FEATURES = len(FEATURES)

SRC_IP, SRC_PORT, DST_IP, DST_PORT = range(N_FEATURES)


def feature_index(name: str) -> int:
    """Index of a feature by name (ValueError for unknown names)."""
    try:
        return FEATURES.index(name)
    except ValueError:
        raise ValueError(f"unknown feature {name!r}; expected one of {FEATURES}")


class FeatureHistogram:
    """Empirical histogram of one feature: value -> packet count."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[int, int] | None = None) -> None:
        self._counts: Counter[int] = Counter()
        if counts:
            for value, count in counts.items():
                self.add(value, count)

    @classmethod
    def from_values(
        cls, values: Iterable[int], weights: Iterable[int] | None = None
    ) -> "FeatureHistogram":
        """Build from raw feature values, optionally packet-weighted.

        Aggregation runs through the grouped-reduction kernel (one sort
        + ``reduceat``), not a per-element Python loop.
        """
        values = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=np.int64
        )
        if weights is not None:
            weights = np.asarray(
                weights if isinstance(weights, np.ndarray) else list(weights),
                dtype=np.int64,
            )
        runs = group_reduce(np.zeros(len(values), dtype=np.int64), values, weights)
        return cls.from_grouped(runs.values, runs.counts)

    @classmethod
    def from_grouped(
        cls, values: np.ndarray, counts: np.ndarray
    ) -> "FeatureHistogram":
        """Build from an already-aggregated (values, counts) histogram.

        The pairs must be unique by value with positive counts — the
        form :func:`repro.kernels.group_reduce` emits.
        """
        hist = cls()
        hist._counts = Counter(
            dict(zip(map(int, values), map(int, counts)))
        )
        return hist

    def add(self, value: int, count: int = 1) -> None:
        """Add ``count`` packets carrying ``value``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count:
            self._counts[value] += count

    def merge(self, other: "FeatureHistogram") -> "FeatureHistogram":
        """Return a new histogram with counts from both."""
        merged = FeatureHistogram()
        merged._counts = self._counts + other._counts
        return merged

    def scale(self, factor: float) -> "FeatureHistogram":
        """Return a copy with counts multiplied by ``factor`` (rounded).

        Used by outage modelling, where traffic *dips* rather than adds.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        scaled = FeatureHistogram()
        for value, count in self._counts.items():
            new = int(round(count * factor))
            if new:
                scaled._counts[value] = new
        return scaled

    @property
    def total(self) -> int:
        """Total packet count S."""
        return sum(self._counts.values())

    @property
    def n_distinct(self) -> int:
        """Number of distinct feature values N."""
        return len(self._counts)

    def counts_array(self) -> np.ndarray:
        """Counts as an int64 array (arbitrary but stable order)."""
        return np.fromiter(self._counts.values(), dtype=np.int64, count=len(self._counts))

    def rank_ordered(self) -> np.ndarray:
        """Counts sorted in decreasing rank order (paper Figure 1)."""
        return np.sort(self.counts_array())[::-1]

    def entropy(self) -> float:
        """Sample entropy H(X) of the histogram, in bits."""
        # Imported here, not at module level: repro.core's package init
        # pulls classify, which imports this module — a cycle that bites
        # whenever repro.flows loads before repro.core.
        from repro.core.entropy import sample_entropy

        return sample_entropy(self.counts_array())

    def top(self, k: int = 5) -> list[tuple[int, int]]:
        """The ``k`` heaviest (value, count) pairs."""
        return self._counts.most_common(k)

    def as_dict(self) -> dict[int, int]:
        """Copy of the underlying mapping."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __getitem__(self, value: int) -> int:
        return self._counts.get(value, 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeatureHistogram):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return f"FeatureHistogram(distinct={self.n_distinct}, total={self.total})"


def grouped_histograms(
    groups: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray | None = None,
) -> dict[int, FeatureHistogram]:
    """Histogram-per-group bulk constructor.

    One grouped reduction over the whole batch replaces a
    mask-and-Counter pass per group; groups with no positive-weight
    observations are absent from the result.
    """
    runs = group_reduce(groups, values, weights)
    return {
        int(gid): FeatureHistogram.from_grouped(*runs.slice(i))
        for i, gid in enumerate(runs.group_ids)
    }


@dataclass
class BinFeatures:
    """All four feature histograms plus volume counters for one bin."""

    histograms: tuple[FeatureHistogram, ...] = field(
        default_factory=lambda: tuple(FeatureHistogram() for _ in FEATURES)
    )
    packets: int = 0
    bytes: int = 0

    def __post_init__(self) -> None:
        if len(self.histograms) != N_FEATURES:
            raise ValueError(f"expected {N_FEATURES} histograms")

    @classmethod
    def from_batch(cls, batch: FlowRecordBatch) -> "BinFeatures":
        """Aggregate a record batch into per-feature histograms.

        Histograms are *packet-weighted*: a record with ``packets=k``
        contributes k observations, matching the paper's packet-count
        histograms.
        """
        hists = tuple(
            FeatureHistogram.from_values(getattr(batch, name), batch.packets)
            for name in FEATURES
        )
        return cls(histograms=hists, packets=batch.total_packets, bytes=batch.total_bytes)

    def histogram(self, feature: int | str) -> FeatureHistogram:
        """Histogram for a feature by index or name."""
        if isinstance(feature, str):
            feature = feature_index(feature)
        return self.histograms[feature]

    def merge(self, other: "BinFeatures") -> "BinFeatures":
        """Combine two bins' traffic."""
        hists = tuple(a.merge(b) for a, b in zip(self.histograms, other.histograms))
        return BinFeatures(
            histograms=hists,
            packets=self.packets + other.packets,
            bytes=self.bytes + other.bytes,
        )

    def entropies(self) -> np.ndarray:
        """4-vector of sample entropies in :data:`FEATURES` order."""
        return np.array([h.entropy() for h in self.histograms])
