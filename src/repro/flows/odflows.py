"""OD-flow aggregation and the TrafficCube.

The paper constructs, for every Origin-Destination flow and every
5-minute bin, six views of traffic: byte count, packet count, and the
sample entropy of the four traffic features.  :class:`TrafficCube`
holds exactly those views:

* ``packets`` and ``bytes`` — ``(t, p)`` volume matrices, and
* ``entropy`` — the three-way matrix ``H(t, p, k)`` of Section 4.2
  (time x OD flow x feature).

:class:`ODFlowAggregator` builds a cube from raw flow-record batches by
resolving each record's egress PoP (via :class:`repro.net.routing.Router`)
and accumulating per-OD feature histograms.  The synthetic traffic
generator (:mod:`repro.traffic.generator`) builds cubes directly — same
container, faster path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flows.binning import TimeBins
from repro.flows.features import FEATURES, N_FEATURES
from repro.flows.records import FlowRecordBatch
from repro.kernels import group_reduce, group_sums
from repro.net.routing import Router
from repro.net.topology import Topology

__all__ = ["TrafficCube", "ODFlowAggregator"]


@dataclass
class TrafficCube:
    """Network-wide OD-flow traffic views.

    Attributes:
        bins: The time-bin grid (t bins).
        n_od_flows: Number p of OD flows.
        packets: ``(t, p)`` packet counts.
        bytes: ``(t, p)`` byte counts.
        entropy: ``(t, p, 4)`` sample entropies, feature order
            :data:`repro.flows.features.FEATURES`.
        network: Optional name of the generating network.
    """

    bins: TimeBins
    n_od_flows: int
    packets: np.ndarray
    bytes: np.ndarray
    entropy: np.ndarray
    network: str = ""

    def __post_init__(self) -> None:
        t, p = self.bins.n_bins, self.n_od_flows
        self.packets = np.asarray(self.packets, dtype=np.float64)
        self.bytes = np.asarray(self.bytes, dtype=np.float64)
        self.entropy = np.asarray(self.entropy, dtype=np.float64)
        if self.packets.shape != (t, p):
            raise ValueError(f"packets shape {self.packets.shape} != {(t, p)}")
        if self.bytes.shape != (t, p):
            raise ValueError(f"bytes shape {self.bytes.shape} != {(t, p)}")
        if self.entropy.shape != (t, p, N_FEATURES):
            raise ValueError(
                f"entropy shape {self.entropy.shape} != {(t, p, N_FEATURES)}"
            )

    @classmethod
    def zeros(cls, bins: TimeBins, n_od_flows: int, network: str = "") -> "TrafficCube":
        """An all-zero cube of the given shape."""
        t = bins.n_bins
        return cls(
            bins=bins,
            n_od_flows=n_od_flows,
            packets=np.zeros((t, n_od_flows)),
            bytes=np.zeros((t, n_od_flows)),
            entropy=np.zeros((t, n_od_flows, N_FEATURES)),
            network=network,
        )

    @property
    def n_bins(self) -> int:
        """Number of time bins t."""
        return self.bins.n_bins

    def copy(self) -> "TrafficCube":
        """Deep copy (used by the anomaly injector)."""
        return TrafficCube(
            bins=self.bins,
            n_od_flows=self.n_od_flows,
            packets=self.packets.copy(),
            bytes=self.bytes.copy(),
            entropy=self.entropy.copy(),
            network=self.network,
        )

    def feature_matrix(self, feature: int) -> np.ndarray:
        """The ``(t, p)`` entropy matrix of one feature (paper Fig. 3)."""
        if not 0 <= feature < N_FEATURES:
            raise ValueError(f"feature index out of range: {feature}")
        return self.entropy[:, :, feature]

    def od_timeseries(self, od: int) -> dict[str, np.ndarray]:
        """All six views of one OD flow, keyed by view name."""
        series = {
            "packets": self.packets[:, od],
            "bytes": self.bytes[:, od],
        }
        for k, name in enumerate(FEATURES):
            series[f"H({name})"] = self.entropy[:, od, k]
        return series

    def slice_bins(self, start: int, stop: int) -> "TrafficCube":
        """Cube restricted to bins ``[start, stop)``."""
        if not 0 <= start < stop <= self.n_bins:
            raise ValueError("invalid bin slice")
        sub_bins = TimeBins(
            n_bins=stop - start,
            width=self.bins.width,
            start=self.bins.start + start * self.bins.width,
        )
        return TrafficCube(
            bins=sub_bins,
            n_od_flows=self.n_od_flows,
            packets=self.packets[start:stop].copy(),
            bytes=self.bytes[start:stop].copy(),
            entropy=self.entropy[start:stop].copy(),
            network=self.network,
        )

    def mean_od_pps(self) -> float:
        """Average OD-flow traffic intensity in packets/second.

        The paper quotes 2068 pps for the average Abilene OD flow in the
        injection timebin; this is the cube-wide analogue.
        """
        return float(self.packets.mean() / self.bins.width)


@dataclass
class ODFlowAggregator:
    """Build a :class:`TrafficCube` from raw flow-record batches.

    Records are attributed to OD flows by (ingress PoP, resolved egress
    PoP) and aggregated into packet-weighted feature histograms per
    (bin, OD flow); entropy is computed per histogram.  Everything runs
    through the grouped-reduction kernel (:mod:`repro.kernels`) on the
    composite ``bin * p + od`` group key: OD attribution is one
    vectorised longest-prefix lookup, histogramming one sort +
    ``reduceat`` per feature, and all per-(bin, OD) entropies fall out
    of a single grouped pass — no per-OD Python loop anywhere.

    Attributes:
        topology: The backbone (defines p and per-PoP prefixes).
        router: Egress resolution; built from the topology when omitted.
        apply_anonymization: When True, the topology's anonymisation
            (e.g. Abilene's 11 bits) is applied to record addresses
            *before* histogramming — anonymisation happens at the
            collector, so this is the realistic default.
        threads: Grouped-reduction kernel threads (any value is
            bit-identical to the single-threaded reference; see
            :func:`repro.kernels.group_reduce`).
    """

    topology: Topology
    router: Router | None = None
    apply_anonymization: bool = True
    threads: int = 1
    _parts: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.router is None:
            self.router = Router(self.topology)

    def aggregate(self, batch: FlowRecordBatch, bins: TimeBins) -> TrafficCube:
        """Aggregate one batch spanning the whole bin grid."""
        self._parts.clear()
        try:
            self._accumulate(batch, bins)
            return self._finalize(bins)
        finally:
            # Don't pin the record columns past the call (success or
            # not): the cube is small, the stash is the whole trace.
            self._parts.clear()

    def aggregate_stream(self, chunks, bins: TimeBins) -> TrafficCube:
        """Aggregate any iterable of record batches into one cube.

        The whole-trace reduction behind the batch pipeline mode:
        chunks are attributed and stashed one at a time, then reduced
        in a single kernel pass over the composite ``bin * p + od``
        keys — memory is bounded by the stashed key/value columns, not
        by per-(bin, OD) state.

        Args:
            chunks: Iterable of :class:`FlowRecordBatch` (any chunking;
                order does not matter for the exact reduction).
            bins: The bin grid to aggregate on.

        Returns:
            The same cube :meth:`aggregate` builds from the equivalent
            concatenated batch.
        """
        self._parts.clear()
        try:
            for chunk in chunks:
                self._accumulate(chunk, bins)
            return self._finalize(bins)
        finally:
            self._parts.clear()

    def aggregate_trace(self, path, bins: TimeBins | None = None) -> TrafficCube:
        """Aggregate a recorded columnar trace file into a cube.

        The trace (:mod:`repro.io.trace`) is replayed as memory-mapped
        chunk views; only the attribution keys and anonymised address
        columns are ever copied, so peak RSS stays far below the trace
        size.  ``bins`` defaults to the grid recorded in the trace
        header.

        Args:
            path: Trace-file path or an open
                :class:`repro.io.trace.TraceReader`.
            bins: Optional override of the bin grid to aggregate on.

        Returns:
            The same cube :meth:`aggregate` builds from the equivalent
            in-memory batch.
        """
        from repro.io.trace import TraceReader, trace_info
        from repro.stream.chunks import trace_record_stream

        if isinstance(path, TraceReader):
            grid = bins or path.bins
            source = trace_record_stream(path)
        else:
            # trace_info parses the header without mapping any columns.
            grid = bins or trace_info(path).bins
            source = trace_record_stream(path)
        return self.aggregate_stream(source, grid)

    def _accumulate(self, batch: FlowRecordBatch, bins: TimeBins) -> None:
        """Attribute one batch to (bin, OD) groups and stash the columns."""
        if len(batch) == 0:
            return
        idx = bins.indices(batch.timestamp)
        in_range = idx >= 0
        if not in_range.all():
            # Records outside the grid are dropped, mirroring collectors
            # that discard records outside the export window.
            batch = batch.select(in_range)
            idx = idx[in_range]
            if len(batch) == 0:
                return
        ods = self.router.resolve_ods_mixed(batch.ingress_pop, batch.dst_ip)
        if self.apply_anonymization and self.topology.anonymization_bits:
            batch = batch.anonymized(self.topology.anonymization_bits)
        groups = idx * self.topology.n_od_flows + ods
        self._parts.append((groups, batch))

    def _finalize(self, bins: TimeBins) -> TrafficCube:
        cube = TrafficCube.zeros(bins, self.topology.n_od_flows, self.topology.name)
        if not self._parts:
            return cube
        p = self.topology.n_od_flows
        n_groups = bins.n_bins * p
        groups = (
            self._parts[0][0]
            if len(self._parts) == 1
            else np.concatenate([g for g, _ in self._parts])
        )
        column = lambda name: (
            getattr(self._parts[0][1], name)
            if len(self._parts) == 1
            else np.concatenate([getattr(b, name) for _, b in self._parts])
        )
        packets = column("packets")
        cube.packets[:] = group_sums(groups, packets, n_groups).reshape(-1, p)
        cube.bytes[:] = group_sums(groups, column("bytes"), n_groups).reshape(-1, p)
        entropy_flat = cube.entropy.reshape(n_groups, N_FEATURES)
        for k, name in enumerate(FEATURES):
            runs = group_reduce(groups, column(name), packets,
                                threads=self.threads)
            entropy_flat[runs.group_ids, k] = runs.entropies()
        return cube
