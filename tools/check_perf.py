#!/usr/bin/env python
"""Throughput regression gates for the performance benchmarks.

Two gates, each comparing a freshly generated
``benchmarks/results/*.json`` against the committed baseline
(``git show HEAD:...`` by default) and failing — exit code 1 — on a
drop larger than the allowed fraction (default 20%):

* **streaming** — exact-mode engine ingest (``streaming.json``);
* **trace replay** — warm mmap replay ingest of the columnar trace
  store (``trace.json``).  Skipped with a note when no fresh
  ``trace.json`` exists (so streaming-only runs keep working);
* **precomputed detection** — exact detection from a warm version-2
  trace's derived columns (``trace_detect.json``): an *absolute*
  records/s floor (``--min-detect-rate``, default 10M) plus the usual
  relative gate once a baseline is committed.  Skipped with a note
  when no fresh ``trace_detect.json`` exists;
* **pipeline** — stream-mode end-to-end scenario ingest of the unified
  ``DetectionPipeline`` (``pipeline.json``, the ``baseline-diurnal``
  row).  Skipped with a note when no fresh ``pipeline.json`` exists;
* **cluster scaling** — the networked-cluster curve
  (``cluster_net.json``): the 2-worker pipe cluster must beat the
  1-worker run by ``--min-cluster-speedup`` when the recording host
  had >= 2 CPUs; on a 1-core host the requirement degrades to "no
  shared-trace inversion" (the 2-worker rate must stay above
  ``SINGLE_CORE_CLUSTER_FLOOR`` of 1-worker — the historical
  regression this gate pins down was 0.72x).  Skipped with a note when
  no fresh ``cluster_net.json`` exists; ``--cluster-only`` runs just
  this gate (for CI jobs that generate only the cluster benchmark).

A fourth gate bounds the cost of the *dormant* instrumentation hooks
(``--max-telemetry-overhead``, default 2%): benchmarks run with
telemetry off, no chaos plan, and no checkpoint, so the best fresh
streaming-exact repeat against the committed baseline median is
exactly what the disabled ``telemetry.span``/``count`` call sites plus
the resilience supervision call sites (the worker's per-ship chaos
check, the coordinator's ``on_bin_merged`` spill hook) cost on the
streaming hot path.  When a throughput gate
fails and both JSONs carry the benchmarks' ``stages`` breakdown, a
per-stage delta table is printed so the regression is localised to a
stage (source, reduce, score, kernels) instead of re-profiled by hand.

Run after the benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py
    PYTHONPATH=src python -m pytest benchmarks/bench_trace.py
    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py
    python tools/check_perf.py

Slow or heavily-shared runners can skip the gates by exporting
``REPRO_SKIP_PERF_GATE=1`` (the check prints what it *would* have
compared and exits 0).  Baselines in the old single-run scalar format
and the current median/min/max spread format are both accepted.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
FRESH_DEFAULT = RESULTS_DIR / "streaming.json"
TRACE_FRESH_DEFAULT = RESULTS_DIR / "trace.json"
TRACE_DETECT_FRESH_DEFAULT = RESULTS_DIR / "trace_detect.json"
PIPELINE_FRESH_DEFAULT = RESULTS_DIR / "pipeline.json"
CLUSTER_FRESH_DEFAULT = RESULTS_DIR / "cluster_net.json"
BASELINE_GIT_PATH = "benchmarks/results/streaming.json"
TRACE_BASELINE_GIT_PATH = "benchmarks/results/trace.json"
TRACE_DETECT_BASELINE_GIT_PATH = "benchmarks/results/trace_detect.json"
PIPELINE_BASELINE_GIT_PATH = "benchmarks/results/pipeline.json"
#: Absolute floor for exact detection from a warm precomputed trace
#: (records/s median).  Unlike the relative gates this holds even when
#: the committed baseline itself regresses; slow shared runners lower
#: it with ``--min-detect-rate``.
DETECT_FLOOR_DEFAULT = 10_000_000.0
#: The pipeline gate's reference row: the clean-background scenario's
#: stream-mode ingest (the least detection-count-sensitive number).
PIPELINE_GATE_SCENARIO = "baseline-diurnal"
#: Minimum 2-worker/1-worker ratio on a 1-core host: two processes on
#: one core cannot beat Amdahl, but they must not re-open the 0.72x
#: shared-trace inversion either (disjoint OD split + stored
#: attribution keep the measured ratio around 0.8-0.96).
SINGLE_CORE_CLUSTER_FLOOR = 0.75
SKIP_ENV = "REPRO_SKIP_PERF_GATE"


def _rate(entry) -> float:
    """A records/sec number from either JSON layout.

    Spread entries (``{"median": ..., "min": ..., "max": ...}``) yield
    the median; pre-spread baselines stored a bare float.
    """
    if isinstance(entry, dict):
        return float(entry["median"])
    return float(entry)


def _load_baseline(spec: str, git_path: str = BASELINE_GIT_PATH) -> dict:
    if spec == "git:HEAD":
        payload = subprocess.run(
            ["git", "show", f"HEAD:{git_path}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(payload)
    return json.loads(Path(spec).read_text())


def _fmt_s(value) -> str:
    return "-" if value is None else f"{float(value) * 1000:,.1f}ms"


def _stage_table(fresh_stages: dict, base_stages: dict) -> str:
    """Per-stage delta table localising a throughput regression.

    Rendered only when a gate fails and both the fresh and committed
    JSONs carry the ``stages`` breakdown the benchmarks persist (one
    instrumented run alongside the uninstrumented timed repeats).
    """
    labels = sorted(set(fresh_stages) | set(base_stages))
    lines = [
        "  per-stage delta (single instrumented run, total time per span):",
        f"    {'span':<26} {'baseline':>10} {'fresh':>10} {'delta':>8}",
    ]
    for label in labels:
        base = base_stages.get(label, {}).get("total_s")
        fresh = fresh_stages.get(label, {}).get("total_s")
        if base is None:
            delta = "new"
        elif fresh is None:
            delta = "gone"
        elif base > 0:
            delta = f"{(fresh - base) / base:+.0%}"
        else:
            delta = "-"
        lines.append(
            f"    {label:<26} {_fmt_s(base):>10} {_fmt_s(fresh):>10} {delta:>8}"
        )
    return "\n".join(lines)


def _gate(
    name: str,
    fresh_rate: float,
    base_rate: float,
    max_regression: float,
    fresh_stages: dict | None = None,
    base_stages: dict | None = None,
) -> bool:
    floor = (1.0 - max_regression) * base_rate
    ok = fresh_rate >= floor
    verdict = "OK" if ok else "REGRESSION"
    print(
        f"perf gate [{verdict}]: {name} {fresh_rate:,.0f} records/s "
        f"vs baseline {base_rate:,.0f} (floor {floor:,.0f}, "
        f"-{max_regression:.0%} allowed)"
    )
    if not ok and fresh_stages and base_stages:
        print(_stage_table(fresh_stages, base_stages))
    return ok


def _telemetry_overhead_gate(fresh: dict, baseline: dict, max_overhead: float) -> bool:
    """Gate the cost of the dormant instrumentation hooks on the hot path.

    The benchmarks run with telemetry off, no chaos plan, and no
    checkpoint, so the fresh streaming-exact rate already pays for
    every dormant ``telemetry.span``/``count`` call site and every
    resilience supervision call site (chaos checks, the checkpoint
    spill hook).  Comparing the best fresh repeat (least scheduler
    noise) against the committed baseline median bounds that overhead:
    hooks costing more than ``max_overhead`` of throughput fail the
    gate.
    """
    entry = fresh["records_per_sec"]["streaming_exact"]
    fresh_best = float(entry["max"]) if isinstance(entry, dict) else float(entry)
    base_rate = _rate(baseline["records_per_sec"]["streaming_exact"])
    floor = (1.0 - max_overhead) * base_rate
    ok = fresh_best >= floor
    verdict = "OK" if ok else "REGRESSION"
    observed = max(0.0, 1.0 - fresh_best / base_rate) if base_rate else 0.0
    print(
        f"dormant-hook overhead gate [{verdict}]: streaming exact "
        f"(telemetry + resilience hooks disabled) "
        f"best-of-repeats {fresh_best:,.0f} records/s vs baseline "
        f"{base_rate:,.0f} ({observed:.1%} slower, {max_overhead:.0%} allowed)"
    )
    return ok


def _cluster_gate(fresh: dict, min_speedup: float) -> bool:
    """Gate the networked-cluster scaling curve.

    ``cluster_net.json`` records the host's CPU count alongside the
    curve, so the gate is runner-scaled: with cores to scale onto the
    2-worker pipe cluster must actually go faster; on a 1-core host it
    must merely stay clear of the historical shared-trace inversion.
    """
    rates = fresh["records_per_sec"]
    speedup = float(rates["pipe.2"]) / float(rates["pipe.1"])
    cpus = int(fresh.get("cpus", 1))
    if cpus >= 2:
        floor, basis = min_speedup, f"{cpus}-core floor"
    else:
        floor, basis = SINGLE_CORE_CLUSTER_FLOOR, "1-core no-inversion floor"
    ok = speedup >= floor
    verdict = "OK" if ok else "REGRESSION"
    print(
        f"perf gate [{verdict}]: cluster 2-worker speedup x{speedup:.2f} "
        f"vs {basis} x{floor:.2f} "
        f"(pipe.2 {float(rates['pipe.2']):,.0f} records/s, "
        f"pipe.1 {float(rates['pipe.1']):,.0f})"
    )
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh",
        default=str(FRESH_DEFAULT),
        help="freshly generated streaming.json (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--baseline",
        default="git:HEAD",
        help="committed baseline: 'git:HEAD' (default) or a file path",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional drop in records/sec (default 0.20)",
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=0.02,
        help="allowed fractional ingest cost of the disabled telemetry "
        "hooks, best fresh repeat vs baseline median (default 0.02)",
    )
    parser.add_argument(
        "--trace-fresh",
        default=str(TRACE_FRESH_DEFAULT),
        help="freshly generated trace.json (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--trace-baseline",
        default="git:HEAD",
        help="committed trace baseline: 'git:HEAD' (default) or a file path",
    )
    parser.add_argument(
        "--trace-detect-fresh",
        default=str(TRACE_DETECT_FRESH_DEFAULT),
        help="freshly generated trace_detect.json (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--trace-detect-baseline",
        default="git:HEAD",
        help="committed trace_detect baseline: 'git:HEAD' (default) or a "
        "file path",
    )
    parser.add_argument(
        "--min-detect-rate",
        type=float,
        default=DETECT_FLOOR_DEFAULT,
        help="absolute records/s floor for exact detection from a warm "
        f"precomputed trace (default {DETECT_FLOOR_DEFAULT:,.0f}; lower it "
        "on slow shared runners)",
    )
    parser.add_argument(
        "--telemetry-delta",
        metavar="PATH",
        help="also write the per-stage span delta tables (fresh vs "
        "baseline, every benchmark that carries a stages breakdown) to "
        "this file — pass/fail independent, meant for CI artifacts",
    )
    parser.add_argument(
        "--pipeline-fresh",
        default=str(PIPELINE_FRESH_DEFAULT),
        help="freshly generated pipeline.json (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--pipeline-baseline",
        default="git:HEAD",
        help="committed pipeline baseline: 'git:HEAD' (default) or a file path",
    )
    parser.add_argument(
        "--cluster-fresh",
        default=str(CLUSTER_FRESH_DEFAULT),
        help="freshly generated cluster_net.json (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--min-cluster-speedup",
        type=float,
        default=1.2,
        help="required 2-worker/1-worker cluster throughput ratio when the "
        "recording host had >= 2 CPUs (default 1.2); 1-core hosts use the "
        f"no-inversion floor x{SINGLE_CORE_CLUSTER_FLOOR:.2f} instead",
    )
    parser.add_argument(
        "--cluster-only",
        action="store_true",
        help="run only the cluster-scaling gate (CI jobs that generate "
        "just benchmarks/bench_cluster_net.py results)",
    )
    args = parser.parse_args(argv)

    if os.environ.get(SKIP_ENV):
        print(f"perf gate skipped ({SKIP_ENV} set)")
        return 0

    def _cluster_section() -> bool:
        cluster_fresh_path = Path(args.cluster_fresh)
        if not cluster_fresh_path.exists():
            print("perf gate: no fresh cluster_net.json; cluster-scaling "
                  "gate skipped (run benchmarks/bench_cluster_net.py to "
                  "enable it)")
            return True
        return _cluster_gate(
            json.loads(cluster_fresh_path.read_text()),
            args.min_cluster_speedup,
        )

    if args.cluster_only:
        return 0 if _cluster_section() else 1

    try:
        fresh = json.loads(Path(args.fresh).read_text())
    except OSError as exc:
        print(f"perf gate: cannot read fresh results: {exc}", file=sys.stderr)
        return 1
    try:
        baseline = _load_baseline(args.baseline)
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError) as exc:
        print(f"perf gate: cannot load baseline ({args.baseline}): {exc}",
              file=sys.stderr)
        return 1

    #: (section title, fresh stages, baseline stages) for the optional
    #: --telemetry-delta artifact.
    delta_sections: list[tuple[str, dict, dict]] = []

    def _collect_delta(name: str, fresh_stages, base_stages) -> None:
        if fresh_stages and base_stages:
            delta_sections.append((name, fresh_stages, base_stages))

    _collect_delta(
        "streaming exact",
        fresh.get("stages", {}).get("streaming_exact"),
        baseline.get("stages", {}).get("streaming_exact"),
    )
    ok = _gate(
        "streaming exact",
        _rate(fresh["records_per_sec"]["streaming_exact"]),
        _rate(baseline["records_per_sec"]["streaming_exact"]),
        args.max_regression,
        fresh_stages=fresh.get("stages", {}).get("streaming_exact"),
        base_stages=baseline.get("stages", {}).get("streaming_exact"),
    )
    ok &= _telemetry_overhead_gate(fresh, baseline, args.max_telemetry_overhead)

    trace_fresh_path = Path(args.trace_fresh)
    if not trace_fresh_path.exists():
        print("perf gate: no fresh trace.json; trace replay gate skipped "
              "(run benchmarks/bench_trace.py to enable it)")
    else:
        trace_fresh = json.loads(trace_fresh_path.read_text())
        try:
            trace_base = _load_baseline(args.trace_baseline, TRACE_BASELINE_GIT_PATH)
        except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
            print("perf gate: no committed trace baseline yet; trace replay "
                  "gate records fresh numbers only")
            trace_base = None
        if trace_base is not None:
            _collect_delta(
                "trace replay (warm mmap)",
                trace_fresh.get("stages", {}).get("replay_mmap_warm"),
                trace_base.get("stages", {}).get("replay_mmap_warm"),
            )
            ok &= _gate(
                "trace replay (warm mmap)",
                _rate(trace_fresh["records_per_sec"]["replay_mmap_warm"]),
                _rate(trace_base["records_per_sec"]["replay_mmap_warm"]),
                args.max_regression,
                fresh_stages=trace_fresh.get("stages", {}).get("replay_mmap_warm"),
                base_stages=trace_base.get("stages", {}).get("replay_mmap_warm"),
            )

    detect_fresh_path = Path(args.trace_detect_fresh)
    if not detect_fresh_path.exists():
        print("perf gate: no fresh trace_detect.json; precomputed-detection "
              "gate skipped (run benchmarks/bench_trace.py to enable it)")
    else:
        detect_fresh = json.loads(detect_fresh_path.read_text())
        detect_rate = _rate(
            detect_fresh["records_per_sec"]["detect_precomputed_warm"]
        )
        # Absolute floor first: the acceptance bar for the precomputed
        # path, independent of whatever the baseline happens to hold.
        floor_ok = detect_rate >= args.min_detect_rate
        verdict = "OK" if floor_ok else "REGRESSION"
        print(
            f"perf gate [{verdict}]: precomputed detection "
            f"{detect_rate:,.0f} records/s vs absolute floor "
            f"{args.min_detect_rate:,.0f}"
        )
        ok &= floor_ok
        try:
            detect_base = _load_baseline(
                args.trace_detect_baseline, TRACE_DETECT_BASELINE_GIT_PATH
            )
        except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
            print("perf gate: no committed trace_detect baseline yet; "
                  "relative precomputed-detection gate records fresh "
                  "numbers only")
            detect_base = None
        if detect_base is not None:
            _collect_delta(
                "precomputed detection (warm)",
                detect_fresh.get("stages", {}).get("detect_precomputed_warm"),
                detect_base.get("stages", {}).get("detect_precomputed_warm"),
            )
            ok &= _gate(
                "precomputed detection (warm)",
                detect_rate,
                _rate(detect_base["records_per_sec"]["detect_precomputed_warm"]),
                args.max_regression,
                fresh_stages=detect_fresh.get("stages", {})
                .get("detect_precomputed_warm"),
                base_stages=detect_base.get("stages", {})
                .get("detect_precomputed_warm"),
            )

    pipeline_fresh_path = Path(args.pipeline_fresh)
    if not pipeline_fresh_path.exists():
        print("perf gate: no fresh pipeline.json; pipeline gate skipped "
              "(run benchmarks/bench_pipeline.py to enable it)")
    else:
        pipeline_fresh = json.loads(pipeline_fresh_path.read_text())
        try:
            pipeline_base = _load_baseline(
                args.pipeline_baseline, PIPELINE_BASELINE_GIT_PATH
            )
        except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
            print("perf gate: no committed pipeline baseline yet; pipeline "
                  "gate records fresh numbers only")
            pipeline_base = None
        if pipeline_base is not None:
            row = PIPELINE_GATE_SCENARIO
            _collect_delta(
                f"pipeline stream mode ({row})",
                pipeline_fresh.get("stages", {}).get(row, {}).get("stream"),
                pipeline_base.get("stages", {}).get(row, {}).get("stream"),
            )
            ok &= _gate(
                f"pipeline stream mode ({row})",
                _rate(pipeline_fresh["records_per_sec"][row]["stream"]),
                _rate(pipeline_base["records_per_sec"][row]["stream"]),
                args.max_regression,
                fresh_stages=pipeline_fresh.get("stages", {})
                .get(row, {})
                .get("stream"),
                base_stages=pipeline_base.get("stages", {}).get(row, {}).get("stream"),
            )

    ok &= _cluster_section()

    if args.telemetry_delta:
        sections = [
            f"== {name} ==\n{_stage_table(fresh_stages, base_stages)}"
            for name, fresh_stages, base_stages in delta_sections
        ] or ["(no benchmark carried a stages breakdown on both sides)"]
        delta_path = Path(args.telemetry_delta)
        delta_path.parent.mkdir(parents=True, exist_ok=True)
        delta_path.write_text(
            "Per-stage span deltas, fresh vs committed baseline\n\n"
            + "\n\n".join(sections)
            + "\n"
        )
        print(f"wrote telemetry delta: {delta_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
