#!/usr/bin/env python
"""Throughput regression gate for the streaming benchmark.

Compares a freshly generated ``benchmarks/results/streaming.json``
against the committed baseline (``git show HEAD:...`` by default) and
fails — exit code 1 — when exact-mode ingest regresses by more than
the allowed fraction (default 20%).  Run it after ``bench_streaming``:

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py
    python tools/check_perf.py

Slow or heavily-shared runners can skip the gate by exporting
``REPRO_SKIP_PERF_GATE=1`` (the check prints what it *would* have
compared and exits 0).  Baselines in the old single-run scalar format
and the current median/min/max spread format are both accepted.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FRESH_DEFAULT = REPO_ROOT / "benchmarks" / "results" / "streaming.json"
BASELINE_GIT_PATH = "benchmarks/results/streaming.json"
SKIP_ENV = "REPRO_SKIP_PERF_GATE"


def _rate(entry) -> float:
    """A records/sec number from either JSON layout.

    Spread entries (``{"median": ..., "min": ..., "max": ...}``) yield
    the median; pre-spread baselines stored a bare float.
    """
    if isinstance(entry, dict):
        return float(entry["median"])
    return float(entry)


def _load_baseline(spec: str) -> dict:
    if spec == "git:HEAD":
        payload = subprocess.run(
            ["git", "show", f"HEAD:{BASELINE_GIT_PATH}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(payload)
    return json.loads(Path(spec).read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh",
        default=str(FRESH_DEFAULT),
        help="freshly generated streaming.json (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--baseline",
        default="git:HEAD",
        help="committed baseline: 'git:HEAD' (default) or a file path",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional drop in exact-mode records/sec (default 0.20)",
    )
    args = parser.parse_args(argv)

    if os.environ.get(SKIP_ENV):
        print(f"perf gate skipped ({SKIP_ENV} set)")
        return 0

    try:
        fresh = json.loads(Path(args.fresh).read_text())
    except OSError as exc:
        print(f"perf gate: cannot read fresh results: {exc}", file=sys.stderr)
        return 1
    try:
        baseline = _load_baseline(args.baseline)
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError) as exc:
        print(f"perf gate: cannot load baseline ({args.baseline}): {exc}",
              file=sys.stderr)
        return 1

    fresh_rate = _rate(fresh["records_per_sec"]["streaming_exact"])
    base_rate = _rate(baseline["records_per_sec"]["streaming_exact"])
    floor = (1.0 - args.max_regression) * base_rate
    verdict = "OK" if fresh_rate >= floor else "REGRESSION"
    print(
        f"perf gate [{verdict}]: streaming exact {fresh_rate:,.0f} records/s "
        f"vs baseline {base_rate:,.0f} (floor {floor:,.0f}, "
        f"-{args.max_regression:.0%} allowed)"
    )
    return 0 if fresh_rate >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
