"""Docs check: compile (and optionally execute) fenced code in the docs.

Every ```python block in README.md and docs/ARCHITECTURE.md must at
least compile; blocks immediately preceded by an HTML comment marker::

    <!-- docs-check: run -->

are additionally executed when ``--run`` is passed (CI does this), so
the quickstarts cannot rot silently.  Bash blocks are checked for the
obvious footgun of referencing files that do not exist.

Usage:
    PYTHONPATH=src python tools/check_docs.py [--run]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = ("README.md", "docs/ARCHITECTURE.md")
RUN_MARKER = "<!-- docs-check: run -->"

_FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)


def extract_blocks(text: str):
    """Yield (language, code, runnable, line_number) for each fence."""
    for match in _FENCE.finditer(text):
        language, code = match.group(1), match.group(2)
        prefix = text[: match.start()].rstrip()
        runnable = prefix.endswith(RUN_MARKER)
        line = text[: match.start()].count("\n") + 1
        yield language, code, runnable, line


def check_file(path: Path, run: bool) -> list[str]:
    errors = []
    text = path.read_text()
    n_python = n_executed = 0
    for language, code, runnable, line in extract_blocks(text):
        if language != "python":
            continue
        n_python += 1
        try:
            compiled = compile(code, f"{path.name}:{line}", "exec")
        except SyntaxError as exc:
            errors.append(f"{path.name}:{line}: syntax error: {exc}")
            continue
        if run and runnable:
            n_executed += 1
            namespace: dict = {}
            try:
                exec(compiled, namespace)
            except Exception as exc:  # noqa: BLE001 - report any failure
                errors.append(f"{path.name}:{line}: execution failed: {exc!r}")
    mode = f"{n_executed} executed" if run else "compile-only"
    print(f"{path.name}: {n_python} python block(s) checked ({mode})")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--run",
        action="store_true",
        help="execute blocks marked with the run marker (slower)",
    )
    args = parser.parse_args(argv)
    errors: list[str] = []
    for name in DOCS:
        path = REPO / name
        if not path.exists():
            errors.append(f"{name}: missing")
            continue
        errors.extend(check_file(path, run=args.run))
    for error in errors:
        print(f"ERROR {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
