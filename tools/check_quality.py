#!/usr/bin/env python
"""Detection-quality regression gate — ``check_perf.py``'s sibling.

Compares a freshly generated ``benchmarks/results/quality.json``
against the committed baseline (``git show HEAD:...`` by default) and
fails — exit code 1 — when detection quality drops:

* per scenario (registered and fuzzed) and per detection channel,
  precision or recall may not fall more than ``--max-drop`` (absolute,
  default 0.05) below the baseline;
* every baseline scenario must still be present in the fresh results
  (a vanished scenario is a silent coverage loss, not an improvement);
* grid cells are compared cell-by-cell under the same tolerance, keyed
  by their (intensity, sketch width, sampling rate) coordinates.

The quality payload is bit-reproducible for a given seed, so on an
unchanged detector the gate compares identical numbers; any slack
``--max-drop`` grants is for deliberate, reviewed trade-offs (a faster
sketch that loses a point of recall), not for noise.

Run after the quality benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_quality.py
    python tools/check_quality.py

Skip with ``REPRO_SKIP_QUALITY_GATE=1`` (prints what it would have
compared and exits 0).  Improvements are reported but never fail the
gate; commit the fresh JSON to ratchet the baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FRESH_DEFAULT = REPO_ROOT / "benchmarks" / "results" / "quality.json"
BASELINE_GIT_PATH = "benchmarks/results/quality.json"
SKIP_ENV = "REPRO_SKIP_QUALITY_GATE"

#: Channels the gate enforces ("volume" rides along inside "any").
GATED_CHANNELS = ("entropy", "any")
GATED_METRICS = ("precision", "recall")


def _load_baseline(spec: str) -> dict:
    if spec == "git:HEAD":
        payload = subprocess.run(
            ["git", "show", f"HEAD:{BASELINE_GIT_PATH}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return json.loads(payload)
    return json.loads(Path(spec).read_text())


def _gate(name: str, metric: str, fresh: float, base: float, max_drop: float) -> bool:
    ok = fresh >= base - max_drop
    if fresh > base:
        print(f"quality gate [IMPROVED]: {name} {metric} {base:.3f} -> {fresh:.3f}")
    elif ok:
        print(f"quality gate [OK]: {name} {metric} {fresh:.3f} "
              f"vs baseline {base:.3f} (-{max_drop:.2f} allowed)")
    else:
        print(f"quality gate [REGRESSION]: {name} {metric} {fresh:.3f} "
              f"vs baseline {base:.3f} (floor {base - max_drop:.3f})")
    return ok


def _compare_channels(name: str, fresh_channels: dict, base_channels: dict,
                      max_drop: float) -> bool:
    ok = True
    for channel in GATED_CHANNELS:
        base_ch = base_channels.get(channel)
        fresh_ch = fresh_channels.get(channel)
        if base_ch is None:
            continue
        if fresh_ch is None:
            print(f"quality gate [MISSING]: {name} lost channel {channel!r}")
            ok = False
            continue
        for metric in GATED_METRICS:
            ok &= _gate(f"{name}/{channel}", metric,
                        float(fresh_ch[metric]), float(base_ch[metric]), max_drop)
    return ok


def _cell_key(cell: dict) -> tuple:
    return (cell["intensity_scale"], cell["sketch_width"], cell["sampling_rate"])


def compare(fresh: dict, baseline: dict, max_drop: float) -> bool:
    """All gates over one fresh/baseline payload pair."""
    ok = True
    fresh_scenarios = fresh.get("scenarios", {})
    for name, base_entry in sorted(baseline.get("scenarios", {}).items()):
        fresh_entry = fresh_scenarios.get(name)
        if fresh_entry is None:
            print(f"quality gate [MISSING]: scenario {name!r} vanished from "
                  f"fresh results")
            ok = False
            continue
        ok &= _compare_channels(name, fresh_entry["channels"],
                               base_entry["channels"], max_drop)
    fresh_cells = {_cell_key(c): c for c in fresh.get("grid", [])}
    for base_cell in baseline.get("grid", []):
        key = _cell_key(base_cell)
        fresh_cell = fresh_cells.get(key)
        label = ("grid[x{0}, w{1}, 1/{2}]".format(*key))
        if fresh_cell is None:
            print(f"quality gate [MISSING]: {label} vanished from fresh grid")
            ok = False
            continue
        ok &= _compare_channels(label, fresh_cell["channels"],
                               base_cell["channels"], max_drop)
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh",
        default=str(FRESH_DEFAULT),
        help="freshly generated quality.json (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--baseline",
        default="git:HEAD",
        help="committed baseline: 'git:HEAD' (default) or a file path",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.05,
        help="allowed absolute drop in precision/recall (default 0.05)",
    )
    args = parser.parse_args(argv)

    if os.environ.get(SKIP_ENV):
        print(f"quality gate skipped ({SKIP_ENV} set)")
        return 0

    try:
        fresh = json.loads(Path(args.fresh).read_text())
    except OSError as exc:
        print(f"quality gate: cannot read fresh results: {exc}", file=sys.stderr)
        return 1
    try:
        baseline = _load_baseline(args.baseline)
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
        print("quality gate: no committed quality baseline yet; fresh numbers "
              "recorded only (commit benchmarks/results/quality.json to arm "
              "the gate)")
        return 0

    if fresh.get("seed") != baseline.get("seed"):
        print(f"quality gate: seed mismatch (fresh {fresh.get('seed')} vs "
              f"baseline {baseline.get('seed')}); numbers are not comparable",
              file=sys.stderr)
        return 1

    return 0 if compare(fresh, baseline, args.max_drop) else 1


if __name__ == "__main__":
    sys.exit(main())
