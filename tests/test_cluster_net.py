"""Tests for the networked cluster transport and the aggregator tier.

Three contracts pin the scale-out PR:

* **wire safety** — the framed-TCP codec round-trips every runner
  message, rejects garbage with :class:`FrameError` (routing it into
  the supervised-restart path instead of crashing the coordinator),
  and reassembles frames from arbitrary stream fragmentation;
* **merge invariance** — :class:`TierMerge` emits the same merged
  bytes for *any* arrival interleaving of its children's summaries
  (per-child bin order is the only requirement), so an aggregator
  tier can never change a detection;
* **end-to-end bit-identity** — detections over loopback TCP, at any
  shard count and tier shape, striped or OD-sharded, render
  byte-for-byte equal to the frozen single-process fixture
  (``tests/data/seed_stream_detections.json``).
"""

import multiprocessing
import socket
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_cluster import _random_batch, _summary_from_batch
from test_trace_precompute import _render, _seed_workload, _write_batches

from repro.cli import main
from repro.cluster import (
    FrameError,
    SummaryCorruptError,
    TierMerge,
    parse_hostport,
    parse_tiers,
    run_cluster_source,
)
from repro.cluster.transport import (
    MAX_FRAME_BYTES,
    _encode_frame,
    _FrameBuffer,
    decode_message,
    encode_message,
    serve,
)
from repro.net.routing import Router
from repro.net.topology import abilene
from repro.pipeline.sources import SyntheticSource, TraceSource
from repro.resilience import ResiliencePolicy
from repro.stream import StreamConfig

DATA_DIR = Path(__file__).parent / "data"


class TestParseHelpers:
    def test_hostport(self):
        assert parse_hostport("10.0.0.7:9100") == ("10.0.0.7", 9100)
        assert parse_hostport(":9100") == ("0.0.0.0", 9100)
        assert parse_hostport("host:0") == ("host", 0)  # 0 = ephemeral
        for bad in ("nohost", "host:", "host:notaport", "host:70000", "host:-4"):
            with pytest.raises(ValueError):
                parse_hostport(bad)

    def test_tiers(self):
        assert parse_tiers("2x2") == (2, 2)
        assert parse_tiers("4X2") == (4, 2)
        assert parse_tiers("2×3") == (2, 3)  # the unicode ×
        assert parse_tiers((3, 5)) == (3, 5)
        for bad in ("x2", "2x", "0x3", "2x0", "axb", "2x2x2", "-1x2", ""):
            with pytest.raises(ValueError):
                parse_tiers(bad)


class TestFrameCodec:
    def _messages(self):
        rng = np.random.default_rng(0)
        payload = _summary_from_batch(
            _random_batch(60, rng), rng.integers(0, 4, size=60)
        ).to_bytes()
        return [
            ("summary", 3, 1, payload, {"bin": 4, "rss": 123}),
            ("summary", 0, 0, payload, None),
            ("close", 2, 1, 4021, 7, {"counters": {"x": 1}}),
            ("close", 1, 0, {0: 10, 1: 20}, 0, None),
            ("error", 5, 2, "Traceback (most recent call last):\n  boom"),
        ]

    def test_round_trip_every_kind(self):
        buffer = _FrameBuffer()
        for message in self._messages():
            frames = buffer.feed(encode_message(message))
            assert len(frames) == 1
            assert decode_message(*frames[0]) == message

    def test_reassembly_is_fragmentation_invariant(self):
        wire = b"".join(encode_message(m) for m in self._messages())
        for step in (1, 3, 7, 64, len(wire)):
            buffer = _FrameBuffer()
            decoded = []
            for i in range(0, len(wire), step):
                for header, payload in buffer.feed(wire[i:i + step]):
                    decoded.append(decode_message(header, payload))
            assert decoded == self._messages()

    def test_garbage_prefix_is_a_frame_error(self):
        with pytest.raises(FrameError):
            _FrameBuffer().feed(b"\xff" * 64)

    def test_hostile_length_is_a_frame_error(self):
        import struct

        huge = struct.pack("<II", MAX_FRAME_BYTES + 1, 16)
        with pytest.raises(FrameError):
            _FrameBuffer().feed(huge)

    def test_bad_header_json_is_a_frame_error(self):
        import struct

        head = b"not json at all"
        raw = struct.pack("<II", len(head), len(head)) + head
        with pytest.raises(FrameError):
            _FrameBuffer().feed(raw)

    def test_unknown_kind_is_a_frame_error(self):
        with pytest.raises(FrameError):
            decode_message({"kind": "exfiltrate", "shard": 0, "attempt": 0}, b"")

    def test_corrupt_summary_payload_survives_framing(self):
        # Framing must deliver a bit-flipped summary intact so the
        # CRC inside the RBS2 payload (not the transport) catches it.
        from repro.cluster import ShardBinSummary
        from repro.resilience import corrupt_payload

        rng = np.random.default_rng(1)
        good = _summary_from_batch(
            _random_batch(50, rng), rng.integers(0, 4, size=50)
        ).to_bytes()
        bad = corrupt_payload(good)
        frames = _FrameBuffer().feed(
            encode_message(("summary", 0, 0, bad, None))
        )
        delivered = decode_message(*frames[0])[3]
        assert delivered == bad
        with pytest.raises(SummaryCorruptError):
            ShardBinSummary.from_bytes(delivered)


def _child_streams(n_children=3, n_bins=4, seed=8):
    """Per-child, per-bin summaries over a shared random workload."""
    rng = np.random.default_rng(seed)
    streams = []
    for _ in range(n_children):
        summaries = []
        for b in range(n_bins):
            batch = _random_batch(40, rng, t0=b * 300.0)
            summaries.append(
                _summary_from_batch(batch, rng.integers(0, 4, size=40),
                                    bin_index=b)
            )
        streams.append(summaries)
    return streams


_STREAMS = _child_streams()
_EVENT_POOL = [
    (child, summary)
    for child, stream in enumerate(_STREAMS)
    for summary in stream
]


def _reference_emission():
    tier = TierMerge(range(len(_STREAMS)))
    out = []
    for b in range(len(_STREAMS[0])):
        for child, stream in enumerate(_STREAMS):
            out.extend(tier.add_summary(child, stream[b]))
    for child in range(len(_STREAMS)):
        out.extend(tier.close_child(child))
    return [(s.bin, s.to_bytes()) for s in out]


class TestTierMergeInvariance:
    def test_emits_in_bin_order_once_all_children_advance(self):
        reference = _reference_emission()
        assert [b for b, _ in reference] == list(range(len(_STREAMS[0])))

    @settings(max_examples=40, deadline=None)
    @given(order=st.permutations(list(range(len(_EVENT_POOL)))),
           close_order=st.permutations(list(range(len(_STREAMS)))))
    def test_any_arrival_interleaving_merges_identically(
        self, order, close_order
    ):
        # Project the shuffled event indices back to a per-child
        # FIFO delivery: each child's summaries still arrive in bin
        # order (the transport guarantees that), but children
        # interleave arbitrarily.
        per_child = [iter(stream) for stream in _STREAMS]
        tier = TierMerge(range(len(_STREAMS)))
        emitted = []
        for index in order:
            child = _EVENT_POOL[index][0]
            emitted.extend(tier.add_summary(child, next(per_child[child])))
        for child in close_order:
            emitted.extend(tier.close_child(child))
        assert [(s.bin, s.to_bytes()) for s in emitted] == _reference_emission()

    def test_serialized_arrival_round_trips(self):
        tier = TierMerge(range(len(_STREAMS)))
        emitted = []
        for b in range(len(_STREAMS[0])):
            for child, stream in enumerate(_STREAMS):
                emitted.extend(
                    tier.add_serialized(child, stream[b].to_bytes())
                )
        for child in range(len(_STREAMS)):
            emitted.extend(tier.close_child(child))
        assert [(s.bin, s.to_bytes()) for s in emitted] == _reference_emission()

    def test_closed_child_stops_gating(self):
        tier = TierMerge([0, 1])
        a, b = _STREAMS[0][0], _STREAMS[1][0]
        assert tier.add_summary(0, a) == []
        assert [s.bin for s in tier.close_child(1)] == [0]
        assert not tier.done

    def test_corrupt_child_payload_raises(self):
        from repro.resilience import corrupt_payload

        tier = TierMerge([0])
        with pytest.raises(SummaryCorruptError):
            tier.add_serialized(0, corrupt_payload(_STREAMS[0][0].to_bytes()))

    def test_protocol_violations_raise(self):
        tier = TierMerge([0, 1])
        tier.add_summary(0, _STREAMS[0][0])
        with pytest.raises(ValueError):  # unknown child
            tier.add_summary(9, _STREAMS[0][0])
        with pytest.raises(ValueError):  # unknown child
            tier.close_child(9)
        tier.close_child(1)  # emits bin 0
        with pytest.raises(ValueError, match="re-delivered"):
            tier.add_summary(0, _STREAMS[0][0])  # bin 0 already emitted
        with pytest.raises(ValueError):
            TierMerge([])


class TestStripedTraceReads:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        from repro.flows.binning import TimeBins
        from repro.io.trace import write_trace
        from repro.traffic.generator import TrafficGenerator

        path = tmp_path_factory.mktemp("stripe") / "v2.trace"
        generator = TrafficGenerator(abilene(), TimeBins(n_bins=6), seed=5)
        write_trace(path, generator, max_records_per_od=30, seed=0, derive=True)
        return path

    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_stripes_tile_every_bin_exactly(self, trace, n_shards):
        from repro.io.trace import TraceReader

        source = TraceSource(trace)
        router = Router(source.topology)
        # Collect each shard's stripes grouped by bin: chunk rows are
        # contiguous, so per bin the shards' pieces — concatenated in
        # shard order — must reproduce the full bin byte-for-byte.
        per_shard = [
            list(source.shard_batches(s, n_shards, router, chunk_records=64,
                                      stripe=True))
            for s in range(n_shards)
        ]
        by_bin = {}
        for s, chunks in enumerate(per_shard):
            for chunk, ods in chunks:
                b = int(chunk.timestamp[0] // source.spec.bin_width)
                by_bin.setdefault(b, ([], []))
                by_bin[b][0].append(chunk.src_ip)
                by_bin[b][1].append(ods)
        with TraceReader(trace) as reader:
            stored = np.asarray(reader.derived_column("od"), dtype=np.int64)
            for b in range(reader.n_bins):
                lo, hi = reader.bin_range(b)
                if hi == lo:
                    assert b not in by_bin
                    continue
                whole = reader.read_bin(b)
                rebuilt_src = np.concatenate(by_bin[b][0])
                rebuilt_ods = np.concatenate(by_bin[b][1])
                np.testing.assert_array_equal(rebuilt_src, whole.src_ip)
                np.testing.assert_array_equal(rebuilt_ods, stored[lo:hi])

    def test_stored_and_derived_ods_agree_per_stripe(self, trace):
        source = TraceSource(trace)
        router = Router(source.topology)
        for chunk, ods in source.shard_batches(1, 2, router, stripe=True):
            resolved = router.resolve_ods_mixed(chunk.ingress_pop, chunk.dst_ip)
            np.testing.assert_array_equal(ods, resolved)

    def test_single_shard_ignores_striping(self, trace):
        source = TraceSource(trace)
        router = Router(source.topology)
        a = [c for c, _ in source.shard_batches(0, 1, router, stripe=True)]
        b = [c for c, _ in source.shard_batches(0, 1, router, stripe=False)]
        assert sum(len(c) for c in a) == sum(len(c) for c in b)


class _FixtureCluster:
    """Shared plumbing: the frozen workload replayed through clusters."""

    @pytest.fixture(scope="class")
    def fixture_env(self, tmp_path_factory):
        wl, topology, batches = _seed_workload()
        path = tmp_path_factory.mktemp("net") / "seed.trace"
        _write_batches(path, wl, batches, derive=True)
        config = StreamConfig(
            warmup_bins=wl["warmup_bins"],
            n_components=6,
            refit_every=0,
            exact_histograms=True,
        )
        fixture_bytes = (DATA_DIR / "seed_stream_detections.json").read_bytes()
        return wl, path, config, fixture_bytes

    def run(self, fixture_env, **kwargs):
        wl, path, config, fixture_bytes = fixture_env
        result = run_cluster_source(TraceSource(path), config=config, **kwargs)
        assert _render(wl, result.report) == fixture_bytes
        return result


class TestLoopbackParity(_FixtureCluster):
    """Detections must be bit-identical to the frozen single-process
    fixture at every shard count x tier shape x transport."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_tcp_flat(self, fixture_env, n_shards):
        result = self.run(fixture_env, n_shards=n_shards, transport="tcp")
        assert sorted(result.shard_records) == list(range(n_shards))
        assert sum(result.shard_records.values()) == result.n_records

    def test_tcp_two_tier(self, fixture_env):
        result = self.run(fixture_env, tiers="2x2", transport="tcp")
        assert sorted(result.shard_records) == [0, 1, 2, 3]

    def test_pipe_flat_matches_tcp(self, fixture_env):
        self.run(fixture_env, n_shards=2, transport="pipe")

    def test_pipe_two_tier(self, fixture_env):
        result = self.run(fixture_env, tiers="2x2", transport="pipe")
        # Tiered shard accounting is per *worker*, not per aggregator.
        assert sorted(result.shard_records) == [0, 1, 2, 3]
        assert result.report.meta["tiers"] == "2x2"

    def test_striping_balances_shared_trace_reads(self, fixture_env):
        # OD-sharding splits abilene's skewed flows unevenly; row
        # striping (opt-in) hands every worker an equal slice of each
        # bin — and still renders the frozen fixture byte-for-byte.
        wl = fixture_env[0]
        result = self.run(fixture_env, n_shards=2, transport="pipe",
                          stripe=True)
        low, high = sorted(result.shard_records.values())
        # At most one record of rounding per bin — never OD skew
        # (abilene's top OD alone is thousands of records per bin).
        assert high - low <= wl["n_bins"]

    def test_striped_tcp_matches_masked_default(self, fixture_env):
        # Both record partitions of the same trace must merge to the
        # same canonical summaries, over either transport.
        self.run(fixture_env, n_shards=2, transport="tcp", stripe=True)


class TestChaosOverTcp(_FixtureCluster):
    def test_killed_tcp_worker_restarts_to_parity(self, fixture_env):
        result = self.run(
            fixture_env, n_shards=2, transport="tcp",
            chaos="kill:shard=1,bin=24",
            resilience=ResiliencePolicy(backoff_s=0.01),
        )
        assert result.restarts == 1
        assert not result.degraded

    def test_corrupt_tcp_frame_restarts_to_parity(self, fixture_env):
        result = self.run(
            fixture_env, n_shards=2, transport="tcp",
            chaos="corrupt:shard=0,bin=23",
            resilience=ResiliencePolicy(backoff_s=0.01),
        )
        assert result.restarts == 1

    def test_exhausted_tcp_worker_degrades_with_gaps(self, fixture_env):
        wl, path, config, _ = fixture_env
        result = run_cluster_source(
            TraceSource(path), n_shards=2, transport="tcp", config=config,
            chaos="kill:shard=1,bin=24,attempts=10",
            resilience=ResiliencePolicy(max_retries=0, backoff_s=0.01,
                                        on_exhaustion="degrade"),
        )
        assert result.degraded
        health = result.report.meta["shard_health"]["1"]
        assert health["status"] == "failed"
        assert health["gap_bins"]

    def test_killed_tiered_worker_restarts_subtree_to_parity(self, fixture_env):
        # A child death inside an aggregator's subtree surfaces as the
        # aggregator's fault; the whole unit restarts and detections
        # still match the fixture bit-for-bit.
        result = self.run(
            fixture_env, tiers="2x2", transport="pipe",
            chaos="kill:shard=3,bin=24",
            resilience=ResiliencePolicy(backoff_s=0.01),
        )
        assert result.restarts == 1


def _patient_serve(address, outcome):
    deadline = time.monotonic() + 15.0
    while True:
        try:
            outcome.put(serve(address))
            return
        except OSError:
            if time.monotonic() > deadline:
                outcome.put(-1)
                return
            time.sleep(0.05)


class TestRemoteWorkers:
    def test_listen_mode_serves_external_workers(self):
        # The two-machine path on loopback: the coordinator spawns
        # nothing; `serve` processes (what `repro worker --connect`
        # runs) dial in, handshake, and run their assigned shards.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        context = multiprocessing.get_context()
        outcome = context.Queue()
        workers = [
            context.Process(target=_patient_serve,
                            args=(("127.0.0.1", port), outcome))
            for _ in range(2)
        ]
        for proc in workers:
            proc.start()
        try:
            result = run_cluster_source(
                SyntheticSource(network="abilene", n_bins=14, seed=5,
                                max_records_per_od=20),
                n_shards=2,
                transport="tcp",
                listen=("127.0.0.1", port),
                config=StreamConfig(warmup_bins=8, refit_every=0,
                                    drift_reset_after=0, n_components=4,
                                    exact_histograms=True),
            )
        finally:
            for proc in workers:
                proc.join(timeout=20)
                if proc.is_alive():
                    proc.terminate()
        assert sorted(result.shard_records) == [0, 1]
        assert sum(result.shard_records.values()) == result.n_records
        served = [outcome.get(timeout=5) for _ in workers]
        # Both shards were served by the external workers (usually one
        # each; a fast worker may reconnect and take both).
        assert sum(served) == 2


class TestClusterNetCli:
    def test_oversubscribed_threads_exit_2(self, capsys):
        code = main([
            "cluster", "--shards", "2", "--threads", "64",
            "--warmup-bins", "8", "--live-bins", "2", "--max-records", "5",
            "--exact",
        ])
        assert code == 2
        assert "oversubscribes" in capsys.readouterr().err

    def test_bad_tiers_exit_2(self, capsys):
        assert main(["cluster", "--tiers", "2x"]) == 2
        assert "tier layout" in capsys.readouterr().err

    def test_listen_requires_tcp(self, capsys):
        assert main(["cluster", "--listen", "127.0.0.1:9100"]) == 2
        assert "tcp" in capsys.readouterr().err

    def test_worker_refused_connection_exits_2(self, capsys):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        assert main(["worker", "--connect", f"127.0.0.1:{port}"]) == 2

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit) as exc:
            main(["worker"])
        assert exc.value.code == 2

    def test_cluster_tcp_command_runs(self, capsys):
        code = main([
            "cluster", "--shards", "2", "--transport", "tcp",
            "--warmup-bins", "8", "--live-bins", "2", "--max-records", "10",
            "--exact", "--refit-every", "0", "--components", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "tcp transport" in out and "records/s" in out

    def test_run_mode_rejects_cluster_only_flags(self, capsys):
        code = main([
            "run", "baseline-diurnal", "--mode", "stream", "--tiers", "2x2",
            "--bins", "10",
        ])
        assert code == 2
        assert "cluster" in capsys.readouterr().err
