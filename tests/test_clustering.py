"""Tests for the from-scratch clustering algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    agreement_rate,
    choose_k_curves,
    cluster_variation,
    hierarchical,
    kmeans,
    pairwise_distances,
    relabel_by_size,
)


def _blobs(n_per=30, centers=((0, 0), (10, 0), (0, 10)), spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    labels = []
    for i, c in enumerate(centers):
        points.append(rng.normal(c, spread, size=(n_per, len(c))))
        labels += [i] * n_per
    return np.vstack(points), np.array(labels)


def _pure(labels_a, labels_b):
    """Whether two labelings induce the same partition."""
    return agreement_rate(labels_a, labels_b) == 1.0


class TestPairwiseDistances:
    def test_matches_norm(self):
        X = np.random.default_rng(0).normal(size=(10, 4))
        D = pairwise_distances(X)
        for i in range(10):
            for j in range(10):
                assert D[i, j] == pytest.approx(np.linalg.norm(X[i] - X[j]), abs=1e-7)

    def test_diagonal_zero_and_symmetric(self):
        X = np.random.default_rng(1).normal(size=(15, 3))
        D = pairwise_distances(X)
        assert np.allclose(np.diag(D), 0.0)
        assert np.allclose(D, D.T)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        X, truth = _blobs()
        result = kmeans(X, 3, rng=0)
        assert _pure(result.labels, truth)

    def test_inertia_decreases_with_k(self):
        X, _ = _blobs()
        inertias = [kmeans(X, k, rng=0).inertia for k in (1, 2, 3, 5)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k_equals_n_gives_zero_inertia(self):
        X = np.random.default_rng(0).normal(size=(8, 2))
        result = kmeans(X, 8, rng=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_one_center_is_mean(self):
        X, _ = _blobs()
        result = kmeans(X, 1, rng=0)
        assert np.allclose(result.centers[0], X.mean(axis=0))

    def test_bounds(self):
        X, _ = _blobs(n_per=2)
        with pytest.raises(ValueError):
            kmeans(X, 0)
        with pytest.raises(ValueError):
            kmeans(X, len(X) + 1)

    def test_deterministic_given_seed(self):
        X, _ = _blobs()
        a = kmeans(X, 3, rng=42)
        b = kmeans(X, 3, rng=42)
        assert np.array_equal(a.labels, b.labels)

    def test_labels_within_range(self):
        X, _ = _blobs()
        result = kmeans(X, 4, rng=0)
        assert set(result.labels.tolist()) <= set(range(4))

    def test_duplicate_points_handled(self):
        X = np.ones((10, 3))
        result = kmeans(X, 2, rng=0)
        assert result.inertia == pytest.approx(0.0)


class TestHierarchical:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_recovers_blobs_all_linkages(self, linkage):
        X, truth = _blobs()
        result = hierarchical(X, 3, linkage=linkage)
        assert _pure(result.labels, truth)

    def test_k_one(self):
        X, _ = _blobs()
        result = hierarchical(X, 1)
        assert result.k == 1
        assert np.all(result.labels == 0)

    def test_k_equals_n(self):
        X = np.random.default_rng(0).normal(size=(6, 2))
        result = hierarchical(X, 6)
        assert len(set(result.labels.tolist())) == 6

    def test_single_linkage_joins_nearest_first(self):
        # Points on a line: 0, 1, 10 -> with k=2 the pair {0,1} merges.
        X = np.array([[0.0], [1.0], [10.0]])
        result = hierarchical(X, 2, linkage="single")
        assert result.labels[0] == result.labels[1] != result.labels[2]

    def test_unknown_linkage(self):
        with pytest.raises(ValueError):
            hierarchical(np.ones((4, 2)), 2, linkage="median")

    def test_bounds(self):
        with pytest.raises(ValueError):
            hierarchical(np.ones((4, 2)), 5)

    def test_sizes_sum_to_n(self):
        X, _ = _blobs()
        result = hierarchical(X, 4)
        assert result.sizes().sum() == len(X)

    @given(st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_exactly_k_clusters(self, k):
        X, _ = _blobs(n_per=10, seed=k)
        result = hierarchical(X, k)
        assert result.k == k
        assert len(set(result.labels.tolist())) == k


class TestClusterVariation:
    def test_w_plus_b_equals_total(self):
        X, labels = _blobs()
        w, b = cluster_variation(X, labels)
        assert w + b == pytest.approx(float((X ** 2).sum()))

    def test_perfect_clusters_have_small_w(self):
        X, labels = _blobs(spread=0.01)
        w, b = cluster_variation(X, labels)
        assert w < 0.01 * b

    def test_single_cluster(self):
        X, _ = _blobs()
        w, b = cluster_variation(X, np.zeros(len(X), dtype=int))
        # B reduces to n * ||mean||^2
        assert b == pytest.approx(len(X) * float((X.mean(axis=0) ** 2).sum()))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cluster_variation(np.ones((4, 2)), np.zeros(3))


class TestChooseK:
    def test_within_decreases_with_k(self):
        X, _ = _blobs()
        curves = choose_k_curves(X, (2, 3, 5, 8), algorithm="hierarchical")
        ws = [curves[k][0] for k in (2, 3, 5, 8)]
        assert all(a >= b - 1e-6 for a, b in zip(ws, ws[1:]))

    def test_knee_at_true_k(self):
        X, _ = _blobs(spread=0.05)
        curves = choose_k_curves(X, (2, 3, 4, 6), algorithm="kmeans", rng=0)
        # Going 2->3 should explain far more than 3->4.
        drop_23 = curves[2][0] - curves[3][0]
        drop_34 = curves[3][0] - curves[4][0]
        assert drop_23 > 10 * drop_34

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            choose_k_curves(np.ones((5, 2)), (2,), algorithm="dbscan")


class TestRelabelAndAgreement:
    def test_relabel_by_size_orders_descending(self):
        labels = np.array([2, 2, 2, 0, 0, 1])
        out = relabel_by_size(labels)
        sizes = np.bincount(out)
        assert np.all(np.diff(sizes) <= 0)
        assert _pure(labels, out)

    def test_agreement_identical(self):
        labels = np.array([0, 1, 0, 2])
        assert agreement_rate(labels, labels) == 1.0

    def test_agreement_permuted_labels(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert agreement_rate(a, b) == 1.0

    def test_agreement_opposite(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert agreement_rate(a, b) < 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            agreement_rate(np.zeros(3), np.zeros(4))
